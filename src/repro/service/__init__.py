"""Asynchronous CFCM query service over the dynamic engine.

The batch algorithms solve CFCM on a frozen graph; :mod:`repro.dynamic`
keeps their state alive while the graph mutates; this package makes that
state *servable*: an asyncio front end where updates enqueue journal events,
queries await a version-consistent answer, and the heavy lifting (selection,
evaluation, forest resampling) runs on a bounded worker pool.

* :class:`AsyncCFCMService` — single-writer/multi-reader service owning a
  :class:`repro.dynamic.DynamicCFCM`; update bursts coalesce into rank-``t``
  Woodbury batches, responses carry the journal version they were computed
  at, shutdown is graceful and cancellation-safe;
* :class:`WorkerPool` — bounded thread pool for engine work plus optional
  process-pool forest sampling with reproducible child seeds;
* :class:`UpdateTicket` / :class:`ServiceResponse` — the awaitable receipt
  of a mutation and the version-tagged query answer;
* :class:`ServiceStats` — submission/apply/batch/cancellation counters.
"""

from repro.service.messages import ServiceResponse, UpdateRequest, UpdateTicket
from repro.service.service import CONSISTENCY_MODES, AsyncCFCMService, ServiceStats
from repro.service.workers import WorkerPool

__all__ = [
    "AsyncCFCMService",
    "ServiceStats",
    "ServiceResponse",
    "UpdateRequest",
    "UpdateTicket",
    "WorkerPool",
    "CONSISTENCY_MODES",
]
