"""Asynchronous single-writer/multi-reader front end over the dynamic engine.

:class:`AsyncCFCMService` wraps a :class:`repro.dynamic.DynamicCFCM` so that
a query service can interleave update bursts with concurrent reads:

* **Single writer** — mutations are enqueued on a bounded ``asyncio.Queue``
  and applied by one writer task.  The writer drains the whole backlog per
  wakeup, applying it back-to-back with no engine synchronisation in
  between, so the next evaluation folds the entire burst in as *one*
  rank-``t`` Woodbury batch (the coalescing is free: it reuses
  :meth:`repro.dynamic.IncrementalResistance.sync`'s journal batching).
  Each submission returns an :class:`~repro.service.messages.UpdateTicket`
  that settles with the journal events the mutation produced.
* **Multi reader** — queries and evaluations run on a bounded worker pool
  (:class:`~repro.service.workers.WorkerPool`), never blocking the event
  loop.  ``consistency="fresh"`` (the default) first awaits the settlement
  of every update submitted so far — a version barrier, not a lock — while
  ``consistency="relaxed"`` reads whatever version the engine is at.
* **Correctness discipline** — the engine is not thread-safe, so every
  engine/graph touch (writer apply, query compute, maintenance) happens
  under one ``threading.Lock`` *inside* the worker function.  Cancelling an
  awaiting task therefore can never expose a half-applied state: the worker
  thread finishes its critical section regardless.  Every response carries
  the journal version it was computed at; a query issued mid-burst returns
  exactly what a fresh synchronous engine would return on the graph
  replayed to that version.
* **Graceful shutdown** — :meth:`stop` (or leaving the ``async with``
  block) drains the update queue by default; ``drain=False`` rejects the
  queued backlog with :class:`repro.exceptions.ServiceClosedError` instead.
  Either way in-flight worker jobs complete before the pool is torn down.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.centrality.estimators import SamplingConfig
from repro.dynamic.engine import DynamicCFCM
from repro.dynamic.graph import DynamicGraph, GraphUpdate
from repro.exceptions import (
    InvalidParameterError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graph.graph import Graph
from repro.obs.health import bind_engine_health, bind_service_health
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS
from repro.obs.tracing import trace
from repro.resilience.policy import CircuitBreaker, RetryPolicy, record_retry
from repro.service.messages import Mutation, ServiceResponse, UpdateRequest, UpdateTicket
from repro.service.workers import WorkerPool
from repro.utils.faultpoints import fault_point
from repro.utils.rng import RandomState
from repro.utils.timer import clock
from repro.utils.validation import check_integer

_STOP = object()

# Hot-path metrics (no-ops until the default registry is enabled).
_BATCH_SIZE = REGISTRY.histogram(
    "repro_service_update_batch_size",
    "Updates coalesced per writer batch",
    buckets=SIZE_BUCKETS,
)
_APPLY_SECONDS = REGISTRY.histogram(
    "repro_service_apply_seconds",
    "Wall time of one coalesced writer batch apply",
)
_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_service_request_seconds",
    "End-to-end service request latency (barrier plus compute)",
    labels=("kind",),
)

CONSISTENCY_MODES = ("fresh", "relaxed")


@dataclass
class ServiceStats:
    """Operational counters of one :class:`AsyncCFCMService` instance."""

    updates_submitted: int = 0
    updates_applied: int = 0
    updates_failed: int = 0
    updates_rejected: int = 0
    update_batches: int = 0
    coalesced_updates: int = 0
    queries: int = 0
    evaluations: int = 0
    cancelled: int = 0

    def as_dict(self) -> Dict[str, float]:
        total = self.update_batches
        return {
            "updates_submitted": self.updates_submitted,
            "updates_applied": self.updates_applied,
            "updates_failed": self.updates_failed,
            "updates_rejected": self.updates_rejected,
            "update_batches": self.update_batches,
            "coalesced_updates": self.coalesced_updates,
            "mean_batch_size": self.coalesced_updates / total if total else 0.0,
            "queries": self.queries,
            "evaluations": self.evaluations,
            "cancelled": self.cancelled,
        }


class AsyncCFCMService:
    """Async CFCM query service owning a :class:`repro.dynamic.DynamicCFCM`.

    Parameters
    ----------
    graph:
        A :class:`repro.dynamic.DynamicGraph` or plain connected
        :class:`repro.Graph` (wrapped automatically).  After construction
        the graph must only be mutated through the service.
    seed, config:
        Forwarded to the engine (reproducible child seeds per cache miss).
    workers:
        Thread count of the worker pool shared by the writer and readers.
    process_workers:
        When positive, forest-pool refills requested via
        :meth:`prefetch_forests` sample on that many processes.
    queue_limit:
        Maximum pending updates; beyond it :meth:`submit` raises
        :class:`repro.exceptions.ServiceOverloadedError` (backpressure).
    coalesce_limit:
        Maximum updates applied per writer wakeup, i.e. the largest
        rank-``t`` batch a single evaluation will fold in.
    backend:
        Resistance backend spec for the engine's exact evaluation path
        (``"dense"``, ``"sparse"`` or ``"auto"``); ``None`` keeps the
        engine default.
    retry_policy:
        Optional :class:`repro.resilience.RetryPolicy`: reads failing with
        a transient typed error (solver non-convergence, injected faults)
        are re-run within the policy's attempt and deadline budget.
    breaker:
        Optional :class:`repro.resilience.CircuitBreaker`: sheds
        relaxed-consistency reads with
        :class:`repro.exceptions.ServiceDegradedError` while the update
        queue is near its limit or after repeated read failures; fresh
        reads always pass (they are how an open breaker observes
        recovery).
    engine_kwargs:
        Extra :class:`repro.dynamic.DynamicCFCM` options (``pool_size``,
        ``refresh_interval``, ``backend_options``, ...).
    """

    def __init__(
        self,
        graph: Union[DynamicGraph, Graph],
        seed: RandomState = None,
        config: Optional[SamplingConfig] = None,
        workers: int = 2,
        process_workers: int = 0,
        queue_limit: int = 1024,
        coalesce_limit: int = 64,
        backend: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        **engine_kwargs,
    ):
        if backend is not None:
            engine_kwargs["backend"] = backend
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.engine = DynamicCFCM(graph, seed=seed, config=config, **engine_kwargs)
        self.graph = self.engine.graph
        self.queue_limit = check_integer("queue_limit", queue_limit, minimum=1)
        self.coalesce_limit = check_integer("coalesce_limit", coalesce_limit, minimum=1)
        self.stats = ServiceStats()
        self._pool = WorkerPool(workers=workers, process_workers=process_workers)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_limit)
        self._state_lock = threading.Lock()
        self._writer: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._applied_version = self.graph.version
        self._version_cond = asyncio.Condition()
        self._last_ticket: Optional[UpdateTicket] = None
        self._health_unbinders: list = []

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "AsyncCFCMService":
        """Spawn the writer task; returns ``self`` for chaining."""
        if self._closed:
            raise ServiceClosedError("service was stopped and cannot restart")
        if self._writer is not None:
            raise ServiceError("service already started")
        self._loop = asyncio.get_running_loop()
        self._writer = asyncio.create_task(self._writer_loop(), name="cfcm-writer")
        # Publish engine/service health onto the default registry's gauges
        # for the service's lifetime (collectors run at exposition time).
        self._health_unbinders = [
            bind_engine_health(self.engine),
            bind_service_health(self),
        ]
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the writer and tear the worker pool down.

        ``drain=True`` applies every queued update first; ``drain=False``
        rejects the queued backlog with
        :class:`repro.exceptions.ServiceClosedError`.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            if not drain:
                while True:
                    try:
                        request = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if request is _STOP:
                        continue
                    self.stats.updates_rejected += 1
                    request.ticket._reject(
                        ServiceClosedError("service stopped before this update was applied")
                    )
            await self._queue.put(_STOP)
            await self._writer
            self._writer = None
        await self._pool.close()
        if self._health_unbinders and REGISTRY.enabled:
            # Health gauges are only written at exposition time; publish a
            # final reading before unbinding so post-shutdown snapshots and
            # Prometheus renders still carry engine/service/pool health.
            REGISTRY.collect()
        for unbind in self._health_unbinders:
            unbind()
        self._health_unbinders = []

    async def __aenter__(self) -> "AsyncCFCMService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        """Whether the writer task is up and the service accepts requests."""
        return self._writer is not None and not self._closed

    # --------------------------------------------------------------- updates
    async def submit(
        self,
        mutation: Mutation,
        wait_timeout: Optional[float] = None,
    ) -> UpdateTicket:
        """Enqueue an arbitrary mutation ``mutation(graph)``; returns a ticket.

        The callable runs on the writer under the service's state lock; the
        journal events it produces become the ticket's result.  When the
        bounded queue is full, ``wait_timeout=None`` (the default) raises
        :class:`repro.exceptions.ServiceOverloadedError` immediately
        (backpressure); a positive ``wait_timeout`` awaits queue space for
        up to that many seconds before giving up with the same error.
        """
        self._require_running()
        if wait_timeout is not None and wait_timeout <= 0:
            raise InvalidParameterError(
                f"wait_timeout must be positive or None, got {wait_timeout}"
            )
        ticket = UpdateTicket(self._loop)
        request = UpdateRequest(mutation=mutation, ticket=ticket)
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            if wait_timeout is None:
                self.stats.updates_rejected += 1
                raise ServiceOverloadedError(
                    f"update queue is full ({self.queue_limit} pending); "
                    "retry after awaiting a ticket or raise queue_limit"
                ) from None
            try:
                await asyncio.wait_for(
                    self._queue.put(request), timeout=wait_timeout
                )
            except asyncio.TimeoutError:
                self.stats.updates_rejected += 1
                raise ServiceOverloadedError(
                    f"update queue stayed full ({self.queue_limit} pending) "
                    f"for {wait_timeout}s; retry after awaiting a ticket or "
                    "raise queue_limit"
                ) from None
        self._last_ticket = ticket
        self.stats.updates_submitted += 1
        return ticket

    async def add_edge(self, u: int, v: int, weight: float = 1.0) -> UpdateTicket:
        """Enqueue an edge insertion."""
        return await self.submit(lambda graph: graph.add_edge(u, v, weight))

    async def remove_edge(self, u: int, v: int) -> UpdateTicket:
        """Enqueue an edge deletion (connectivity-guarded at apply time)."""
        return await self.submit(lambda graph: graph.remove_edge(u, v))

    async def update_weight(self, u: int, v: int, weight: float) -> UpdateTicket:
        """Enqueue an edge reweighting."""
        return await self.submit(lambda graph: graph.update_weight(u, v, weight))

    async def add_node(self, edges) -> UpdateTicket:
        """Enqueue a node insertion; the new stable id is in the ticket events."""
        return await self.submit(lambda graph: graph.add_node(edges))

    async def remove_node(self, node: int) -> UpdateTicket:
        """Enqueue a node removal (connectivity-guarded at apply time)."""
        return await self.submit(lambda graph: graph.remove_node(node))

    # --------------------------------------------------------------- queries
    async def query(
        self,
        k: int,
        method: str = "schur",
        eps: float = 0.2,
        evaluate: Union[bool, str] = False,
        consistency: str = "fresh",
    ) -> ServiceResponse:
        """Solve CFCM on the current graph; response carries the version.

        Parameters mirror :meth:`repro.dynamic.DynamicCFCM.query`;
        ``consistency="fresh"`` first awaits settlement of every update
        submitted so far, ``"relaxed"`` answers at whatever version the
        engine reaches when the worker picks the query up.
        """
        self._require_running()
        started = clock()
        self._admit(consistency)
        try:
            await self._consistency_barrier(consistency)

            def work() -> Tuple[object, int, Dict[str, object]]:
                # Spans live inside the worker closure: the thread-local span
                # stack nests correctly on a worker thread, never across
                # awaits on the event loop.
                with self._state_lock, trace("service.query", k=k):
                    fault_point("service.worker", subject=self)
                    result = self.engine.query(k, method=method, eps=eps, evaluate=evaluate)
                    return result, self.graph.version, self.engine.stats.as_dict()

            result, version, stats = await self._run_with_policy(work, "query", started)
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            raise
        self.stats.queries += 1
        _REQUEST_SECONDS.observe(clock() - started, kind="query")
        return ServiceResponse(result=result, version=version, stats=stats)

    async def evaluate(
        self,
        group: Sequence[int],
        mode: str = "exact",
        consistency: str = "fresh",
    ) -> ServiceResponse:
        """Group CFCC of ``group``; ``mode`` is ``"exact"`` or ``"forest"``."""
        self._require_running()
        started = clock()
        self._admit(consistency)
        try:
            await self._consistency_barrier(consistency)

            def work() -> Tuple[float, int, Dict[str, object]]:
                with self._state_lock, trace("service.evaluate", mode=mode):
                    fault_point("service.worker", subject=self)
                    value = self.engine.evaluate(group, mode=mode)
                    return value, self.graph.version, self.engine.stats.as_dict()

            value, version, stats = await self._run_with_policy(work, "evaluate", started)
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            raise
        self.stats.evaluations += 1
        _REQUEST_SECONDS.observe(clock() - started, kind="evaluate")
        return ServiceResponse(result=value, version=version, stats=stats)

    async def refresh(self) -> int:
        """Pump engine maintenance (pool sync + journal compaction) once.

        Off-hot-path housekeeping: returns the version the engine caches
        reflect afterwards.
        """
        self._require_running()

        def work() -> int:
            with self._state_lock:
                return self.engine.sync()

        return await self._pool.run(work)

    async def prefetch_forests(self, group: Sequence[int]) -> int:
        """Refill the forest pool of ``group`` ahead of query traffic.

        Wilson sampling runs on the worker layer — and on a process pool
        with reproducible child seeds when ``process_workers`` was set.
        Returns the number of forests sampled.
        """
        self._require_running()

        def work() -> int:
            with self._state_lock:
                return self.engine.refill_pool(group, sampler=self._pool.sample_forests)

        return await self._pool.run(work)

    # -------------------------------------------------------------- versions
    @property
    def version(self) -> int:
        """Last journal version the writer has published."""
        return self._applied_version

    @property
    def pending_updates(self) -> int:
        """Updates enqueued but not yet picked up by the writer."""
        return self._queue.qsize()

    async def barrier(self) -> int:
        """Wait until every update submitted so far has settled.

        A version barrier, not a lock: later submissions are unaffected.
        Returns the journal version the barrier observed (at least the
        version the last settled update landed at — the writer may publish
        it a beat later).
        """
        ticket = self._last_ticket
        if ticket is None:
            return self._applied_version
        await ticket.settled()
        return max(self._applied_version, ticket.version or 0)

    async def wait_for_version(self, version: int) -> int:
        """Block until the writer has published at least ``version``."""
        async with self._version_cond:
            await self._version_cond.wait_for(lambda: self._applied_version >= version)
            return self._applied_version

    # ------------------------------------------------------------- internals
    def _require_running(self) -> None:
        if self._closed:
            raise ServiceClosedError("service is stopped")
        if self._writer is None:
            raise ServiceError(
                "service not started; use 'async with AsyncCFCMService(...)' "
                "or await start() first"
            )

    def _admit(self, consistency: str) -> None:
        """Circuit-breaker admission: shed relaxed reads under degradation."""
        if self.breaker is not None:
            self.breaker.admit(consistency, self._queue.qsize(), self.queue_limit)

    async def _run_with_policy(self, work, kind: str, started: float):
        """Run one read on the worker pool under the retry/breaker policy.

        Transient typed failures (per ``retry_policy.retry_on``) are re-run
        within the policy's attempt count and wall-clock deadline; terminal
        outcomes feed the circuit breaker's failure/success streaks.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                outcome = await self._pool.run(work)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                policy = self.retry_policy
                if policy is not None and policy.should_retry(
                    exc, attempt, clock() - started
                ):
                    record_retry(kind)
                    continue
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return outcome

    async def _consistency_barrier(self, consistency: str) -> None:
        if consistency == "fresh":
            await self.barrier()
        elif consistency != "relaxed":
            raise InvalidParameterError(
                f"unknown consistency mode {consistency!r}; "
                f"expected one of {CONSISTENCY_MODES}"
            )

    async def _writer_loop(self) -> None:
        """Single-writer loop: drain, apply as one burst, publish, repeat."""
        while True:
            request = await self._queue.get()
            stop = request is _STOP
            batch = [] if stop else [request]
            while not stop and len(batch) < self.coalesce_limit:
                try:
                    pending = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if pending is _STOP:
                    stop = True
                    break
                batch.append(pending)
            if batch:
                version = await self._pool.run(self._apply_batch, batch)
                self.stats.update_batches += 1
                self.stats.coalesced_updates += len(batch)
                async with self._version_cond:
                    self._applied_version = version
                    self._version_cond.notify_all()
            if stop:
                return

    def _apply_batch(self, batch) -> int:
        """Apply one burst back-to-back (worker thread, under the state lock).

        No engine synchronisation happens between the mutations, so the
        burst lands in the journal as one contiguous suffix — the next
        evaluation folds it in as a single rank-``t`` Woodbury batch.
        """
        started = clock()
        fault_point("service.stall", subject=self)
        with self._state_lock, trace("service.apply_batch", batch=len(batch)):
            for request in batch:
                before = self.graph.version
                try:
                    request.mutation(self.graph)
                except Exception as exc:
                    self.stats.updates_failed += 1
                    request.ticket._reject(exc, self.graph.version)
                else:
                    events: Tuple[GraphUpdate, ...] = tuple(self.graph.journal_since(before))
                    self.stats.updates_applied += 1
                    request.ticket._resolve(events, self.graph.version)
        _BATCH_SIZE.observe(len(batch))
        _APPLY_SECONDS.observe(clock() - started)
        return self.graph.version
