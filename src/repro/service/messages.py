"""Request/response plumbing of the asynchronous CFCM service.

The service decouples three parties that run on different schedules: callers
submitting mutations (event-loop coroutines), the single writer applying them
(a worker thread), and callers awaiting results (event-loop coroutines
again).  The types here carry information across those boundaries:

* :class:`UpdateTicket` — a thread-safe, awaitable receipt for one submitted
  mutation; the writer resolves it with the journal events the mutation
  produced (or rejects it with the exception it raised);
* :class:`UpdateRequest` — the queue entry pairing a mutation callable with
  its ticket;
* :class:`ServiceResponse` — a query result tagged with the exact journal
  version it was computed at, which is what makes responses comparable
  against a synchronous engine replayed to the same version.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.dynamic.graph import DynamicGraph, GraphUpdate
from repro.utils.timer import clock

# A mutation is any callable applied to the graph by the writer; the journal
# events it produces are collected by diffing the journal, so its return
# value is ignored.
Mutation = Callable[[DynamicGraph], Any]


class UpdateTicket:
    """Awaitable receipt for one mutation travelling through the writer.

    Tickets are created on the event loop and settled from the writer's
    worker thread, so settlement goes through ``call_soon_threadsafe``.
    Callers may ignore a ticket entirely (fire-and-forget), await
    :meth:`settled` (barrier semantics, never raises), or await
    :meth:`result` (re-raises the rejection reason).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._future: asyncio.Future = loop.create_future()
        self._version: Optional[int] = None
        self._settled_at: Optional[float] = None

    @property
    def done(self) -> bool:
        """Whether the mutation has been applied or rejected."""
        return self._future.done()

    @property
    def version(self) -> Optional[int]:
        """Journal version when the mutation settled (``None`` while pending).

        For applied mutations this is the version *after* their events; for
        rejected ones the version at which the apply was attempted.
        """
        return self._version

    @property
    def settled_at(self) -> Optional[float]:
        """Monotonic-clock timestamp of settlement (``None`` pending).

        Stamped in the writer thread the moment the mutation was applied or
        rejected, so submit-to-apply latency can be measured even when the
        ticket is only awaited long after the fact.
        """
        return self._settled_at

    async def settled(self) -> None:
        """Wait until the writer applied or rejected the mutation.

        Never raises the rejection reason — use :meth:`result` for that.
        """
        try:
            await asyncio.shield(self._future)
        except asyncio.CancelledError:
            raise
        except Exception:
            pass

    async def result(self) -> Tuple[GraphUpdate, ...]:
        """The journal events the mutation produced; re-raises rejections."""
        return await asyncio.shield(self._future)

    def exception(self) -> Optional[BaseException]:
        """The rejection reason, or ``None`` while pending / after success."""
        if not self._future.done():
            return None
        return self._future.exception()

    # -- writer side (called from the worker thread) -------------------------
    def _resolve(self, events: Tuple[GraphUpdate, ...], version: int) -> None:
        self._settled_at = clock()
        self._loop.call_soon_threadsafe(self._settle, events, None, version)

    def _reject(self, exc: BaseException, version: Optional[int] = None) -> None:
        self._settled_at = clock()
        self._loop.call_soon_threadsafe(self._settle, None, exc, version)

    def _settle(
        self,
        events: Optional[Tuple[GraphUpdate, ...]],
        exc: Optional[BaseException],
        version: Optional[int],
    ) -> None:
        if self._future.done():
            return
        self._version = version
        if exc is not None:
            self._future.set_exception(exc)
            # Fire-and-forget submitters never retrieve the exception; mark
            # it retrieved so the loop does not log it as an orphan.
            self._future.exception()
        else:
            self._future.set_result(events)


@dataclass
class UpdateRequest:
    """One entry of the service's update queue."""

    mutation: Mutation
    ticket: UpdateTicket


@dataclass(frozen=True)
class ServiceResponse:
    """A query answer plus the journal version it was computed at.

    ``result`` is a :class:`repro.centrality.result.CFCMResult` for selection
    queries and a ``float`` for evaluations; ``version`` is read atomically
    with the computation, so the response equals what a fresh synchronous
    engine would return on the graph replayed to that version.  ``stats`` is
    an engine-stats snapshot taken atomically with the answer (cache
    counters plus per-pool ESS health — see
    :meth:`repro.dynamic.EngineStats.as_dict`), so operators can watch pool
    health ride along with ordinary responses.
    """

    result: Any
    version: int
    stats: Optional[Dict[str, Any]] = None
