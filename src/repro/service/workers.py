"""Bounded worker layer running blocking engine work off the event loop.

The engine's heavy kernels are dense linear algebra (NumPy releases the GIL
inside BLAS) plus batch forest sampling, now NumPy-vectorised as well by
the lockstep kernel of :mod:`repro.sampling.batch`.  The pool runs engine
calls on a bounded :class:`ThreadPoolExecutor` — threads share the engine
state that the service guards with its own lock — and offers
:meth:`sample_forests`, which draws forest batches through the vectorised
path by default and only fans out to a :class:`ProcessPoolExecutor` (the
GIL-bound scalar sampler, via :func:`repro.sampling.sample_forest_batch`)
when ``process_workers`` is set *and* the batch is too large for the
lockstep state.

Cancellation semantics: a thread cannot be interrupted, so cancelling a task
that awaits :meth:`run` abandons the future — the work finishes (or is
skipped if it never started) in the background and its result or error is
consumed silently.  The service keeps state consistent regardless, because
every engine touch happens under its state lock *inside* the worker
function.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Sequence, Union

from repro.exceptions import ServiceClosedError
from repro.graph.graph import Graph
from repro.obs.tracing import trace
from repro.sampling.batch import (
    LOCKSTEP_STATE_LIMIT,
    ForestBatch,
    sample_forest_batch_vectorized,
)
from repro.sampling.forest import Forest
from repro.sampling.parallel import sample_forest_batch


def _consume(future: concurrent.futures.Future) -> None:
    """Swallow the outcome of an abandoned future (done-callback)."""
    if future.cancelled():
        return
    future.exception()


class WorkerPool:
    """Bounded executor front end with graceful shutdown.

    Parameters
    ----------
    workers:
        Thread count for engine work (evaluation, selection, maintenance).
    process_workers:
        When positive, :meth:`sample_forests` distributes *oversized*
        batches (too big for the lockstep sampler's state) over that many
        processes; every other batch is drawn with the vectorised kernel in
        the calling thread, where it needs no processes to be fast.
    """

    def __init__(self, workers: int = 2, process_workers: int = 0):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if process_workers < 0:
            raise ValueError("process_workers must be non-negative")
        self.workers = int(workers)
        self.process_workers = int(process_workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="cfcm-worker"
        )
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the thread pool and await its result.

        On cancellation the future is cancelled if it never started;
        otherwise the thread finishes in the background and its outcome is
        consumed, so no "exception was never retrieved" noise escapes.
        """
        if self._closed:
            raise ServiceClosedError("worker pool is closed")
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, functools.partial(fn, *args))
        try:
            return await asyncio.shield(future)
        except asyncio.CancelledError:
            if not future.cancel():
                future.add_done_callback(_consume)
            raise

    def sample_forests(
        self, graph: Graph, roots: Sequence[int], count: int, seed: int
    ) -> Union[ForestBatch, List[Forest]]:
        """Draw ``count`` rooted forests, vectorised by default.

        Matches the ``sampler(snapshot, compact_roots, count, seed)``
        signature of :meth:`repro.dynamic.DynamicCFCM.refill_pool`.  The
        batch is drawn with the lockstep vectorised kernel and returned as
        one :class:`~repro.sampling.batch.ForestBatch` (which the engine's
        weighted pools admit without materialising per-forest objects);
        only when ``process_workers`` is configured *and* the batch state
        would exceed the lockstep limit does the scalar sampler fan out
        over a process pool (with reproducibly derived child seeds, so that
        batch is identical however many processes draw it) and return a
        plain forest list.
        """
        with trace("worker.sample_forests", count=count) as span:
            if self.process_workers > 0 and count * graph.n > LOCKSTEP_STATE_LIMIT:
                span.set(path="process")
                return sample_forest_batch(graph, roots, count, seed=seed,
                                           workers=self.process_workers,
                                           method="scalar")
            span.set(path="lockstep")
            return sample_forest_batch_vectorized(graph, roots, count, seed=seed)

    async def close(self) -> None:
        """Reject new work and wait for in-flight work to finish."""
        if self._closed:
            return
        self._closed = True
        await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(self._executor.shutdown, wait=True)
        )
