"""Concentration bounds and the adaptive sampling controller.

The paper controls the number of sampled forests with two ingredients:

* a conservative worst-case sample size derived from Hoeffding's inequality
  (Lemmas 3.8-3.9), which guarantees the approximation factor; and
* the empirical Bernstein inequality (Lemma 3.6, Audibert et al. 2007), which
  uses the running sample variance to terminate much earlier in practice.

Sampling proceeds in doubling batches; after each batch the empirical
Bernstein half-width is compared with the requested relative error and the
loop stops once every tracked estimate satisfies
``err_u <= eps * (estimate_u - err_u)`` (line 17 of Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import InvalidParameterError


def hoeffding_bound(count: int, value_range: float, delta: float) -> float:
    """Hoeffding half-width for the mean of ``count`` samples in a range.

    ``P(|mean - E[mean]| >= t) <= 2 exp(-2 count t^2 / range^2)``; solving for
    the half-width at confidence ``1 - delta`` gives
    ``t = range * sqrt(log(2/delta) / (2 count))``.
    """
    if count <= 0:
        return math.inf
    if value_range < 0:
        raise InvalidParameterError("value_range must be non-negative")
    if not 0 < delta < 1:
        raise InvalidParameterError("delta must lie in (0, 1)")
    return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * count))


def hoeffding_sample_size(value_range: float, epsilon: float, delta: float) -> int:
    """Samples needed for a Hoeffding half-width of ``epsilon``."""
    if epsilon <= 0:
        raise InvalidParameterError("epsilon must be positive")
    if not 0 < delta < 1:
        raise InvalidParameterError("delta must lie in (0, 1)")
    return int(math.ceil((value_range ** 2) * math.log(2.0 / delta) / (2.0 * epsilon ** 2)))


def empirical_bernstein_bound(count: int, variance: float, value_bound: float,
                              delta: float) -> float:
    """Empirical Bernstein half-width (Lemma 3.6).

    ``f(n, Var, Sup, delta) = sqrt(2 Var log(3/delta) / n) + 3 Sup log(3/delta) / n``
    """
    if count <= 0:
        return math.inf
    if variance < 0:
        variance = 0.0
    if value_bound < 0:
        raise InvalidParameterError("value_bound must be non-negative")
    if not 0 < delta < 1:
        raise InvalidParameterError("delta must lie in (0, 1)")
    log_term = math.log(3.0 / delta)
    return math.sqrt(2.0 * variance * log_term / count) + 3.0 * value_bound * log_term / count


@dataclass
class StreamingMoments:
    """Streaming mean / variance over vector-valued samples (Welford update)."""

    count: int = 0
    mean: Optional[np.ndarray] = None
    m2: Optional[np.ndarray] = None

    def update(self, sample: np.ndarray) -> None:
        """Add one sample vector."""
        sample = np.asarray(sample, dtype=np.float64)
        if self.mean is None:
            self.mean = np.zeros_like(sample)
            self.m2 = np.zeros_like(sample)
        self.count += 1
        delta = sample - self.mean
        self.mean = self.mean + delta / self.count
        self.m2 = self.m2 + delta * (sample - self.mean)

    def update_batch(self, samples: np.ndarray) -> None:
        """Add a ``(batch, dim)`` block of samples."""
        for row in np.asarray(samples, dtype=np.float64):
            self.update(row)

    def variance(self) -> np.ndarray:
        """Per-coordinate empirical variance (population convention, /n)."""
        if self.mean is None or self.count == 0:
            raise InvalidParameterError("no samples recorded yet")
        return self.m2 / self.count


@dataclass
class AdaptiveSampler:
    """Doubling-batch schedule with empirical-Bernstein early stopping.

    Parameters
    ----------
    epsilon:
        Target relative error of the tracked estimates.
    delta:
        Failure probability handed to the concentration bound.
    value_bound:
        Upper bound ``Xsup`` of a single-sample value (the paper uses the
        graph diameter τ for voltage estimates).
    max_samples:
        Worst-case cap (the Hoeffding-style bound); sampling never exceeds it.
    min_samples:
        Lower bound before the stopping rule may fire; guards tiny-variance
        flukes during the first few samples.
    initial_batch:
        Size of the first batch; subsequent batches double.
    """

    epsilon: float
    delta: float
    value_bound: float
    max_samples: int
    min_samples: int = 8
    initial_batch: int = 16
    moments: StreamingMoments = field(default_factory=StreamingMoments)

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise InvalidParameterError("epsilon must lie in (0, 1)")
        if not 0 < self.delta < 1:
            raise InvalidParameterError("delta must lie in (0, 1)")
        if self.max_samples < 1:
            raise InvalidParameterError("max_samples must be >= 1")
        self.min_samples = max(1, min(self.min_samples, self.max_samples))
        self.initial_batch = max(1, self.initial_batch)

    # ---------------------------------------------------------------- schedule
    def batch_sizes(self) -> Iterable[int]:
        """Yield batch sizes (doubling) until ``max_samples`` is reached."""
        emitted = 0
        batch = self.initial_batch
        while emitted < self.max_samples:
            size = min(batch, self.max_samples - emitted)
            yield size
            emitted += size
            batch *= 2

    # ---------------------------------------------------------------- tracking
    def record(self, samples: np.ndarray) -> None:
        """Record a batch of per-sample estimate vectors (shape ``(b, dim)``)."""
        self.moments.update_batch(np.atleast_2d(samples))

    def half_widths(self) -> np.ndarray:
        """Empirical-Bernstein half-width of every tracked coordinate."""
        count = self.moments.count
        variance = self.moments.variance()
        log_term = math.log(3.0 / self.delta)
        return (np.sqrt(2.0 * variance * log_term / count)
                + 3.0 * self.value_bound * log_term / count)

    def should_stop(self) -> bool:
        """Line-17 stopping rule: every coordinate meets its relative target."""
        if self.moments.count < self.min_samples:
            return False
        estimates = self.moments.mean
        widths = self.half_widths()
        # Relative criterion eps' <= eps (estimate - eps'); estimates can be
        # near zero (or negative due to noise), in which case keep sampling
        # unless the absolute width itself is already tiny.
        slack = estimates - widths
        relative_ok = widths <= self.epsilon * np.maximum(slack, 0.0)
        absolute_ok = widths <= self.epsilon * 1e-12
        return bool(np.all(relative_ok | absolute_ok))

    @property
    def samples_used(self) -> int:
        """Number of samples recorded so far."""
        return self.moments.count
