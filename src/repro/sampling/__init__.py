"""Rooted spanning-forest sampling and adaptive stopping rules."""

from repro.sampling.wilson import sample_rooted_forest, sample_many_forests
from repro.sampling.forest import Forest
from repro.sampling.batch import (
    ForestBatch,
    LOCKSTEP_STATE_LIMIT,
    sample_forest_batch_vectorized,
)
from repro.sampling.bernstein import (
    empirical_bernstein_bound,
    hoeffding_bound,
    hoeffding_sample_size,
    AdaptiveSampler,
)
from repro.sampling.parallel import batched_seeds, sample_forest_batch
from repro.sampling.pool import (
    WeightedForestPool,
    edge_inclusion_prior,
    node_internal_prior,
)

__all__ = [
    "WeightedForestPool",
    "edge_inclusion_prior",
    "node_internal_prior",
    "sample_rooted_forest",
    "sample_many_forests",
    "Forest",
    "ForestBatch",
    "LOCKSTEP_STATE_LIMIT",
    "sample_forest_batch_vectorized",
    "empirical_bernstein_bound",
    "hoeffding_bound",
    "hoeffding_sample_size",
    "AdaptiveSampler",
    "batched_seeds",
    "sample_forest_batch",
]
