"""Rooted spanning-forest data structure.

A :class:`Forest` stores the parent pointers produced by Wilson's algorithm
(Algorithm 1 of the paper) for a root set ``S`` and provides the derived
quantities the estimators need:

* the root of every node (``ρ_u`` in the paper's notation);
* node depths and a children-before-parents processing order;
* Euler-tour intervals for O(1) "is ``a`` an ancestor of ``u``" queries;
* vectorised subtree aggregation of per-node weight vectors (the quantity
  ``Σ_{v ∈ subtree(x)} W_jv`` that drives the JL-projected estimators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import GraphError


@dataclass
class Forest:
    """A spanning forest of a graph rooted at a node set.

    Attributes
    ----------
    parent:
        ``parent[u]`` is the forest parent of ``u`` (``-1`` for roots).
    roots:
        Sorted array of root nodes (the root set ``S`` of the sample).
    """

    parent: np.ndarray
    roots: np.ndarray
    _root_of: Optional[np.ndarray] = field(default=None, repr=False)
    _depth: Optional[np.ndarray] = field(default=None, repr=False)
    _order: Optional[np.ndarray] = field(default=None, repr=False)
    _tin: Optional[np.ndarray] = field(default=None, repr=False)
    _tout: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.parent = np.asarray(self.parent, dtype=np.int64)
        self.roots = np.asarray(sorted(int(r) for r in self.roots), dtype=np.int64)
        n = self.parent.size
        if self.roots.size == 0:
            raise GraphError("a rooted forest needs at least one root")
        if self.roots.min() < 0 or self.roots.max() >= n:
            raise GraphError("forest roots outside node range")
        if np.any(self.parent[self.roots] != -1):
            raise GraphError("roots must have parent -1")

    # -------------------------------------------------------------- properties
    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.parent.size)

    def is_root(self, node: int) -> bool:
        """Whether ``node`` is a root."""
        return self.parent[node] < 0

    # ------------------------------------------------------------ derived data
    def depths(self) -> np.ndarray:
        """Depth of every node (roots have depth 0)."""
        if self._depth is None:
            self._compute_orders()
        return self._depth

    def root_of(self) -> np.ndarray:
        """``root_of()[u]`` is the root of the tree containing ``u`` (ρ_u)."""
        if self._root_of is None:
            self._compute_orders()
        return self._root_of

    def topological_order(self) -> np.ndarray:
        """Nodes ordered so that every parent precedes its children."""
        if self._order is None:
            self._compute_orders()
        return self._order

    def euler_intervals(self) -> tuple[np.ndarray, np.ndarray]:
        """Euler-tour entry/exit times ``(tin, tout)``.

        ``a`` is an ancestor of ``u`` (or equal) iff
        ``tin[a] <= tin[u] <= tout[a]``.
        """
        if self._tin is None:
            self._compute_euler()
        return self._tin, self._tout

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """Whether ``ancestor`` lies on the path from ``node`` to its root."""
        tin, tout = self.euler_intervals()
        return bool(tin[ancestor] <= tin[node] <= tout[ancestor])

    def path_to_root(self, node: int) -> List[int]:
        """Nodes on the path from ``node`` (inclusive) to its root (inclusive)."""
        path = [int(node)]
        current = int(node)
        while self.parent[current] >= 0:
            current = int(self.parent[current])
            path.append(current)
        return path

    def tree_sizes(self) -> dict:
        """Mapping root -> number of nodes in its tree (roots included)."""
        counts = np.bincount(self.root_of(), minlength=self.n)
        return {int(r): int(counts[r]) for r in self.roots}

    # ------------------------------------------------------------- aggregation
    def subtree_sums(self, weights: np.ndarray) -> np.ndarray:
        """Sum of ``weights`` over each node's forest subtree.

        Parameters
        ----------
        weights:
            Either a ``(n,)`` vector or a ``(w, n)`` matrix of per-node
            weights (one row per JL direction).

        Returns
        -------
        Array of the same shape whose entry for node ``x`` is
        ``Σ_{v ∈ subtree(x)} weights[..., v]``.  Root nodes include their own
        weight and all their descendants.

        The computation processes depth levels from the deepest up, adding
        each level's accumulated values onto the parents with ``np.add.at``,
        so the Python-level loop is only over the forest height.
        """
        weights = np.asarray(weights, dtype=np.float64)
        single = weights.ndim == 1
        if single:
            weights = weights[None, :]
        if weights.shape[1] != self.n:
            raise GraphError(
                f"weights must have {self.n} columns, got {weights.shape[1]}"
            )
        totals = weights.copy()
        depth = self.depths()
        max_depth = int(depth.max()) if depth.size else 0
        for level in range(max_depth, 0, -1):
            nodes = np.flatnonzero(depth == level)
            if nodes.size == 0:
                continue
            parents = self.parent[nodes]
            np.add.at(totals.T, parents, totals[:, nodes].T)
        return totals[0] if single else totals

    def subtree_sizes(self) -> np.ndarray:
        """Number of nodes in each node's subtree (itself included)."""
        return self.subtree_sums(np.ones(self.n)).astype(np.int64)

    # -------------------------------------------------------------- validation
    def validate_against(self, graph) -> None:
        """Check that the forest is a valid rooted spanning forest of ``graph``.

        * every non-root parent pointer follows a graph edge,
        * there are no cycles (every node reaches a root),
        * every root belongs to the declared root set.
        """
        n = self.n
        if graph.n != n:
            raise GraphError("forest and graph have different node counts")
        root_set = set(int(r) for r in self.roots)
        for u in range(n):
            p = int(self.parent[u])
            if p < 0:
                if u not in root_set:
                    raise GraphError(f"node {u} has no parent but is not a root")
                continue
            if not graph.has_edge(u, p):
                raise GraphError(f"forest edge ({u}, {p}) is not a graph edge")
        # Cycle check: walking up from any node must terminate within n steps.
        for u in range(n):
            current, steps = u, 0
            while self.parent[current] >= 0:
                current = int(self.parent[current])
                steps += 1
                if steps > n:
                    raise GraphError(f"cycle detected while walking up from node {u}")
            if current not in root_set:
                raise GraphError(f"node {u} does not reach a declared root")

    # --------------------------------------------------------------- internals
    def _compute_orders(self) -> None:
        """Depths, roots and a parents-first order via pointer doubling.

        Pointer doubling keeps everything inside NumPy fancy indexing
        (O(n log depth) work), which matters because a fresh forest is
        processed for every Monte Carlo sample.
        """
        n = self.n
        # Self-loop the roots so jumps saturate there.
        pointer = np.where(self.parent < 0, np.arange(n), self.parent)
        distance = (self.parent >= 0).astype(np.int64)
        for _ in range(max(int(np.ceil(np.log2(max(n, 2)))), 1) + 1):
            next_pointer = pointer[pointer]
            if np.array_equal(next_pointer, pointer):
                break
            distance = distance + distance[pointer]
            pointer = next_pointer
        depth = distance
        root_of = pointer
        root_set = set(int(r) for r in self.roots)
        bad = [u for u in np.flatnonzero(self.parent < 0) if int(u) not in root_set]
        if bad:
            raise GraphError(f"node {bad[0]} has no parent but is not a root")
        if not set(int(r) for r in np.unique(root_of)) <= root_set:
            missing = int(np.flatnonzero(~np.isin(root_of, self.roots))[0])
            raise GraphError(f"node {missing} unreachable from any root")
        self._depth = depth
        self._root_of = root_of
        self._order = np.argsort(depth, kind="stable").astype(np.int64)

    def _compute_euler(self) -> None:
        n = self.n
        # Children lists in CSR form from one stable argsort of the parent
        # array: the children of ``p`` are ``by_parent[starts[p]:ends[p]]``
        # (in ascending node order, matching the old list construction).
        by_parent = np.argsort(self.parent, kind="stable").astype(np.int64)
        sorted_parents = self.parent[by_parent]
        nodes = np.arange(n, dtype=np.int64)
        starts = np.searchsorted(sorted_parents, nodes, side="left")
        ends = np.searchsorted(sorted_parents, nodes, side="right")
        tin = np.zeros(n, dtype=np.int64)
        tout = np.zeros(n, dtype=np.int64)
        clock = 0
        for root in self.roots:
            root = int(root)
            tin[root] = clock
            clock += 1
            stack: List[List[int]] = [[root, int(starts[root])]]
            while stack:
                node, cursor = stack[-1]
                if cursor < ends[node]:
                    stack[-1][1] = cursor + 1
                    child = int(by_parent[cursor])
                    tin[child] = clock
                    clock += 1
                    stack.append([child, int(starts[child])])
                else:
                    tout[node] = clock
                    clock += 1
                    stack.pop()
        self._tin, self._tout = tin, tout
