"""Lockstep vectorised batch sampling of uniform rooted spanning forests.

Monte Carlo consumers of Wilson's algorithm (the ForestCFCM/SchurCFCM
estimators, the dynamic engine's forest pools, the async service's
resampling workers) draw *batches* of independent forests.  The scalar
sampler in :mod:`repro.sampling.wilson` pays Python-interpreter cost for
every random-walk step; this module amortises that cost across the whole
batch by running all ``B`` independent Wilson processes **in lockstep** in
NumPy.

The kernel uses the *cycle-popping* formulation of Wilson's algorithm
(Wilson 1996; Propp & Wilson 1998): every non-root site of every sample
carries a stack of i.i.d. uniform arrows to a neighbour, and repeatedly
popping the arrows of any present cycle — in **any** order — almost surely
terminates with the remaining top arrows forming a uniform spanning forest
rooted at ``S``.  The familiar random-walk formulation is just one popping
schedule; this kernel uses a vectorised one:

1. draw the initial ``B x (n - |S|)`` arrow field in one shot;
2. *cheap sweeps*: detect every 2-cycle of every sample with two fancy
   gathers (``succ[succ[i]] == i``) and redraw exactly those arrows —
   cycles of a functional graph are vertex-disjoint, so popping them all
   simultaneously is a valid popping order;
3. *classification sweeps* (when 2-cycles run dry): one batched
   pointer-doubling pass per sample computes which sites already reach the
   root set (they are **decided** and leave the working set) and lands
   every other site on its attracting cycle, which is then popped —
   catching cycles of any length;
4. *scalar finish*: once the undecided residue is small (or a sweep budget
   is exhausted on a popping-hostile graph), the remaining sites are
   finished with the scalar walk.  Pre-drawn arrows are revealed-but-
   unpopped stack tops, so the walk **follows** them on first visit and
   draws fresh on revisits — exactly the continuation of the same popping
   process, not a re-draw.

Every arrow ever drawn is an independent uniform neighbour, so by the
cycle-popping theorem the batch is ``B`` i.i.d. draws from the same uniform
rooted-forest distribution as the scalar sampler (see
``tests/test_batch_sampling.py`` for the distributional equivalence suite).
The speedup is largest in the regime the paper's algorithms actually hit —
expander-like graphs rooted at a group containing hubs (greedy roots
forests at the growing group ``S``; SchurCFCM enlarges the root set with
high-degree nodes for exactly this reason).  On slow-mixing graphs (rings,
paths) the sweep budget bails out early and most of the work falls through
to the scalar finish, so the kernel degrades to roughly scalar speed
instead of losing badly.

The result is a :class:`ForestBatch`: a ``(B, n)`` parent matrix with
*batched* post-processing kernels (pointer-doubling ``root_of``/``depths``,
an ``np.add.at`` subtree-sum kernel over a ``(B, n, w)`` tensor), so the
per-forest derived quantities the estimators need are also computed without
a per-forest Python pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.exceptions import DisconnectedGraphError, GraphError, InvalidParameterError
from repro.graph.graph import Graph
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS
from repro.obs.tracing import trace
from repro.sampling.forest import Forest
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_group

_LOCKSTEP_CHUNKS = REGISTRY.counter(
    "repro_sampling_lockstep_chunks_total",
    "Lockstep cycle-popping chunks drawn by the vectorised sampler",
)
_LOCKSTEP_FORESTS = REGISTRY.histogram(
    "repro_sampling_lockstep_forests",
    "Forests drawn per vectorised batch request",
    buckets=SIZE_BUCKETS,
)

# The lockstep sampler keeps O(B * n) state (arrow field + working set) and
# indexes it with int32; batches whose state would exceed this many entries
# are drawn in internal chunks, and dispatchers fall back to the scalar
# (optionally process-pooled) path beyond it.
LOCKSTEP_STATE_LIMIT = 1 << 25

# Hand the residue to the scalar finish once fewer than (B * n) >> SWITCH
# pairs remain undecided: below that width the per-sweep NumPy call
# overhead costs more than the Python walk.
_SWITCH_SHIFT = 5
# Keep popping 2-cycles while a sweep pops at least max(32, K >> DRY) of
# them; below that rate run a classification sweep instead.
_DRY_SHIFT = 6
# Total vector-phase sweep budget.  Expander-like graphs finish in well
# under this; popping-hostile graphs (rings, paths) would grind through
# hundreds of low-yield sweeps, so beyond the budget the kernel bails out
# and lets the scalar finish complete the batch at scalar speed.
_MAX_SWEEPS = 48


@dataclass
class ForestBatch:
    """``B`` rooted spanning forests over one graph, stored as a matrix.

    Attributes
    ----------
    parent:
        ``(B, n)`` int64 matrix; ``parent[b, u]`` is the forest parent of
        ``u`` in sample ``b`` (``-1`` for roots).
    roots:
        Sorted root set shared by every sample.

    The derived-quantity methods mirror :class:`repro.sampling.Forest` but
    operate on the whole batch at once; :meth:`forest` materialises one row
    as a :class:`Forest` (sharing any caches already computed batch-wide).
    """

    parent: np.ndarray
    roots: np.ndarray
    _root_of: Optional[np.ndarray] = field(default=None, repr=False)
    _depth: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.parent = np.asarray(self.parent, dtype=np.int64)
        if self.parent.ndim != 2:
            raise GraphError(
                f"batch parent matrix must be 2-D (B, n), got shape {self.parent.shape}"
            )
        self.roots = np.asarray(sorted(int(r) for r in self.roots), dtype=np.int64)
        n = self.parent.shape[1]
        if self.roots.size == 0:
            raise GraphError("a rooted forest batch needs at least one root")
        if self.roots.min() < 0 or self.roots.max() >= n:
            raise GraphError("forest roots outside node range")
        if self.parent.size and np.any(self.parent[:, self.roots] != -1):
            raise GraphError("roots must have parent -1 in every sample")

    # -------------------------------------------------------------- properties
    @property
    def batch_size(self) -> int:
        """Number of forests in the batch."""
        return int(self.parent.shape[0])

    @property
    def n(self) -> int:
        """Number of nodes per forest."""
        return int(self.parent.shape[1])

    def __len__(self) -> int:
        return self.batch_size

    # ------------------------------------------------------------ derived data
    def root_of(self) -> np.ndarray:
        """``(B, n)`` matrix: root of the tree containing each node, per sample."""
        if self._root_of is None:
            self._compute_orders()
        return self._root_of

    def depths(self) -> np.ndarray:
        """``(B, n)`` matrix of node depths (roots have depth 0)."""
        if self._depth is None:
            self._compute_orders()
        return self._depth

    def tree_sizes(self) -> np.ndarray:
        """``(B, len(roots))`` matrix of tree sizes (roots included)."""
        batch, n = self.parent.shape
        if batch == 0:
            return np.zeros((0, self.roots.size), dtype=np.int64)
        flat = self.root_of() + (np.arange(batch, dtype=np.int64) * n)[:, None]
        counts = np.bincount(flat.ravel(), minlength=batch * n).reshape(batch, n)
        return counts[:, self.roots]

    # ------------------------------------------------------------- aggregation
    def subtree_sums(self, weights: np.ndarray) -> np.ndarray:
        """Per-sample forest-subtree sums of shared per-node ``weights``.

        Parameters
        ----------
        weights:
            ``(n,)`` vector or ``(w, n)`` matrix of per-node weights, shared
            by every sample of the batch.

        Returns
        -------
        ``(B, n)`` (vector input) or ``(B, w, n)`` (matrix input) array whose
        entry for sample ``b`` and node ``x`` is
        ``Σ_{v ∈ subtree_b(x)} weights[..., v]``.

        One ``np.add.at`` scatter per depth level folds every sample at once,
        so the Python-level loop runs over the *batch-wide* forest height
        instead of once per forest.
        """
        weights = np.asarray(weights, dtype=np.float64)
        single = weights.ndim == 1
        if single:
            weights = weights[None, :]
        if weights.ndim != 2 or weights.shape[1] != self.n:
            raise GraphError(
                f"weights must have {self.n} columns, got shape {weights.shape}"
            )
        batch = self.batch_size
        rows = weights.shape[0]
        # (B, n, w) layout keeps the scatter axis contiguous per (sample, node).
        totals = np.broadcast_to(weights.T, (batch, self.n, rows)).copy()
        depth = self.depths()
        max_depth = int(depth.max()) if depth.size else 0
        for level in range(max_depth, 0, -1):
            b_idx, nodes = np.nonzero(depth == level)
            if b_idx.size == 0:
                continue
            parents = self.parent[b_idx, nodes]
            np.add.at(totals, (b_idx, parents), totals[b_idx, nodes])
        stacked = totals.transpose(0, 2, 1)
        return stacked[:, 0, :] if single else stacked

    def subtree_sizes(self) -> np.ndarray:
        """``(B, n)`` number of nodes in each node's subtree (itself included)."""
        return self.subtree_sums(np.ones(self.n)).astype(np.int64)

    # ----------------------------------------------------------- set algebra
    def uses_edge(self, u: int, v: int) -> np.ndarray:
        """``(B,)`` mask: whether each sample's parent pointers traverse (u, v)."""
        u, v = int(u), int(v)
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise InvalidParameterError(
                f"edge ({u}, {v}) outside node range [0, {self.n})"
            )
        return (self.parent[:, u] == v) | (self.parent[:, v] == u)

    def select(self, keep) -> "ForestBatch":
        """A new batch holding only the selected rows (mask or index array).

        Cached derived matrices (root maps, depths) are sliced along, so
        selection never forces a recompute.
        """
        keep = np.asarray(keep)
        # Fancy indexing already yields fresh arrays — no defensive copies.
        selected = ForestBatch(parent=self.parent[keep], roots=self.roots.copy())
        if self._root_of is not None:
            selected._root_of = self._root_of[keep]
            selected._depth = self._depth[keep]
        return selected

    def with_leaf(self, leaf_parents: np.ndarray) -> "ForestBatch":
        """Extend every sample with a new node ``n`` attached as a leaf.

        ``leaf_parents[b]`` is the (existing) node the new node hangs off in
        sample ``b``.  This is the pool's node-insertion primitive: a rooted
        forest of ``G + z`` in which ``z`` is a leaf is exactly a rooted
        forest of ``G`` plus an independent choice of ``z``'s parent, so the
        extension keeps every stored sample a valid spanning forest of the
        grown graph.  Cached root maps and depths extend in O(B).
        """
        leaf_parents = np.asarray(leaf_parents, dtype=np.int64)
        if leaf_parents.shape != (self.batch_size,):
            raise InvalidParameterError(
                f"leaf_parents must have shape ({self.batch_size},), "
                f"got {leaf_parents.shape}"
            )
        if leaf_parents.size and (
                leaf_parents.min() < 0 or leaf_parents.max() >= self.n):
            raise InvalidParameterError("leaf parents outside node range")
        parent = np.concatenate([self.parent, leaf_parents[:, None]], axis=1)
        grown = ForestBatch(parent=parent, roots=self.roots.copy())
        if self._root_of is not None:
            rows = np.arange(self.batch_size)
            grown._root_of = np.concatenate(
                [self._root_of, self._root_of[rows, leaf_parents][:, None]],
                axis=1)
            grown._depth = np.concatenate(
                [self._depth, (self._depth[rows, leaf_parents] + 1)[:, None]],
                axis=1)
        return grown

    @classmethod
    def from_forests(cls, forests: List[Forest]) -> "ForestBatch":
        """Stack standalone :class:`Forest` objects into one batch."""
        if not forests:
            raise InvalidParameterError(
                "from_forests needs at least one forest (roots are unknown "
                "for an empty batch)"
            )
        roots = forests[0].roots
        for forest in forests[1:]:
            if forest.n != forests[0].n or not np.array_equal(forest.roots, roots):
                raise InvalidParameterError(
                    "all forests of a batch must share node count and roots"
                )
        return cls(parent=np.vstack([f.parent for f in forests]),
                   roots=roots.copy())

    @classmethod
    def concatenate(cls, batches: List["ForestBatch"]) -> "ForestBatch":
        """Stack batches over the same graph and root set into one."""
        if not batches:
            raise InvalidParameterError("concatenate needs at least one batch")
        first = batches[0]
        for batch in batches[1:]:
            if batch.n != first.n or not np.array_equal(batch.roots, first.roots):
                raise InvalidParameterError(
                    "all batches must share node count and roots"
                )
        return cls(parent=np.vstack([b.parent for b in batches]),
                   roots=first.roots.copy())

    # ------------------------------------------------------------ materialise
    def forest(self, index: int) -> Forest:
        """Row ``index`` as a standalone :class:`Forest` (caches carried over)."""
        index = int(index)
        if not 0 <= index < self.batch_size:
            raise InvalidParameterError(
                f"forest index {index} outside batch of {self.batch_size}"
            )
        forest = Forest(parent=self.parent[index].copy(), roots=self.roots.copy())
        if self._root_of is not None:
            forest._root_of = self._root_of[index].copy()
            forest._depth = self._depth[index].copy()
            forest._order = np.argsort(forest._depth, kind="stable").astype(np.int64)
        return forest

    def forests(self) -> List[Forest]:
        """The whole batch as a list of :class:`Forest` objects."""
        return [self.forest(i) for i in range(self.batch_size)]

    def __iter__(self) -> Iterator[Forest]:
        return iter(self.forests())

    def __getitem__(self, index: int) -> Forest:
        return self.forest(index)

    # --------------------------------------------------------------- internals
    def _compute_orders(self) -> None:
        """Batched pointer-doubling pass for depths and tree roots."""
        batch, n = self.parent.shape
        if batch == 0:
            self._root_of = np.zeros((0, n), dtype=np.int64)
            self._depth = np.zeros((0, n), dtype=np.int64)
            return
        identity = np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n))
        pointer = np.where(self.parent < 0, identity, self.parent)
        distance = (self.parent >= 0).astype(np.int64)
        for _ in range(max(int(np.ceil(np.log2(max(n, 2)))), 1) + 1):
            next_pointer = np.take_along_axis(pointer, pointer, axis=1)
            if np.array_equal(next_pointer, pointer):
                break
            distance = distance + np.take_along_axis(distance, pointer, axis=1)
            pointer = next_pointer
        root_mask = np.zeros(n, dtype=bool)
        root_mask[self.roots] = True
        if np.any(self.parent[:, ~root_mask] < 0):
            bad = int(np.flatnonzero(np.any(self.parent < 0, axis=0) & ~root_mask)[0])
            raise GraphError(f"node {bad} has no parent but is not a root")
        if not bool(root_mask[pointer].all()):
            sample, node = [int(v[0]) for v in np.nonzero(~root_mask[pointer])]
            raise GraphError(
                f"node {node} of sample {sample} unreachable from any root"
            )
        self._root_of = pointer
        self._depth = distance


def sample_forest_batch_vectorized(graph: Graph, roots, count: int,
                                   seed: RandomState = None) -> ForestBatch:
    """Sample ``count`` independent rooted forests with lockstep kernels.

    All ``count`` Wilson processes advance simultaneously through the
    vectorised cycle-popping schedule described in the module docstring:
    one bulk draw of every sample's arrow field, vectorised 2-cycle pops,
    batched pointer-doubling classification sweeps, and a scalar finish for
    the residue.  Every arrow is an i.i.d. uniform neighbour and only
    cycles are ever popped, so by Wilson's cycle-popping theorem the batch
    is ``count`` independent draws from the *same* uniform rooted-forest
    distribution as :func:`repro.sampling.sample_rooted_forest`.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    roots:
        Non-empty root set ``S`` shared by every sample.
    count:
        Number of independent forests to draw.  Batches whose ``count * n``
        state exceeds :data:`LOCKSTEP_STATE_LIMIT` are drawn in internal
        chunks.
    seed:
        Seed or generator; a given seed fully determines the batch (the
        stream differs from the scalar sampler's, which consumes randoms
        one walk at a time).

    Returns
    -------
    :class:`ForestBatch` holding the ``(count, n)`` parent matrix.
    """
    roots = check_group(roots, graph.n, allow_empty=False)
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    rng = as_rng(seed)
    n = graph.n
    count = int(count)
    root_arr = np.asarray(list(roots), dtype=np.int64)
    if count == 0:
        return ForestBatch(parent=np.empty((0, n), dtype=np.int64), roots=root_arr)

    _LOCKSTEP_FORESTS.observe(count)
    with trace("sampling.lockstep", forests=count, n=n) as span:
        if (n > LOCKSTEP_STATE_LIMIT
                or 2 * graph.m > np.iinfo(np.int32).max
                or (graph.degrees.size and int(graph.degrees.max()) > (1 << 24))):
            # The kernel's int32 pair/CSR indexing would overflow (huge n or
            # adjacency), or a hub's degree exceeds the float32 mantissa so
            # the cheap arrow draw could not reach all its neighbours; this
            # regime belongs to the scalar (optionally process-pooled) path.
            from repro.sampling.wilson import sample_rooted_forest

            span.set(path="scalar")
            rows = [sample_rooted_forest(graph, roots, seed=rng).parent
                    for _ in range(count)]
            return ForestBatch(parent=np.vstack(rows), roots=root_arr)
        chunk = max(1, LOCKSTEP_STATE_LIMIT // max(n, 1))
        if count > chunk:
            pieces = []
            remaining = count
            while remaining > 0:
                take = min(remaining, chunk)
                pieces.append(_sample_chunk(graph, root_arr, take, rng))
                _LOCKSTEP_CHUNKS.inc()
                remaining -= take
            span.set(chunks=len(pieces))
            return ForestBatch(parent=np.vstack(pieces), roots=root_arr)
        parent = _sample_chunk(graph, root_arr, count, rng)
        _LOCKSTEP_CHUNKS.inc()
        span.set(chunks=1)
        return ForestBatch(parent=parent, roots=root_arr)


def _sample_chunk(graph: Graph, root_arr: np.ndarray, batch: int,
                  rng: np.random.Generator) -> np.ndarray:
    """One lockstep cycle-popping pass; returns the ``(batch, n)`` parents."""
    n = graph.n
    index_dtype = np.int32
    indptr = graph.indptr.astype(index_dtype)
    adjacency = graph.adjacency.astype(index_dtype)
    degrees = graph.degrees.astype(index_dtype)
    degrees_f = graph.degrees.astype(np.float32)
    root_mask = np.zeros(n, dtype=bool)
    root_mask[root_arr] = True
    isolated = np.flatnonzero(~root_mask & (graph.degrees == 0))
    if isolated.size:
        raise DisconnectedGraphError(
            f"node {int(isolated[0])} has no neighbours; the graph must be connected"
        )

    def draw_arrows(nodes: np.ndarray) -> np.ndarray:
        """One uniform-neighbour arrow per node (float32 keeps draws cheap)."""
        r = rng.random(nodes.size, dtype=np.float32)
        pick = (r * degrees_f[nodes]).astype(index_dtype)
        np.minimum(pick, degrees[nodes] - 1, out=pick)  # measure-zero guard
        return adjacency[indptr[nodes] + pick]

    # Arrow field over flat (sample, node) pairs; roots self-loop so a chain
    # entering the root set saturates there.
    nonroot = np.flatnonzero(~root_mask).astype(index_dtype)
    succ = np.arange(batch * n, dtype=index_dtype)
    # Working set of undecided pairs, kept as one (3, K) int32 matrix so
    # shrinking it is a single boolean compress: rows are the flat pair id,
    # the node id, and the sample base (pair id - node id).
    state = np.empty((3, batch * nonroot.size), dtype=index_dtype)
    state[2] = np.repeat(np.arange(batch, dtype=index_dtype) * n, nonroot.size)
    state[1] = np.tile(nonroot, batch)
    state[0] = state[2] + state[1]
    if state.shape[1]:
        succ[state[0]] = state[2] + draw_arrows(state[1])

    rank_of = np.full(batch * n, -1, dtype=index_dtype)
    rank_buf = np.arange(batch * n, dtype=index_dtype)
    doubling_passes = max(int(np.ceil(np.log2(max(n, 2)))), 1) + 1
    switch = (batch * n) >> _SWITCH_SHIFT
    sweeps = 0

    while state.shape[1] > switch and sweeps < _MAX_SWEEPS:
        idx, node, sbase = state
        total = idx.size
        # Cheap sweep: pop every 2-cycle of every sample at once.
        two_cycle = succ[succ[idx]] == idx
        hits = int(np.count_nonzero(two_cycle))
        sweeps += 1
        if hits:
            succ[idx[two_cycle]] = sbase[two_cycle] + draw_arrows(node[two_cycle])
        if hits >= max(32, total >> _DRY_SHIFT):
            continue
        # Classification sweep: batched pointer doubling decides which pairs
        # reach the root set (pruned from the working set) and lands every
        # other pair on its attracting cycle, which is then popped.
        sweeps += 1
        rank_of[idx] = rank_buf[:total]
        compact = rank_of[succ[idx]]
        pointer = np.empty(total + 1, dtype=index_dtype)
        pointer[:total] = compact
        np.copyto(pointer[:total], total, where=compact < 0)
        pointer[total] = total
        scratch = np.empty_like(pointer)
        for _ in range(doubling_passes):
            np.take(pointer, pointer, out=scratch)
            pointer, scratch = scratch, pointer
        landing = pointer[:total]
        undecided = landing != total
        rank_of[idx] = -1
        if not undecided.any():
            state = state[:, :0]
            break
        on_cycle = np.zeros(total, dtype=bool)
        on_cycle[landing[undecided]] = True
        succ[idx[on_cycle]] = sbase[on_cycle] + draw_arrows(node[on_cycle])
        state = state[:, undecided]

    parent = succ.astype(np.int64)
    parent -= np.repeat(np.arange(batch, dtype=np.int64) * n, n)
    parent = parent.reshape(batch, n)
    parent[:, root_arr] = -1
    if state.shape[1]:
        _scalar_finish(graph, root_arr, parent, state[0], rng)
    return parent


def _scalar_finish(graph: Graph, root_arr: np.ndarray, parent: np.ndarray,
                   undecided: np.ndarray, rng: np.random.Generator) -> None:
    """Finish the undecided pairs of each sample with the scalar walk.

    The pre-drawn arrows of undecided nodes are revealed-but-unpopped stack
    tops of the cycle-popping process, so the walk *follows* them on a
    node's first visit and only draws fresh randomness on revisits (a
    revisit closes a cycle through the node, which pops its arrow).  This
    continues the exact same popping process the vector phase ran, so the
    joint distribution is unchanged.  Decided pairs act as the grown forest
    (walks attach to them), mirroring ``sample_rooted_forest``.
    """
    n = graph.n
    indptr, adjacency, degrees = graph.adjacency_lists()
    sample_of = (undecided.astype(np.int64)) // n
    node_of = (undecided.astype(np.int64)) % n
    order = np.argsort(sample_of, kind="stable")
    sample_of, node_of = sample_of[order], node_of[order]

    block_size = 4096
    randoms = rng.random(block_size).tolist()
    cursor = 0
    max_visits = 200 * n * max(int(math.log(max(n, 2))), 1) + 10000

    start = 0
    total = sample_of.size
    while start < total:
        b = int(sample_of[start])
        stop = start
        while stop < total and sample_of[stop] == b:
            stop += 1
        sources = node_of[start:stop]
        decided = np.ones(n, dtype=bool)
        decided[sources] = False
        in_forest = bytearray(decided.tobytes())
        parent_list = parent[b].tolist()
        fresh = bytearray(n)
        for u in sources:
            fresh[u] = 1
        visits = 0
        for source in sources:
            source = int(source)
            if in_forest[source]:
                continue
            current = source
            while not in_forest[current]:
                if fresh[current]:
                    # First visit: reveal the pre-drawn (unpopped) arrow.
                    fresh[current] = 0
                    current = parent_list[current]
                else:
                    degree = degrees[current]
                    if cursor >= block_size:
                        randoms = rng.random(block_size).tolist()
                        cursor = 0
                    pick = int(randoms[cursor] * degree)
                    cursor += 1
                    if pick == degree:  # guard against the measure-zero edge case
                        pick = degree - 1
                    nxt = adjacency[indptr[current] + pick]
                    parent_list[current] = nxt
                    current = nxt
                visits += 1
                if visits > max_visits:
                    raise DisconnectedGraphError(
                        "random walk failed to reach the root set; "
                        "is the graph connected?"
                    )
            current = source
            while not in_forest[current]:
                in_forest[current] = 1
                current = parent_list[current]
        parent[b] = parent_list
        parent[b, root_arr] = -1
        start = stop
