"""Wilson's algorithm for uniformly sampling rooted spanning forests.

This is Algorithm 1 (``RandomForest``) of the paper: starting from each
unvisited node, simulate a random walk until it hits the growing forest, then
erase the loops of the walk and attach the resulting path.  The distribution
of the sampled forest is uniform over spanning forests rooted at ``S`` and is
independent of the order in which source nodes are processed (Wilson 1996).

The implementation keeps the per-node loop in Python (the walk is inherently
sequential) but draws random numbers in blocks and uses the CSR adjacency
arrays directly, which keeps constant factors small enough for the graph
sizes used in this reproduction.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import DisconnectedGraphError, InvalidParameterError
from repro.graph.graph import Graph
from repro.sampling.forest import Forest
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_group


def sample_rooted_forest(graph: Graph, roots: Sequence[int],
                         seed: RandomState = None,
                         source_order: Sequence[int] | None = None,
                         ) -> Forest:
    """Sample one uniform spanning forest of ``graph`` rooted at ``roots``.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    roots:
        Non-empty node set ``S``; every tree of the forest is rooted at one of
        these nodes and every node of ``V \\ S`` appears in exactly one tree.
    seed:
        Seed or generator controlling the random walks.
    source_order:
        Optional order in which source nodes are processed.  The forest
        distribution is invariant to this order (Wilson's theorem); exposing
        it makes the invariance testable.

    Returns
    -------
    :class:`repro.sampling.Forest` with parent pointers into the graph.
    """
    roots = check_group(roots, graph.n, allow_empty=False)
    rng = as_rng(seed)

    n = graph.n
    # Plain Python lists keep the tight random-walk loop free of per-element
    # NumPy scalar overhead; the walk is the hot path of every algorithm.
    indptr, adjacency, degrees = graph.adjacency_lists()
    in_forest = bytearray(n)
    for r in roots:
        in_forest[r] = 1
    parent = [-1] * n

    if source_order is None:
        sources: Sequence[int] = range(n)
    else:
        sources = [int(v) for v in source_order]
        if sorted(set(sources)) != list(range(n)):
            raise InvalidParameterError("source_order must be a permutation of all nodes")

    # Blocked uniform draws amortise the generator call overhead.
    block_size = max(4 * n, 1024)
    randoms = rng.random(block_size).tolist()
    cursor = 0

    visit_budget = 0
    max_visits = 200 * n * max(int(np.log(max(n, 2))), 1) + 10000

    for source in sources:
        if in_forest[source]:
            continue
        # Phase 1: random walk until the current forest is hit, recording the
        # most recent successor of every visited node (automatic loop erasure).
        current = source
        while not in_forest[current]:
            degree = degrees[current]
            if degree == 0:
                raise DisconnectedGraphError(
                    f"node {current} has no neighbours; the graph must be connected"
                )
            if cursor >= block_size:
                randoms = rng.random(block_size).tolist()
                cursor = 0
            pick = int(randoms[cursor] * degree)
            cursor += 1
            if pick == degree:  # guard against the measure-zero edge case
                pick = degree - 1
            nxt = adjacency[indptr[current] + pick]
            parent[current] = nxt
            current = nxt
            visit_budget += 1
            if visit_budget > max_visits:
                raise DisconnectedGraphError(
                    "random walk failed to reach the root set; is the graph connected?"
                )
        # Phase 2: freeze the loop-erased path from the source to the forest.
        current = source
        while not in_forest[current]:
            in_forest[current] = 1
            current = parent[current]

    parent_array = np.asarray(parent, dtype=np.int64)
    parent_array[list(roots)] = -1
    return Forest(parent=parent_array, roots=np.asarray(list(roots), dtype=np.int64))


def sample_many_forests(graph: Graph, roots: Sequence[int], count: int,
                        seed: RandomState = None) -> List[Forest]:
    """Sample ``count`` independent rooted forests (convenience for tests)."""
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    rng = as_rng(seed)
    return [sample_rooted_forest(graph, roots, seed=rng) for _ in range(count)]


def expected_sampling_cost(graph: Graph, roots: Sequence[int]) -> float:
    """Exact expected number of random-walk steps of Wilson's algorithm.

    Lemma 3.7: the expected number of node visits is bounded by
    ``Tr((I - P_{-S})^{-1})``, the sum over nodes of the expected number of
    visits before absorption.  Computed densely; intended for analysis and for
    validating the efficiency benefit of enlarging the root set (SchurCFCM).
    """
    from repro.linalg.laplacian import grounded_transition_matrix

    submatrix, _ = grounded_transition_matrix(graph, roots)
    dense = submatrix.toarray()
    identity = np.eye(dense.shape[0])
    fundamental = np.linalg.inv(identity - dense)
    return float(np.trace(fundamental))


def empirical_root_distribution(graph: Graph, roots: Sequence[int],
                                samples: int, seed: RandomState = None,
                                method: str = "lockstep") -> np.ndarray:
    """Fraction of samples in which each node is rooted at each root.

    Returns an ``(n, len(roots))`` matrix of empirical probabilities — the
    sampled counterpart of the absorption matrix ``F`` of Lemma 4.2, used by
    tests to check the sampler against the exact linear-algebra values.

    ``method="lockstep"`` (the default) draws the samples with the
    vectorised batch sampler in memory-bounded chunks and accumulates each
    chunk with one ``bincount``; ``method="scalar"`` draws them one at a
    time with this module's sampler (one vectorised ``np.add.at`` per
    sample), which is what the lockstep kernel's distributional-equivalence
    tests compare against.
    """
    method = str(method).lower()
    if method not in ("lockstep", "scalar"):
        raise InvalidParameterError(
            f"method must be 'lockstep' or 'scalar', got {method!r}"
        )
    roots_sorted = sorted(int(r) for r in set(roots))
    n = graph.n
    width = len(roots_sorted)
    column = np.full(n, -1, dtype=np.int64)
    column[roots_sorted] = np.arange(width, dtype=np.int64)
    counts = np.zeros((n, width), dtype=np.float64)
    rng = as_rng(seed)
    nodes = np.arange(n)
    if method == "scalar":
        for _ in range(samples):
            forest = sample_rooted_forest(graph, roots_sorted, seed=rng)
            np.add.at(counts, (nodes, column[forest.root_of()]), 1.0)
        return counts / max(samples, 1)

    from repro.sampling.batch import LOCKSTEP_STATE_LIMIT, sample_forest_batch_vectorized

    chunk_size = max(1, LOCKSTEP_STATE_LIMIT // max(n, 1))
    remaining = int(samples)
    cell = nodes * width  # flat (node, column) cell index base
    while remaining > 0:
        take = min(remaining, chunk_size)
        batch = sample_forest_batch_vectorized(graph, roots_sorted, take, seed=rng)
        flat = (cell[None, :] + column[batch.root_of()]).reshape(-1)
        counts += np.bincount(flat, minlength=n * width).reshape(n, width)
        remaining -= take
    return counts / max(samples, 1)
