"""Importance-weighted pools of rooted spanning forests.

Monte Carlo consumers that survive graph mutations (the dynamic engine's
:meth:`~repro.dynamic.DynamicCFCM.evaluate_forest`, the async service's
resampling workers) keep a *pool* of sampled forests per root set.  Before
this module, pools were lists of :class:`~repro.sampling.forest.Forest`
objects that were flushed wholesale whenever the graph drifted: edge
insertions bumped a crude drift counter, node insertions and reweights threw
every stored sample away.

:class:`WeightedForestPool` replaces that policy with importance weighting
over one :class:`~repro.sampling.batch.ForestBatch`-backed ``(B, n)`` parent
matrix.  Every stored forest carries a **log importance weight relative to a
forest freshly drawn from the current graph's rooted-forest distribution**
(fresh draws enter at log-weight 0).  Mutations update weights instead of
flushing:

* **edge removal** — forests whose parent pointers use the edge have density
  zero under the new distribution and are dropped; the survivors are exact
  samples of the new distribution (for unit weights, forests of ``G - e``
  are exactly the forests of ``G`` avoiding ``e``, and conditioning a
  uniform sample is exact), so their weights are untouched;
* **edge reweighting** — the rooted-forest density is ``∏_{e ∈ F} w_e`` up
  to normalisation, so a forest using the edge is reweighted by the exact
  ratio ``w'_e / w_e``.  A reweight that later returns to the old weight
  cancels exactly — pools survive transient weight excursions that used to
  force a flush.  (The normalisation ratio ``Z/Z'`` is common to all stored
  forests and cancels under self-normalisation whenever the pool is
  evaluated at unit weights, the only regime the estimators accept.)
* **edge insertion** — stored forests cannot use the new edge, so they are
  samples of the new distribution *conditioned on avoiding it* — correct on
  their stratum, but blind to the forests that use the edge.  Every stored
  forest is therefore down-weighted by ``1 - β̂`` where ``β̂`` is a cheap
  prior for the new edge's forest-inclusion probability
  (:func:`edge_inclusion_prior`); the missing stratum is progressively
  covered by fresh top-up draws, which enter at weight 1 and dominate the
  self-normalised estimate as churn accumulates.
* **node insertion** — a rooted forest of ``G + z`` in which ``z`` is a leaf
  is exactly a forest of ``G`` plus an independent choice of ``z``'s parent
  (drawn ∝ attachment weight), so every stored forest is *extended* in
  place (:meth:`extend_leaf`).  The missing stratum (forests where ``z`` is
  internal) is handled like an insertion: a conservative down-weight plus
  fresh draws.  Insertions never force a flush.

**Effective sample size.**  The pool's health metric is
``ess = min(Kish, Σ_i min(w_i, 1))`` — the classical Kish effective sample
size ``(Σw)² / Σw²`` (variance inflation from weight skew) capped by the
*fidelity mass* ``Σ min(w_i, 1)`` (how many perfectly fresh samples the pool
is worth; a uniformly stale pool scales Kish-invariantly, which is exactly
the failure mode the cap catches).  A fresh pool has ``ess == size``.  The
refresh policy (:meth:`plan_refresh`) tops the pool up with fresh draws
whenever ``ess`` falls below a configurable floor, evicting the
lowest-weight forests to make room — so sustained churn continuously
replaces stale mass instead of periodically discarding everything.

The conservative insertion priors only pace the policy; estimator
consistency comes from dead-on removal, exact reweight ratios, and the fresh
draws that the ESS floor keeps pulling in (see ``tests/test_pool.py`` for
the tolerance suite against fresh-pool and exact references).

**Estimator caching.**  A forest's estimator value (e.g. its Lemma 3.3
trace contribution under a fixed path system) is a deterministic function
of its parent row, so the pool keeps an optional per-forest ``traces``
cache row-aligned through every compress/admit.  Weight updates never touch
it; the consumer (the dynamic engine) fills invalid rows, extends it on
node joins, and invalidates it when its path system dies — which is what
lets a pooled evaluation under churn fold only the freshly drawn forests.
The same contract extends to the JL-*projected* estimator rows (each
forest's ``(w, n)`` projected tensor plus its diagonal row, the inputs of
the ``estimate_forest_delta``-style gain evaluation): cached per forest,
row-aligned through every compress/admit, and invalidated whenever the
path system or projection changes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.sampling.batch import ForestBatch
from repro.sampling.forest import Forest

# Forests whose log-weight falls below this are numerically dead: their
# contribution to a self-normalised estimate is < 1e-26 of a fresh draw's.
DEAD_LOG_WEIGHT = -60.0


def edge_inclusion_prior(degree_u: int, degree_v: int) -> float:
    """Cheap prior for ``Pr[(u, v) ∈ F]`` under the rooted-forest law.

    A forest edge at ``(u, v)`` means ``π(u) = v`` or ``π(v) = u``; the
    uniform-arrow heuristic prices each event at ``≈ 1/deg``, giving the
    union bound ``1/d_u + 1/d_v``.  Empirically this tracks the true
    inclusion probability well across densities (e.g. ~0.33 predicted vs
    ~0.36 measured for random insertions on a degree-6 graph, ~0.13 vs
    ~0.12 at degree 16).  Capped at 1/2; the prior only paces the pool's
    staleness decay (how fast ESS falls per insertion), never the estimate
    itself — consistency comes from the fresh draws the ESS floor pulls in.
    """
    guess = 1.0 / max(int(degree_u), 1) + 1.0 / max(int(degree_v), 1)
    return min(0.5, guess)


def node_internal_prior(neighbour_degrees: Sequence[int]) -> float:
    """Prior for ``Pr[z is internal]`` after inserting node ``z``.

    ``z`` is internal when some neighbour's forest parent points at it; the
    union bound over the uniform-arrow heuristic gives ``Σ 1/deg``, capped.
    """
    guess = sum(1.0 / max(int(d), 1) for d in neighbour_degrees)
    return min(0.75, guess)


class WeightedForestPool:
    """A bounded pool of importance-weighted rooted forests for one root set.

    Parameters
    ----------
    roots:
        The (compact snapshot-id) root set shared by every stored forest.
    capacity:
        Target number of stored forests.
    ess_floor:
        Fraction of ``capacity``; when the pool's effective sample size
        falls below ``ess_floor * capacity``, :meth:`plan_refresh` schedules
        fresh draws (evicting the lowest-weight forests to make room).
    adaptive_floor:
        Tune the live ESS floor from the observed churn rate.  Under
        sustained churn the floor relaxes towards ``min(0.25, ess_floor)``
        (benchmarks show 0.25 vs 0.5 halves redraw volume at negligible
        accuracy cost, because fresh draws arrive continuously anyway);
        when churn subsides it recovers to the configured ``ess_floor``.
        The live value is reported by :meth:`health` (and therefore by the
        ``repro_pool_ess_floor`` gauge) and :meth:`effective_floor`.

    Notes
    -----
    The pool stores parents as one ``(B, n)`` matrix and weights as log
    importance weights relative to a fresh draw from the *current* graph
    (see the module docstring for the exact per-event semantics).  All
    mutation hooks are O(B) NumPy passes.
    """

    # Churn-pressure EWMA of the adaptive floor: fraction of new observation
    # folded in per refresh check, and the pressure at which the floor is
    # fully relaxed (one unit ~= the whole pool decayed once per check).
    _CHURN_SMOOTHING = 0.3
    _CHURN_SCALE = 1.0

    def __init__(self, roots: Sequence[int], capacity: int,
                 ess_floor: float = 0.5, adaptive_floor: bool = False):
        self.roots = np.asarray(sorted(int(r) for r in roots), dtype=np.int64)
        if self.roots.size == 0:
            raise InvalidParameterError("pool root set must be non-empty")
        capacity = int(capacity)
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        ess_floor = float(ess_floor)
        if not 0.0 <= ess_floor <= 1.0:
            raise InvalidParameterError(
                f"ess_floor must lie in [0, 1], got {ess_floor}"
            )
        self.capacity = capacity
        self.ess_floor = ess_floor
        self.adaptive_floor = bool(adaptive_floor)
        # Churn accounting of the adaptive floor: mutation hooks accumulate
        # the staleness mass they introduced; plan_refresh folds the
        # accumulator into an EWMA of churn pressure.
        self._churn_accum = 0.0
        self._churn_pressure = 0.0
        self._batch: Optional[ForestBatch] = None
        self._log_weights = np.zeros(0, dtype=np.float64)
        # Per-forest cached estimator values (e.g. each forest's Lemma 3.3
        # trace contribution under the consumer's fixed path system): a
        # forest's estimate is a deterministic function of its parent row,
        # so it survives every weight update and only needs recomputing when
        # the consumer's path system itself is invalidated.  Rows stay
        # aligned with the stored forests through every compress/admit.
        self._trace = np.zeros(0, dtype=np.float64)
        self._trace_valid = np.zeros(0, dtype=bool)
        # Mirrored cache for the JL-projected estimator rows: a (B, w, n)
        # tensor of per-forest projected estimators plus a (B, n) diagonal
        # matrix, lazily allocated on the first fold (the consumer owns w).
        self._projected: Optional[np.ndarray] = None
        self._projected_diag: Optional[np.ndarray] = None
        self._projected_valid = np.zeros(0, dtype=bool)
        self._dead_drops = 0

    # -------------------------------------------------------------- inventory
    @property
    def size(self) -> int:
        """Number of stored (alive) forests."""
        return int(self._log_weights.size)

    @property
    def n(self) -> Optional[int]:
        """Node count of the stored forests (``None`` while empty)."""
        return None if self._batch is None else self._batch.n

    def __len__(self) -> int:
        return self.size

    def batch(self) -> ForestBatch:
        """The stored forests as one :class:`ForestBatch`."""
        if self._batch is None or self.size == 0:
            raise InvalidParameterError("forest pool is empty")
        return self._batch

    def weights(self) -> np.ndarray:
        """``(B,)`` importance weights (fresh draw == 1)."""
        return np.exp(self._log_weights)

    def log_weights(self) -> np.ndarray:
        """``(B,)`` log importance weights (copy)."""
        return self._log_weights.copy()

    # ---------------------------------------------------- estimator caching
    @property
    def trace_valid(self) -> np.ndarray:
        """``(B,)`` mask: which forests have a cached estimator value."""
        return self._trace_valid

    @property
    def traces(self) -> np.ndarray:
        """``(B,)`` cached per-forest estimator values (0 where invalid)."""
        return self._trace

    def set_traces(self, rows, values) -> None:
        """Record computed estimator values for the given rows."""
        self._trace[rows] = np.asarray(values, dtype=np.float64)
        self._trace_valid[rows] = True

    def add_to_traces(self, rows, values) -> None:
        """Add a contribution (e.g. a new node's column) to cached rows."""
        self._trace[rows] += np.asarray(values, dtype=np.float64)

    def invalidate_traces(self) -> None:
        """Drop every cached estimator value (path system changed)."""
        self._trace_valid[:] = False
        self._trace[:] = 0.0

    @property
    def projected_valid(self) -> np.ndarray:
        """``(B,)`` mask: which forests have cached projected rows."""
        return self._projected_valid

    @property
    def projected(self) -> np.ndarray:
        """``(B, w, n)`` cached per-forest projected estimator tensors."""
        if self._projected is None:
            raise InvalidParameterError("no projected rows cached yet")
        return self._projected

    @property
    def projected_diag(self) -> np.ndarray:
        """``(B, n)`` cached per-forest diagonal estimator rows."""
        if self._projected_diag is None:
            raise InvalidParameterError("no projected rows cached yet")
        return self._projected_diag

    def set_projected(self, rows, projected, diag) -> None:
        """Record computed projected/diagonal rows for the given forests.

        ``projected`` is ``(k, w, n)`` and ``diag`` ``(k, n)`` for ``k``
        rows.  The backing tensors are allocated lazily from the given
        shapes (and reallocated — invalidating everything else — if the
        consumer's projection width or node count changed).
        """
        projected = np.asarray(projected, dtype=np.float64)
        diag = np.asarray(diag, dtype=np.float64)
        if projected.ndim != 3 or diag.ndim != 2:
            raise InvalidParameterError(
                "projected rows must be (k, w, n) and diagonals (k, n)"
            )
        shape = (self.size,) + projected.shape[1:]
        if self._projected is None or self._projected.shape != shape:
            self._projected = np.zeros(shape, dtype=np.float64)
            self._projected_diag = np.zeros((self.size, diag.shape[1]),
                                            dtype=np.float64)
            self._projected_valid = np.zeros(self.size, dtype=bool)
        self._projected[rows] = projected
        self._projected_diag[rows] = diag
        self._projected_valid[rows] = True

    def invalidate_projected(self) -> None:
        """Drop every cached projected row (path system or JL changed)."""
        self._projected_valid[:] = False
        self._projected = None
        self._projected_diag = None

    def ess(self) -> float:
        """Effective sample size: ``min(Kish, fidelity mass)``.

        ``Kish = (Σw)²/Σw²`` captures weight skew; the fidelity mass
        ``Σ min(w, 1)`` captures uniform staleness, which is invariant under
        Kish (rescaling every weight equally).  Both equal ``size`` for a
        fresh pool.
        """
        if self.size == 0:
            return 0.0
        weights = self.weights()
        total = float(weights.sum())
        square = float((weights * weights).sum())
        kish = (total * total / square) if square > 0.0 else 0.0
        fidelity = float(np.minimum(weights, 1.0).sum())
        return min(kish, fidelity)

    def effective_floor(self) -> float:
        """The live ESS floor fraction the refresh policy currently applies.

        Equals ``ess_floor`` unless ``adaptive_floor`` is on, in which case
        the floor interpolates between ``ess_floor`` (quiet pool) and
        ``min(0.25, ess_floor)`` (sustained churn) by the churn-pressure
        EWMA that :meth:`plan_refresh` maintains: each refresh check folds
        the staleness mass the mutation hooks introduced since the last
        check into the pressure, so a bursty stream relaxes the floor —
        halving redraw volume — while an idle pool keeps the strict one.
        """
        if not self.adaptive_floor:
            return self.ess_floor
        relaxed = min(0.25, self.ess_floor)
        pressure = min(1.0, self._churn_pressure / self._CHURN_SCALE)
        return self.ess_floor - (self.ess_floor - relaxed) * pressure

    def health(self) -> Dict[str, float]:
        """Operator-facing snapshot: size, capacity, ESS, stale mass."""
        ess = self.ess()
        return {
            "size": float(self.size),
            "capacity": float(self.capacity),
            "ess": ess,
            "ess_floor": self.effective_floor() * self.capacity,
            "stale_fraction": 1.0 - ess / self.capacity,
            "churn_pressure": float(self._churn_pressure),
        }

    # -------------------------------------------------------- mutation hooks
    def apply_removal(self, u: int, v: int) -> int:
        """Drop every forest whose parent pointers use edge ``(u, v)``.

        Survivors are exact samples of the shrunk graph's distribution (see
        module docstring), so their weights are untouched.  Returns the
        number of forests dropped.
        """
        if self.size == 0:
            return 0
        dead = self._batch.uses_edge(u, v)
        dropped = int(np.count_nonzero(dead))
        if dropped:
            self._churn_accum += dropped / max(self.size, 1)
            self._compress(~dead)
        return dropped

    def apply_addition(self, stale_probability: float) -> int:
        """Down-weight every stored forest after an edge insertion.

        ``stale_probability`` is the prior inclusion probability of the new
        edge (:func:`edge_inclusion_prior`): the fraction of the new
        distribution's mass that the stored (edge-avoiding) stratum misses.
        Returns the number of forests reweighted (forests the decay pushed
        below the dead threshold are reported via :meth:`take_dead_drops`).
        """
        if self.size == 0:
            return 0
        reweighted = self.size
        stale_probability = min(max(float(stale_probability), 0.0), 1.0 - 1e-12)
        self._churn_accum += stale_probability
        self._log_weights += math.log1p(-stale_probability)
        self._drop_dead()
        return reweighted

    def apply_reweight(self, u: int, v: int, ratio: float) -> int:
        """Reweight forests using edge ``(u, v)`` by the exact density ratio.

        ``ratio = w'_e / w_e``; the rooted-forest density is ``∏_{e∈F} w_e``
        up to normalisation, so this is the exact per-forest importance
        update.  Returns the number of forests whose weight changed.
        """
        if self.size == 0:
            return 0
        ratio = float(ratio)
        if ratio <= 0.0:
            raise InvalidParameterError(f"weight ratio must be positive, got {ratio}")
        users = self._batch.uses_edge(u, v)
        touched = int(np.count_nonzero(users))
        if touched:
            self._churn_accum += (
                min(1.0, abs(math.log(ratio))) * touched / max(self.size, 1)
            )
            self._log_weights[users] += math.log(ratio)
            self._drop_dead()
        return touched

    def extend_leaf(self, neighbours: Sequence[int],
                    attachment_weights: Sequence[float],
                    stale_probability: float,
                    rng: np.random.Generator) -> int:
        """Extend every stored forest with a newly inserted node.

        The new node (compact id ``n``) is attached as a leaf whose parent is
        drawn independently per forest from ``neighbours`` with probability
        proportional to ``attachment_weights`` — exact for the leaf stratum
        of the grown graph's distribution.  The missing internal stratum is
        priced in by down-weighting everything by ``1 - stale_probability``
        (:func:`node_internal_prior`).  Returns the number of forests
        extended; insertions therefore never force a flush.

        Cached ``traces`` are left untouched: the caller must immediately
        add the new node's column contribution to the valid rows (a
        single-column walk) or call :meth:`invalidate_traces`.
        """
        if self.size == 0:
            return 0
        neighbours = np.asarray(list(neighbours), dtype=np.int64)
        if neighbours.size == 0:
            raise InvalidParameterError("a node insertion needs >= 1 attachment")
        probabilities = np.asarray(list(attachment_weights), dtype=np.float64)
        if probabilities.shape != neighbours.shape or np.any(probabilities <= 0):
            raise InvalidParameterError(
                "attachment weights must be positive and match the neighbours"
            )
        probabilities = probabilities / probabilities.sum()
        picks = rng.choice(neighbours.size, size=self.size, p=probabilities)
        extended = self.size
        self._batch = self._batch.with_leaf(neighbours[picks])
        # The node count changed, so any cached projected rows span the old
        # id space (and the consumer's projection must be redrawn anyway).
        self.invalidate_projected()
        self.apply_addition(stale_probability)
        return extended

    def take_dead_drops(self) -> int:
        """Forests dropped for numerically dead weights since the last call.

        Reweights and decays drop forests whose log-weight falls below
        :data:`DEAD_LOG_WEIGHT` as a side effect; this drains that counter
        so stats consumers can account for them alongside the explicit
        removal drops.
        """
        dropped, self._dead_drops = self._dead_drops, 0
        return dropped

    def flush(self) -> int:
        """Discard every stored forest; returns how many were dropped."""
        dropped = self.size
        self._batch = None
        self._log_weights = np.zeros(0, dtype=np.float64)
        self._trace = np.zeros(0, dtype=np.float64)
        self._trace_valid = np.zeros(0, dtype=bool)
        self._projected = None
        self._projected_diag = None
        self._projected_valid = np.zeros(0, dtype=bool)
        return dropped

    # --------------------------------------------------------------- refresh
    def plan_refresh(self) -> int:
        """How many fresh forests a top-up should draw *now*.

        Covers both the size deficit (dead forests) and the ESS floor: when
        ``ess < effective_floor() * capacity`` the plan replaces the stale
        mass — enough fresh draws to lift the pool back to roughly full
        effective size.  Call :meth:`admit` with the drawn forests; the
        admit evicts the lowest-weight forests to respect ``capacity``.

        With ``adaptive_floor`` on, each call first folds the churn mass
        accumulated since the last check into the pressure EWMA that
        :meth:`effective_floor` interpolates on.
        """
        self._churn_pressure += self._CHURN_SMOOTHING * (
            self._churn_accum - self._churn_pressure
        )
        self._churn_accum = 0.0
        deficit = self.capacity - self.size
        ess = self.ess()
        if self.size and ess < self.effective_floor() * self.capacity:
            return max(deficit, self.capacity - int(math.floor(ess)))
        return max(deficit, 0)

    def admit(self, forests: Union[ForestBatch, List[Forest]]) -> int:
        """Add freshly drawn forests (log-weight 0), evicting down to capacity.

        ``forests`` is a :class:`ForestBatch` or a list of
        :class:`~repro.sampling.forest.Forest` (the process-pool sampler's
        output).  Eviction removes the lowest-weight forests first, so stale
        mass makes way for fresh draws.  Returns the number admitted.
        """
        if isinstance(forests, ForestBatch):
            fresh = forests
        else:
            if not forests:
                return 0
            fresh = ForestBatch.from_forests(list(forests))
        if fresh.batch_size == 0:
            return 0
        if not np.array_equal(fresh.roots, self.roots):
            raise InvalidParameterError(
                f"admitted forests rooted at {fresh.roots.tolist()} do not "
                f"match the pool roots {self.roots.tolist()}"
            )
        if self._batch is not None and self.size and fresh.n != self._batch.n:
            raise InvalidParameterError(
                f"admitted forests have {fresh.n} nodes, pool has {self._batch.n}"
            )
        if self._batch is None or self.size == 0:
            self._batch = fresh
            self._log_weights = np.zeros(fresh.batch_size, dtype=np.float64)
            self._trace = np.zeros(fresh.batch_size, dtype=np.float64)
            self._trace_valid = np.zeros(fresh.batch_size, dtype=bool)
            self._projected = None
            self._projected_diag = None
            self._projected_valid = np.zeros(fresh.batch_size, dtype=bool)
        else:
            self._batch = ForestBatch.concatenate([self._batch, fresh])
            self._log_weights = np.concatenate(
                [self._log_weights, np.zeros(fresh.batch_size)]
            )
            self._trace = np.concatenate(
                [self._trace, np.zeros(fresh.batch_size)]
            )
            self._trace_valid = np.concatenate(
                [self._trace_valid, np.zeros(fresh.batch_size, dtype=bool)]
            )
            self._projected_valid = np.concatenate(
                [self._projected_valid, np.zeros(fresh.batch_size, dtype=bool)]
            )
            if self._projected is not None:
                pad = np.zeros((fresh.batch_size,) + self._projected.shape[1:])
                self._projected = np.concatenate([self._projected, pad])
                diag_pad = np.zeros(
                    (fresh.batch_size, self._projected_diag.shape[1])
                )
                self._projected_diag = np.concatenate(
                    [self._projected_diag, diag_pad]
                )
        overflow = self.size - self.capacity
        if overflow > 0:
            # Keep the `capacity` highest-weight forests (stable towards the
            # newest entries on ties, since argsort is stable and fresh rows
            # sit at the end with log-weight 0).
            order = np.argsort(self._log_weights, kind="stable")
            keep = np.ones(self.size, dtype=bool)
            keep[order[:overflow]] = False
            self._compress(keep)
        return fresh.batch_size

    # ------------------------------------------------------------- internals
    def _compress(self, keep: np.ndarray) -> None:
        if bool(np.all(keep)):
            return
        if not np.any(keep):
            self.flush()
            return
        self._batch = self._batch.select(keep)
        self._log_weights = self._log_weights[keep]
        self._trace = self._trace[keep]
        self._trace_valid = self._trace_valid[keep]
        self._projected_valid = self._projected_valid[keep]
        if self._projected is not None:
            self._projected = self._projected[keep]
            self._projected_diag = self._projected_diag[keep]

    def _drop_dead(self) -> int:
        """Drop numerically dead forests; returns the surviving count."""
        alive = self._log_weights > DEAD_LOG_WEIGHT
        before = self.size
        self._compress(alive)
        self._dead_drops += before - self.size
        return self.size
