"""Batch forest sampling with independent random streams.

The paper stresses that both algorithms are "pleasingly parallelizable": every
sampled forest is independent, so batches can be distributed across workers.
This module provides that batching layer:

* :func:`batched_seeds` — derive independent child seeds from one master seed
  so results are reproducible regardless of how the batch is split;
* :func:`sample_forest_batch` — draw a batch sequentially or with a process
  pool (processes, not threads, because the sampler is pure Python and
  GIL-bound).

The estimator accumulators consume forests one at a time, so the batching
layer is deliberately independent of them: callers draw a batch and fold it
in, keeping the statistical code single-threaded and simple.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.sampling.forest import Forest
from repro.sampling.wilson import sample_rooted_forest
from repro.utils.rng import RandomState, as_rng


def batched_seeds(seed: RandomState, count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from a master seed."""
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    rng = as_rng(seed)
    return [int(value) for value in rng.integers(0, 2**62, size=count)]


def _sample_one(args) -> Forest:
    graph, roots, seed = args
    return sample_rooted_forest(graph, roots, seed=seed)


def sample_forest_batch(graph: Graph, roots: Sequence[int], count: int,
                        seed: RandomState = None,
                        workers: Optional[int] = None) -> List[Forest]:
    """Sample ``count`` independent rooted forests, optionally in parallel.

    Parameters
    ----------
    graph, roots:
        Sampling target, as in :func:`repro.sampling.sample_rooted_forest`.
    count:
        Number of forests.
    seed:
        Master seed; the per-forest seeds are derived with
        :func:`batched_seeds`, so the returned batch is identical whether it
        is drawn sequentially or by any number of workers.
    workers:
        ``None`` or ``1`` samples sequentially (the default — worthwhile
        parallelism needs graphs large enough to amortise process start-up);
        larger values use a :class:`concurrent.futures.ProcessPoolExecutor`.
    """
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    seeds = batched_seeds(seed, count)
    if not seeds:
        return []
    if workers is None or workers <= 1 or count == 1:
        return [sample_rooted_forest(graph, roots, seed=s) for s in seeds]

    tasks = [(graph, list(roots), s) for s in seeds]
    with ProcessPoolExecutor(max_workers=int(workers)) as pool:
        return list(pool.map(_sample_one, tasks))
