"""Batch forest sampling: lockstep vectorised kernel with scalar fallbacks.

The paper stresses that both algorithms are "pleasingly parallelizable":
every sampled forest is independent, so batches can be drawn together.  This
module provides the batching front end:

* :func:`batched_seeds` — derive independent child seeds from one master seed
  so scalar-path results are reproducible regardless of how the batch is
  split;
* :func:`sample_forest_batch` — draw a batch, dispatching to the lockstep
  vectorised kernel of :mod:`repro.sampling.batch` by default.  The scalar
  per-forest path (optionally on a :class:`~concurrent.futures.\
ProcessPoolExecutor` — processes, not threads, because the scalar sampler is
  pure Python and GIL-bound) remains as the fallback for batches whose
  lockstep state would not fit comfortably in memory.

The estimator accumulators consume forests one at a time (or a
:class:`~repro.sampling.batch.ForestBatch` at once), so the batching layer is
deliberately independent of them: callers draw a batch and fold it in,
keeping the statistical code single-threaded and simple.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.sampling.batch import (
    LOCKSTEP_STATE_LIMIT,
    sample_forest_batch_vectorized,
)
from repro.sampling.forest import Forest
from repro.sampling.wilson import sample_rooted_forest
from repro.utils.rng import RandomState, as_rng


def batched_seeds(seed: RandomState, count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from a master seed."""
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    rng = as_rng(seed)
    return [int(value) for value in rng.integers(0, 2**62, size=count)]


def _sample_one(args) -> Forest:
    graph, roots, seed = args
    return sample_rooted_forest(graph, roots, seed=seed)


def sample_forest_batch(graph: Graph, roots: Sequence[int], count: int,
                        seed: RandomState = None,
                        workers: Optional[int] = None,
                        method: str = "auto") -> List[Forest]:
    """Sample ``count`` independent rooted forests as one batch.

    Parameters
    ----------
    graph, roots:
        Sampling target, as in :func:`repro.sampling.sample_rooted_forest`.
    count:
        Number of forests.
    seed:
        Master seed.  The lockstep path consumes one stream for the whole
        batch; the scalar path derives per-forest seeds with
        :func:`batched_seeds`, so a scalar batch is identical whether it is
        drawn sequentially or by any number of workers.  (The two paths
        draw different — equally distributed — batches for the same seed.)
    workers:
        Process count for the *scalar* path: ``None`` or ``1`` samples
        sequentially, larger values use a
        :class:`concurrent.futures.ProcessPoolExecutor`.  Ignored by the
        lockstep path, which needs no processes.
    method:
        ``"lockstep"`` forces the vectorised kernel, ``"scalar"`` the
        per-forest loop (and honours ``workers``); the default ``"auto"``
        picks lockstep unless the batch state ``count * n`` exceeds
        :data:`repro.sampling.batch.LOCKSTEP_STATE_LIMIT` entries, in which
        case the scalar path (with its process pool, when ``workers`` is
        set) takes over.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    method = str(method).lower()
    if method not in ("auto", "lockstep", "scalar"):
        raise InvalidParameterError(
            f"method must be 'auto', 'lockstep' or 'scalar', got {method!r}"
        )
    if method == "auto":
        method = "lockstep" if count * graph.n <= LOCKSTEP_STATE_LIMIT else "scalar"
    if method == "lockstep":
        return sample_forest_batch_vectorized(graph, roots, count, seed=seed).forests()

    seeds = batched_seeds(seed, count)
    if not seeds:
        return []
    if workers is None or workers <= 1 or count == 1:
        return [sample_rooted_forest(graph, roots, seed=s) for s in seeds]

    tasks = [(graph, list(roots), s) for s in seeds]
    with ProcessPoolExecutor(max_workers=int(workers)) as pool:
        return list(pool.map(_sample_one, tasks))
