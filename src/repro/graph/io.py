"""Edge-list input/output in the formats used by KONECT / SNAP dumps.

The paper's datasets are plain whitespace-separated edge lists, optionally
with comment lines.  These helpers read and write that format, relabel nodes
to ``0 .. n - 1`` and can restrict to the largest connected component, which
is exactly the preprocessing described in Section V-A of the paper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Tuple, Union

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.builders import from_edge_list
from repro.graph.traversal import largest_connected_component

PathLike = Union[str, Path]

_COMMENT_PREFIXES = ("#", "%", "//")


def read_edge_list(path: PathLike, lcc_only: bool = False,
                   ) -> Tuple[Graph, Dict[int, str]]:
    """Read a whitespace-separated edge list file.

    Parameters
    ----------
    path:
        File with one ``u v`` pair per line; comment lines starting with
        ``#``, ``%`` or ``//`` and extra columns (weights, timestamps) are
        ignored, matching KONECT's ``out.*`` files.
    lcc_only:
        Restrict the result to the largest connected component (the paper's
        preprocessing step).

    Returns
    -------
    (graph, labels):
        ``labels[i]`` is the original token of node ``i``.
    """
    path = Path(path)
    raw_edges = []
    tokens_seen: Dict[str, int] = {}

    def node_id(token: str) -> int:
        if token not in tokens_seen:
            tokens_seen[token] = len(tokens_seen)
        return tokens_seen[token]

    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected at least two columns, got {stripped!r}"
                )
            raw_edges.append((node_id(parts[0]), node_id(parts[1])))

    if not tokens_seen:
        raise GraphError(f"{path}: no edges found")
    graph = from_edge_list(raw_edges, n=len(tokens_seen))
    labels = {idx: token for token, idx in tokens_seen.items()}
    if lcc_only:
        graph, keep = largest_connected_component(graph)
        labels = {new: labels[int(old)] for new, old in enumerate(keep)}
    return graph, labels


def write_edge_list(graph: Graph, path: PathLike,
                    header: Iterable[str] = ()) -> None:
    """Write ``graph`` as a whitespace-separated edge list with ``u < v`` rows."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for line in header:
            handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def roundtrip(graph: Graph, path: PathLike) -> Graph:
    """Write then re-read ``graph``; useful for IO tests and format checks."""
    write_edge_list(graph, path)
    reread, _ = read_edge_list(path)
    return reread
