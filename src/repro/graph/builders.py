"""Constructors converting external representations into :class:`repro.Graph`."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.graph import Graph


def from_edge_list(edges: Iterable[Tuple[int, int]], n: int | None = None) -> Graph:
    """Build a graph from an edge list, inferring ``n`` when not given.

    Duplicate undirected edges and self-loops are removed rather than rejected,
    which makes this the forgiving entry point for external data.
    """
    unique = set()
    max_node = -1
    for u, v in edges:
        u, v = int(u), int(v)
        max_node = max(max_node, u, v)
        if u == v:
            continue
        unique.add((min(u, v), max(u, v)))
    if n is None:
        n = max_node + 1
    if n <= 0:
        raise GraphError("cannot build a graph with no nodes")
    return Graph(n, sorted(unique))


def from_networkx(nx_graph) -> Tuple[Graph, dict]:
    """Convert a networkx graph, returning the graph and a node-relabel map.

    Returns
    -------
    (graph, labels):
        ``labels[i]`` gives the original networkx node corresponding to the
        integer node ``i`` of the returned :class:`Graph`.
    """
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
    graph = from_edge_list(edges, n=len(nodes))
    return graph, dict(enumerate(nodes))


def to_networkx(graph: Graph):
    """Convert a :class:`Graph` into a :class:`networkx.Graph`."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.n))
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def from_adjacency_matrix(matrix) -> Graph:
    """Build a graph from a dense or sparse symmetric 0/1 adjacency matrix."""
    if sp.issparse(matrix):
        coo = sp.triu(matrix, k=1).tocoo()
        n = matrix.shape[0]
        edges = list(zip(coo.row.tolist(), coo.col.tolist()))
    else:
        arr = np.asarray(matrix)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise GraphError("adjacency matrix must be square")
        if not np.allclose(arr, arr.T):
            raise GraphError("adjacency matrix must be symmetric")
        n = arr.shape[0]
        rows, cols = np.nonzero(np.triu(arr, k=1))
        edges = list(zip(rows.tolist(), cols.tolist()))
    return Graph(n, edges)


def from_parent_array(parents: Sequence[int]) -> Graph:
    """Build a tree/forest graph from a parent array (``-1`` marks roots)."""
    edges = []
    for child, parent in enumerate(parents):
        if parent is None or int(parent) < 0:
            continue
        edges.append((child, int(parent)))
    return from_edge_list(edges, n=len(parents))
