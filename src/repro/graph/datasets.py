"""Benchmark datasets: embedded tiny graphs and synthetic stand-ins.

The paper evaluates on real networks from KONECT / SNAP / Network Repository
(Table II) plus four tiny graphs for the optimality study (Fig. 1).  Those
datasets are not redistributable inside this repository and most are far too
large for a pure-Python reproduction, so this module provides:

* :func:`karate` — Zachary's karate club (34 nodes), embedded exactly; it is
  one of the Fig. 1 graphs.
* :func:`zebra_substitute`, :func:`contiguous_usa_substitute`,
  :func:`dolphins_substitute` — deterministic connected graphs of the same
  size class (23, 49 and 62 nodes) standing in for the remaining Fig. 1
  graphs.  Fig. 1 only requires graphs small enough for brute-force optimum
  search, so any small connected graph exercises the same comparison.
* :func:`paper_network` / :data:`PAPER_NETWORKS` — a registry mapping every
  Table II dataset name to a synthetic generator call of the same *tier*
  (scale-free or small-world, similar average degree) scaled to laptop size.
  The registry keeps the relative ordering of sizes and densities so the
  efficiency experiments preserve the paper's qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph import generators

# Zachary's karate club, the standard 34-node social network (0-indexed).
_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]


def karate() -> Graph:
    """Zachary's karate club graph (34 nodes, 78 edges)."""
    return Graph(34, _KARATE_EDGES)


def zebra_substitute() -> Graph:
    """23-node stand-in for the Zebra contact network (Fig. 1a).

    A deterministic Watts–Strogatz small-world graph of matching size; the
    original animal-contact network is dense and clustered, which the ring
    lattice with rewiring mimics.
    """
    return generators.watts_strogatz(23, 4, 0.2, seed=7)


def contiguous_usa_substitute() -> Graph:
    """49-node stand-in for the contiguous-USA adjacency graph (Fig. 1c).

    The original is a sparse planar adjacency graph; a 7x7 grid has the same
    node count and planar, low-degree structure.
    """
    return generators.grid_graph(7, 7)


def dolphins_substitute() -> Graph:
    """62-node stand-in for the Dolphins social network (Fig. 1d).

    A deterministic power-law-cluster graph of matching size; the original is
    a small social network with hubs and clustering.
    """
    return generators.powerlaw_cluster(62, 2, 0.3, seed=11)


def tiny_suite() -> Dict[str, Graph]:
    """The four Fig. 1 graphs (one exact, three substitutes)."""
    return {
        "Zebra*": zebra_substitute(),
        "Karate": karate(),
        "Cont. USA*": contiguous_usa_substitute(),
        "Dolphins*": dolphins_substitute(),
    }


@dataclass(frozen=True)
class NetworkSpec:
    """A synthetic stand-in for one of the paper's real-world datasets."""

    name: str
    paper_nodes: int
    paper_edges: int
    tier: str
    builder: Callable[[], Graph]
    description: str

    def build(self) -> Graph:
        """Construct the stand-in graph."""
        return self.builder()


def _spec(name: str, paper_nodes: int, paper_edges: int, tier: str,
          builder: Callable[[], Graph], description: str) -> NetworkSpec:
    return NetworkSpec(name, paper_nodes, paper_edges, tier, builder, description)


# Synthetic stand-ins mirror the *relative* size/density ladder of Table II
# but scaled down roughly 10-100x so that the exact baselines stay feasible in
# pure Python.  Scale-free datasets map to Barabási–Albert / power-law-cluster
# graphs, infrastructure networks map to small-world / geometric graphs.
PAPER_NETWORKS: Dict[str, NetworkSpec] = {
    spec.name: spec
    for spec in [
        _spec("Euroroads", 1039, 1305, "tiny",
              lambda: generators.watts_strogatz(512, 4, 0.05, seed=1),
              "sparse road network -> small-world ring with light rewiring"),
        _spec("Hamsterster", 2000, 16097, "small",
              lambda: generators.powerlaw_cluster(600, 8, 0.3, seed=2),
              "dense social network -> power-law cluster graph"),
        _spec("Facebook", 4039, 88234, "small",
              lambda: generators.powerlaw_cluster(800, 16, 0.4, seed=3),
              "very dense ego network -> dense power-law cluster graph"),
        _spec("GR-QC", 4158, 13428, "small",
              lambda: generators.powerlaw_cluster(900, 3, 0.4, seed=4),
              "collaboration network -> sparse clustered scale-free graph"),
        _spec("web-EPA", 4253, 8897, "small",
              lambda: generators.barabasi_albert(1000, 2, seed=5),
              "hyperlink network -> sparse scale-free graph"),
        _spec("Routeviews", 6474, 13895, "small",
              lambda: generators.barabasi_albert(1200, 2, seed=6),
              "autonomous-systems graph -> sparse scale-free graph"),
        _spec("soc-PagesGov", 7057, 89429, "medium",
              lambda: generators.powerlaw_cluster(1400, 12, 0.3, seed=7),
              "dense social pages graph -> dense power-law cluster graph"),
        _spec("HEP-Th", 8638, 24827, "medium",
              lambda: generators.powerlaw_cluster(1600, 3, 0.4, seed=8),
              "collaboration network -> clustered scale-free graph"),
        _spec("Astro-Ph", 17903, 197031, "medium",
              lambda: generators.powerlaw_cluster(2000, 10, 0.3, seed=9),
              "dense collaboration network -> dense power-law cluster graph"),
        _spec("CAIDA", 26475, 53381, "medium",
              lambda: generators.barabasi_albert(2500, 2, seed=10),
              "internet topology -> sparse scale-free graph"),
        _spec("EmailEnron", 33696, 180811, "large",
              lambda: generators.powerlaw_cluster(3000, 6, 0.3, seed=11),
              "email network -> power-law cluster graph"),
        _spec("Brightkite", 56739, 212945, "large",
              lambda: generators.barabasi_albert(4000, 4, seed=12),
              "location-based social network -> scale-free graph"),
        _spec("buzznet", 101163, 2763066, "large",
              lambda: generators.powerlaw_cluster(3000, 27, 0.2, seed=13),
              "very dense social network -> very dense power-law cluster graph"),
        _spec("Livemocha", 104103, 2193083, "large",
              lambda: generators.powerlaw_cluster(3500, 21, 0.2, seed=14),
              "dense social network -> dense power-law cluster graph"),
        _spec("WordNet", 145145, 656230, "large",
              lambda: generators.barabasi_albert(5000, 4, seed=15),
              "lexical network -> scale-free graph"),
        _spec("Gowalla", 196591, 950327, "large",
              lambda: generators.barabasi_albert(6000, 5, seed=16),
              "location-based social network -> scale-free graph"),
        _spec("com-DBLP", 317080, 1049866, "large",
              lambda: generators.powerlaw_cluster(7000, 3, 0.5, seed=17),
              "collaboration network -> clustered scale-free graph"),
        _spec("Amazon", 334863, 925872, "large",
              lambda: generators.watts_strogatz(8000, 6, 0.1, seed=18),
              "co-purchase network (large diameter) -> small-world lattice"),
        _spec("Actor", 374511, 15014839, "xlarge",
              lambda: generators.powerlaw_cluster(4000, 40, 0.2, seed=19),
              "extremely dense collaboration network -> dense power-law cluster"),
        _spec("Dogster", 426485, 8543321, "xlarge",
              lambda: generators.powerlaw_cluster(5000, 20, 0.2, seed=20),
              "dense social network -> dense power-law cluster graph"),
        _spec("FourSquare", 639014, 3214986, "xlarge",
              lambda: generators.barabasi_albert(9000, 5, seed=21),
              "social network with tiny diameter -> scale-free graph"),
        _spec("Skitter", 1694616, 11094209, "xlarge",
              lambda: generators.barabasi_albert(10000, 6, seed=22),
              "internet topology -> scale-free graph"),
        _spec("Flixster", 2523386, 7918801, "xlarge",
              lambda: generators.barabasi_albert(12000, 3, seed=23),
              "social network -> scale-free graph"),
        _spec("Orkut", 2997166, 106349209, "xlarge",
              lambda: generators.powerlaw_cluster(6000, 35, 0.1, seed=24),
              "extremely dense social network -> dense power-law cluster"),
        _spec("Youtube", 3216075, 9369874, "xlarge",
              lambda: generators.barabasi_albert(14000, 3, seed=25),
              "social network -> scale-free graph"),
        _spec("soc-LiveJournal", 5189808, 48687945, "xlarge",
              lambda: generators.barabasi_albert(16000, 6, seed=26),
              "social network -> scale-free graph"),
        _spec("sc-rel9", 5921786, 23667162, "xlarge",
              lambda: generators.random_regular(12000, 4, seed=27),
              "scientific-computing mesh -> random regular graph"),
    ]
}


def paper_network(name: str) -> Graph:
    """Build the synthetic stand-in for the Table II dataset ``name``."""
    if name not in PAPER_NETWORKS:
        raise InvalidParameterError(
            f"unknown paper network {name!r}; available: {sorted(PAPER_NETWORKS)}"
        )
    return PAPER_NETWORKS[name].build()


def networks_by_tier(tier: str) -> List[NetworkSpec]:
    """All registry entries in a given tier (``tiny/small/medium/large/xlarge``)."""
    tiers = {spec.tier for spec in PAPER_NETWORKS.values()}
    if tier not in tiers:
        raise InvalidParameterError(f"unknown tier {tier!r}; available: {sorted(tiers)}")
    return [spec for spec in PAPER_NETWORKS.values() if spec.tier == tier]
