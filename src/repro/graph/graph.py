"""Core undirected-graph data structure.

The whole library operates on :class:`Graph`, a compact CSR (compressed sparse
row) representation of a simple undirected graph with nodes labelled
``0 .. n - 1``.  The representation stores every edge twice (once per
direction); the position of a neighbour inside the flat adjacency array is the
*directed edge index*, which the spanning-forest samplers use to attribute
counters to directed edges in O(1).

Design notes
------------
* Graphs are immutable after construction; algorithms that "remove" node sets
  (for grounded Laplacians or forests rooted at a set ``S``) never mutate the
  graph, they simply mask the relevant rows/columns.
* Only simple graphs are supported: self-loops and parallel edges are rejected
  at construction time because CFCC is defined on simple electrical networks.
* Edge weights are intentionally not supported in the core class — the paper's
  algorithms, like the original, treat every edge as a unit resistor.  The
  Schur-complement machinery that needs weighted Laplacians works directly on
  matrices (see :mod:`repro.linalg.schur`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError, InvalidNodeError


class Graph:
    """Simple undirected graph in CSR form.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0 .. n - 1``.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Each undirected edge
        must appear exactly once (in either orientation).

    Attributes
    ----------
    indptr:
        ``(n + 1,)`` int64 array; neighbours of ``u`` live at positions
        ``indptr[u]:indptr[u + 1]`` of :attr:`adjacency`.
    adjacency:
        ``(2m,)`` int64 array of neighbour ids (both directions of each edge).
    degrees:
        ``(n,)`` int64 array of node degrees.
    edge_u, edge_v:
        ``(m,)`` arrays listing each undirected edge once with ``u < v``.
    """

    __slots__ = (
        "_n",
        "_m",
        "indptr",
        "adjacency",
        "degrees",
        "edge_u",
        "edge_v",
        "_reverse_position",
        "_position_edge_id",
        "_py_indptr",
        "_py_adjacency",
        "_py_degrees",
    )

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]):
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        self._n = int(n)

        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be an iterable of (u, v) pairs")
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n):
            raise GraphError("edge endpoints must lie in [0, n)")
        if np.any(edge_array[:, 0] == edge_array[:, 1]):
            raise GraphError("self-loops are not supported")

        lo = np.minimum(edge_array[:, 0], edge_array[:, 1])
        hi = np.maximum(edge_array[:, 0], edge_array[:, 1])
        order = np.lexsort((hi, lo))
        lo, hi = lo[order], hi[order]
        if lo.size:
            duplicate = (lo[1:] == lo[:-1]) & (hi[1:] == hi[:-1])
            if np.any(duplicate):
                bad = int(np.flatnonzero(duplicate)[0])
                raise GraphError(
                    f"parallel edge ({lo[bad]}, {hi[bad]}) is not supported"
                )
        self.edge_u = lo
        self.edge_v = hi
        self._m = int(lo.size)

        # Build CSR by counting degrees then filling neighbour slots.
        degrees = np.zeros(n, dtype=np.int64)
        np.add.at(degrees, lo, 1)
        np.add.at(degrees, hi, 1)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        adjacency = np.empty(2 * self._m, dtype=np.int64)
        position_edge_id = np.empty(2 * self._m, dtype=np.int64)
        cursor = indptr[:-1].copy()
        for eid in range(self._m):
            u, v = int(lo[eid]), int(hi[eid])
            adjacency[cursor[u]] = v
            position_edge_id[cursor[u]] = eid
            cursor[u] += 1
            adjacency[cursor[v]] = u
            position_edge_id[cursor[v]] = eid
            cursor[v] += 1

        self.indptr = indptr
        self.adjacency = adjacency
        self.degrees = degrees
        self._position_edge_id = position_edge_id
        self._py_indptr = None
        self._py_adjacency = None
        self._py_degrees = None

        # Reverse-position map: for position p storing directed edge (u -> v),
        # _reverse_position[p] is the position storing (v -> u).
        reverse = np.full(2 * self._m, -1, dtype=np.int64)
        first_position = np.full(self._m, -1, dtype=np.int64)
        for p in range(2 * self._m):
            eid = position_edge_id[p]
            if first_position[eid] < 0:
                first_position[eid] = p
            else:
                q = first_position[eid]
                reverse[p] = q
                reverse[q] = p
        self._reverse_position = reverse

    # ------------------------------------------------------------------ basic
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._m

    @property
    def number_of_nodes(self) -> int:
        """Alias of :attr:`n` for networkx-style call sites."""
        return self._n

    @property
    def number_of_edges(self) -> int:
        """Alias of :attr:`m` for networkx-style call sites."""
        return self._m

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self._n}, m={self._m})"

    def nodes(self) -> np.ndarray:
        """Array of all node ids."""
        return np.arange(self._n, dtype=np.int64)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        for u, v in zip(self.edge_u, self.edge_v):
            yield int(u), int(v)

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` array of undirected edges with ``u < v`` per row."""
        return np.stack([self.edge_u, self.edge_v], axis=1)

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return int(self.degrees[node])

    def max_degree(self, excluded: Sequence[int] | None = None) -> int:
        """Maximum degree, optionally over the subgraph without ``excluded``.

        This is the quantity ``dmax(S)`` of the paper: degrees are recomputed
        in the graph obtained by deleting ``excluded`` and incident edges.
        """
        if not excluded:
            return int(self.degrees.max()) if self._n else 0
        excluded_mask = np.zeros(self._n, dtype=bool)
        excluded_mask[list(excluded)] = True
        keep_u = ~excluded_mask[self.edge_u] & ~excluded_mask[self.edge_v]
        reduced = np.zeros(self._n, dtype=np.int64)
        np.add.at(reduced, self.edge_u[keep_u], 1)
        np.add.at(reduced, self.edge_v[keep_u], 1)
        reduced[excluded_mask] = 0
        return int(reduced.max()) if reduced.size else 0

    def neighbors(self, node: int) -> np.ndarray:
        """Array of neighbours of ``node``."""
        self._check_node(node)
        return self.adjacency[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_positions(self, node: int) -> np.ndarray:
        """Directed-edge positions of ``node``'s outgoing slots."""
        self._check_node(node)
        return np.arange(self.indptr[node], self.indptr[node + 1], dtype=np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return False
        if self.degrees[u] > self.degrees[v]:
            u, v = v, u
        return bool(np.any(self.neighbors(u) == v))

    def position_head(self, position: int) -> int:
        """Head (target) node of the directed slot ``position``."""
        return int(self.adjacency[position])

    def reverse_position(self, position: int) -> int:
        """Position of the opposite direction of the directed slot ``position``."""
        return int(self._reverse_position[position])

    def position_edge_id(self, position: int) -> int:
        """Undirected edge id stored at directed slot ``position``."""
        return int(self._position_edge_id[position])

    def adjacency_lists(self) -> Tuple[list, list, list]:
        """CSR arrays as cached plain Python lists ``(indptr, adjacency, degrees)``.

        The spanning-forest sampler runs a per-step Python loop; plain lists
        avoid NumPy scalar-indexing overhead in that hot path.  The lists are
        built lazily once and reused across samples.
        """
        if self._py_indptr is None:
            self._py_indptr = self.indptr.tolist()
            self._py_adjacency = self.adjacency.tolist()
            self._py_degrees = self.degrees.tolist()
        return self._py_indptr, self._py_adjacency, self._py_degrees

    # -------------------------------------------------------------- matrices
    def adjacency_matrix(self) -> sp.csr_matrix:
        """Sparse ``(n, n)`` adjacency matrix with unit weights."""
        data = np.ones(2 * self._m, dtype=np.float64)
        rows = np.concatenate([self.edge_u, self.edge_v])
        cols = np.concatenate([self.edge_v, self.edge_u])
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(self._n, self._n), dtype=np.float64
        )

    def degree_matrix(self) -> sp.csr_matrix:
        """Sparse diagonal degree matrix."""
        return sp.diags(self.degrees.astype(np.float64), format="csr")

    def subgraph(self, nodes: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns
        -------
        (subgraph, mapping):
            ``mapping[i]`` is the original label of node ``i`` of the subgraph.
        """
        keep = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
        if keep.size and (keep.min() < 0 or keep.max() >= self._n):
            raise InvalidNodeError("subgraph nodes must lie in [0, n)")
        relabel = -np.ones(self._n, dtype=np.int64)
        relabel[keep] = np.arange(keep.size)
        mask = (relabel[self.edge_u] >= 0) & (relabel[self.edge_v] >= 0)
        edges = zip(relabel[self.edge_u[mask]], relabel[self.edge_v[mask]])
        sub = Graph(max(int(keep.size), 1), [(int(a), int(b)) for a, b in edges])
        return sub, keep

    # ------------------------------------------------------------- internals
    def _check_node(self, node: int) -> None:
        if not 0 <= int(node) < self._n:
            raise InvalidNodeError(f"node {node} outside valid range [0, {self._n - 1}]")

    # ---------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and bool(np.array_equal(self.edge_u, other.edge_u))
            and bool(np.array_equal(self.edge_v, other.edge_v))
        )

    def __hash__(self) -> int:
        return hash((self._n, self._m, self.edge_u.tobytes(), self.edge_v.tobytes()))


def degree_sequence(graph: Graph) -> List[int]:
    """Sorted (descending) degree sequence of ``graph``."""
    return sorted((int(d) for d in graph.degrees), reverse=True)
