"""Structural graph statistics used by the experiment harness.

Table II of the paper reports, for every dataset, the node count, edge count,
diameter τ and the chosen additional-root-set size ``|T*|``.  This module
computes those summary statistics plus a few auxiliary quantities (degree
distribution moments, clustering) used in the documentation and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import diameter as graph_diameter


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of a graph (one Table II row's metadata)."""

    nodes: int
    edges: int
    diameter: int
    max_degree: int
    mean_degree: float
    extra_root_size: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "diameter": self.diameter,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "extra_root_size": self.extra_root_size,
        }


def mean_degree(graph: Graph) -> float:
    """Average degree ``2m / n``."""
    return 2.0 * graph.m / graph.n if graph.n else 0.0


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes of degree ``d``."""
    return np.bincount(graph.degrees)


def global_clustering(graph: Graph) -> float:
    """Global clustering coefficient (transitivity), O(sum of degree^2)."""
    adjacency_sets = [set(graph.neighbors(u).tolist()) for u in range(graph.n)]
    triangles = 0
    wedges = 0
    for u in range(graph.n):
        neighbours = sorted(adjacency_sets[u])
        deg = len(neighbours)
        wedges += deg * (deg - 1) // 2
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1:]:
                if b in adjacency_sets[a]:
                    triangles += 1
    return 3.0 * (triangles / 3.0) / wedges if wedges else 0.0


def extra_root_size(graph: Graph, max_size: int | None = None) -> int:
    """Size ``|T*|`` of the additional root set used by SchurCFCM.

    The paper sets ``|T*| = argmin_{|T|} { |T| - dmax(T) }`` where ``T`` always
    consists of the highest-degree nodes and ``dmax(T)`` is the maximum degree
    of the graph after removing ``T``.  The function scans the degree-sorted
    prefix sizes and returns the minimiser.
    """
    if graph.n <= 2:
        return 1
    order = np.argsort(-graph.degrees, kind="stable")
    limit = graph.n - 2 if max_size is None else min(max_size, graph.n - 2)
    limit = max(limit, 1)
    best_size = 1
    best_value = None
    removed: list[int] = []
    for size in range(1, limit + 1):
        removed.append(int(order[size - 1]))
        dmax_after = graph.max_degree(excluded=removed)
        value = size - dmax_after
        if best_value is None or value < best_value:
            best_value = value
            best_size = size
    return best_size


def summarize(graph: Graph, exact_diameter: bool | None = None,
              max_extra_roots: int | None = 256) -> GraphSummary:
    """Compute the Table II metadata columns for ``graph``."""
    if exact_diameter is None:
        exact_diameter = graph.n <= 400
    return GraphSummary(
        nodes=graph.n,
        edges=graph.m,
        diameter=graph_diameter(graph, exact=exact_diameter),
        max_degree=graph.max_degree(),
        mean_degree=mean_degree(graph),
        extra_root_size=extra_root_size(graph, max_size=max_extra_roots),
    )
