"""Graph substrate: CSR graphs, generators, traversal, IO and datasets."""

from repro.graph.graph import Graph
from repro.graph.builders import (
    from_edge_list,
    from_networkx,
    from_adjacency_matrix,
    to_networkx,
)
from repro.graph.traversal import (
    bfs_order,
    bfs_tree,
    connected_components,
    diameter,
    eccentricity,
    is_connected,
    largest_connected_component,
)
from repro.graph import generators
from repro.graph import datasets
from repro.graph import io
from repro.graph import properties

__all__ = [
    "Graph",
    "from_edge_list",
    "from_networkx",
    "from_adjacency_matrix",
    "to_networkx",
    "bfs_order",
    "bfs_tree",
    "connected_components",
    "diameter",
    "eccentricity",
    "is_connected",
    "largest_connected_component",
    "generators",
    "datasets",
    "io",
    "properties",
]
