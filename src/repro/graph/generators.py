"""Synthetic graph generators.

These generators provide the workload substrate for the reproduction.  The
paper evaluates on real KONECT/SNAP graphs that exhibit scale-free degree
distributions and small diameters; the generators below (notably
Barabási–Albert and the power-law cluster model) produce graphs with the same
structural properties at laptop scale, which is what the complexity analysis
of ForestCFCM/SchurCFCM relies on.

All generators return connected :class:`repro.Graph` instances and accept an
integer seed or :class:`numpy.random.Generator` for reproducibility.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import is_connected, largest_connected_component
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_integer, check_probability


# --------------------------------------------------------------------- basics
def path_graph(n: int) -> Graph:
    """Path graph ``0 - 1 - ... - (n-1)``."""
    check_integer("n", n, minimum=1)
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle graph on ``n >= 3`` nodes."""
    check_integer("n", n, minimum=3)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes."""
    check_integer("n", n, minimum=1)
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def star_graph(n: int) -> Graph:
    """Star with centre ``0`` and ``n - 1`` leaves."""
    check_integer("n", n, minimum=2)
    return Graph(n, [(0, i) for i in range(1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D grid graph with ``rows * cols`` nodes."""
    check_integer("rows", rows, minimum=1)
    check_integer("cols", cols, minimum=1)
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Graph(rows * cols, edges)


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (depth 0 is a single node)."""
    check_integer("depth", depth, minimum=0)
    n = 2 ** (depth + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return Graph(n, edges)


def lollipop_graph(clique: int, tail: int) -> Graph:
    """Complete graph on ``clique`` nodes with a path of ``tail`` nodes attached."""
    check_integer("clique", clique, minimum=2)
    check_integer("tail", tail, minimum=0)
    edges = [(i, j) for i in range(clique) for j in range(i + 1, clique)]
    previous = clique - 1
    for t in range(tail):
        node = clique + t
        edges.append((previous, node))
        previous = node
    return Graph(clique + tail, edges)


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two ``clique``-cliques joined by a path of ``bridge`` intermediate nodes."""
    check_integer("clique", clique, minimum=2)
    check_integer("bridge", bridge, minimum=0)
    n = 2 * clique + bridge
    edges = [(i, j) for i in range(clique) for j in range(i + 1, clique)]
    offset = clique + bridge
    edges += [(offset + i, offset + j) for i in range(clique) for j in range(i + 1, clique)]
    chain = [clique - 1] + [clique + i for i in range(bridge)] + [offset]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph(n, edges)


# ------------------------------------------------------------ random families
def erdos_renyi(n: int, p: float, seed: RandomState = None,
                ensure_connected: bool = True) -> Graph:
    """Erdős–Rényi G(n, p) graph.

    When ``ensure_connected`` is set (default) the largest connected component
    is returned, which may have fewer than ``n`` nodes for small ``p``.
    """
    check_integer("n", n, minimum=2)
    check_probability("p", p, inclusive=True)
    rng = as_rng(seed)
    rows, cols = np.triu_indices(n, k=1)
    mask = rng.random(rows.size) < p
    graph = Graph(n, list(zip(rows[mask].tolist(), cols[mask].tolist())))
    if ensure_connected and not is_connected(graph):
        graph, _ = largest_connected_component(graph)
    return graph


def barabasi_albert(n: int, m: int, seed: RandomState = None) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Each new node attaches to ``m`` existing nodes chosen proportionally to
    degree.  The result is connected and scale-free, matching the structural
    assumptions (power-law degrees, small diameter) used by the paper's
    complexity analysis.
    """
    check_integer("n", n, minimum=2)
    check_integer("m", m, minimum=1, maximum=n - 1)
    rng = as_rng(seed)

    edges: List[Tuple[int, int]] = []
    # Repeated-node list implements preferential attachment in O(1) per draw.
    repeated: List[int] = []
    # Seed with a star on m + 1 nodes so every new node can pick m targets.
    for v in range(1, m + 1):
        edges.append((0, v))
        repeated.extend([0, v])
    for new_node in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(pick)
        for t in targets:
            edges.append((new_node, t))
            repeated.extend([new_node, t])
    return Graph(n, edges)


def watts_strogatz(n: int, k: int, p: float, seed: RandomState = None) -> Graph:
    """Watts–Strogatz small-world graph (connected variant).

    A ring lattice where each node connects to its ``k`` nearest neighbours
    (``k`` even) and each edge is rewired with probability ``p``.  Rewiring
    that would disconnect the graph is retried, mirroring
    ``networkx.connected_watts_strogatz_graph``.
    """
    check_integer("n", n, minimum=4)
    check_integer("k", k, minimum=2, maximum=n - 1)
    if k % 2 != 0:
        raise InvalidParameterError(f"k must be even for a ring lattice, got {k}")
    check_probability("p", p, inclusive=True)
    rng = as_rng(seed)

    for _ in range(64):
        edge_set = set()
        for offset in range(1, k // 2 + 1):
            for u in range(n):
                v = (u + offset) % n
                edge_set.add((min(u, v), max(u, v)))
        edges = sorted(edge_set)
        for idx, (u, v) in enumerate(list(edges)):
            if rng.random() < p:
                candidates = [w for w in range(n) if w != u]
                rng.shuffle(candidates)
                for w in candidates:
                    candidate = (min(u, w), max(u, w))
                    if candidate not in edge_set:
                        edge_set.discard((u, v))
                        edge_set.add(candidate)
                        break
        graph = Graph(n, sorted(edge_set))
        if is_connected(graph):
            return graph
    graph, _ = largest_connected_component(graph)
    return graph


def powerlaw_cluster(n: int, m: int, p: float, seed: RandomState = None) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but each preferential attachment step is followed,
    with probability ``p``, by a "triad formation" step connecting to a random
    neighbour of the previously chosen target.  Produces scale-free graphs
    with higher clustering, a closer match for social networks such as the
    Facebook/Hamsterster datasets of the paper.
    """
    check_integer("n", n, minimum=2)
    check_integer("m", m, minimum=1, maximum=n - 1)
    check_probability("p", p, inclusive=True)
    rng = as_rng(seed)

    adjacency: List[set] = [set() for _ in range(n)]
    repeated: List[int] = []

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.extend([u, v])
        return True

    for v in range(1, m + 1):
        add_edge(0, v)
    for new_node in range(m + 1, n):
        added = 0
        last_target = None
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            if last_target is not None and rng.random() < p and adjacency[last_target]:
                neighbour = list(adjacency[last_target])[
                    int(rng.integers(0, len(adjacency[last_target])))
                ]
                if add_edge(new_node, neighbour):
                    added += 1
                    continue
            target = repeated[int(rng.integers(0, len(repeated)))]
            if add_edge(new_node, target):
                added += 1
                last_target = target
    edges = [(u, v) for u in range(n) for v in adjacency[u] if u < v]
    return Graph(n, edges)


def _repair_regular_matching(edge_set, conflicted, rng) -> bool:
    """Resolve configuration-model collisions by random edge switches.

    Each conflicted stub pair ``(u, v)`` (a self-loop or duplicate edge) is
    rewired against a random existing edge ``(x, y)``: remove ``(x, y)``,
    add ``(u, x)`` and ``(v, y)`` — a degree-preserving double-edge swap.
    Returns ``False`` when a pair cannot be placed within the retry budget
    (the caller then restarts from a fresh matching).
    """
    edges = list(edge_set)
    for u, v in conflicted:
        placed = False
        for _ in range(200):
            index = int(rng.integers(0, len(edges)))
            existing = edges[index]
            x, y = existing
            if rng.random() < 0.5:
                x, y = y, x
            first = (min(u, x), max(u, x))
            second = (min(v, y), max(v, y))
            if (u == x or v == y or first == second
                    or first in edge_set or second in edge_set):
                continue
            edge_set.remove(existing)
            edge_set.add(first)
            edge_set.add(second)
            edges[index] = first
            edges.append(second)
            placed = True
            break
        if not placed:
            return False
    return True


def random_regular(n: int, d: int, seed: RandomState = None) -> Graph:
    """Random ``d``-regular graph via configuration-model matching.

    Collisions (self-loops, duplicate edges) are repaired with
    degree-preserving double-edge swaps instead of rejecting the whole
    matching — whole-matching rejection succeeds with probability roughly
    ``exp(-(d^2-1)/4)``, which is hopeless already at ``d = 6``.  Matchings
    that happened to be simple are returned exactly as before (the repair
    path draws no randomness for them).
    """
    check_integer("n", n, minimum=2)
    check_integer("d", d, minimum=1, maximum=n - 1)
    if (n * d) % 2 != 0:
        raise InvalidParameterError("n * d must be even for a d-regular graph")
    rng = as_rng(seed)
    for _ in range(200):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edge_set = set()
        conflicted = []
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v or (min(u, v), max(u, v)) in edge_set:
                conflicted.append((u, v))
            else:
                edge_set.add((min(u, v), max(u, v)))
        if conflicted and not _repair_regular_matching(edge_set, conflicted,
                                                       rng):
            continue
        graph = Graph(n, sorted(edge_set))
        if is_connected(graph):
            return graph
    raise InvalidParameterError(
        f"failed to generate a connected random {d}-regular graph on {n} nodes"
    )


def planted_partition(n: int, communities: int, p_in: float, p_out: float,
                      seed: RandomState = None,
                      ensure_connected: bool = True) -> Graph:
    """Planted-partition (symmetric stochastic block model) graph.

    ``n`` nodes are split into ``communities`` near-equal blocks; each
    within-block pair is connected with probability ``p_in`` and each
    cross-block pair with probability ``p_out``.  With ``p_in >> p_out`` the
    result has planted community structure — sparse cuts between dense
    blocks, the regime where current-flow distances diverge most from
    shortest-path distances and where forest pools concentrate mass on the
    few cut edges.

    When ``ensure_connected`` is set (default) isolated blocks are stitched
    together by one extra uniformly drawn cross-block edge per missing link
    in a random spanning order, so the generator always returns a connected
    graph on all ``n`` nodes.
    """
    check_integer("n", n, minimum=2)
    check_integer("communities", communities, minimum=1, maximum=n)
    check_probability("p_in", p_in, inclusive=True)
    check_probability("p_out", p_out, inclusive=True)
    rng = as_rng(seed)

    block = np.arange(n) * communities // n  # near-equal contiguous blocks
    rows, cols = np.triu_indices(n, k=1)
    same = block[rows] == block[cols]
    probability = np.where(same, p_in, p_out)
    mask = rng.random(rows.size) < probability
    edge_set = set(zip(rows[mask].tolist(), cols[mask].tolist()))
    graph = Graph(n, sorted(edge_set))
    if ensure_connected and not is_connected(graph):
        # Stitch the components together with uniformly drawn bridges in a
        # random spanning order (cheap, preserves the planted structure).
        from repro.graph.traversal import connected_components

        components = connected_components(graph)
        order = list(range(len(components)))
        rng.shuffle(order)
        for previous, current in zip(order, order[1:]):
            u = int(components[previous][int(rng.integers(0, len(components[previous])))])
            v = int(components[current][int(rng.integers(0, len(components[current])))])
            edge_set.add((min(u, v), max(u, v)))
        graph = Graph(n, sorted(edge_set))
    return graph


def random_tree(n: int, seed: RandomState = None) -> Graph:
    """Uniformly random labelled tree via a random Prüfer sequence."""
    check_integer("n", n, minimum=1)
    if n == 1:
        return Graph(1, [])
    if n == 2:
        return Graph(2, [(0, 1)])
    rng = as_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    np.add.at(degree, prufer, 1)
    edges: List[Tuple[int, int]] = []
    leaves = sorted(int(v) for v in np.flatnonzero(degree == 1))
    import heapq

    heapq.heapify(leaves)
    for value in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(value)))
        degree[leaf] -= 1  # leaf is now fully attached
        degree[value] -= 1
        if degree[value] == 1:
            heapq.heappush(leaves, int(value))
    last = [int(v) for v in np.flatnonzero(degree == 1)]
    edges.append((last[0], last[1]))
    return Graph(n, edges)


def random_geometric(n: int, radius: float, seed: RandomState = None) -> Graph:
    """Random geometric graph on the unit square (largest component)."""
    check_integer("n", n, minimum=2)
    if radius <= 0:
        raise InvalidParameterError(f"radius must be > 0, got {radius}")
    rng = as_rng(seed)
    points = rng.random((n, 2))
    diff = points[:, None, :] - points[None, :, :]
    dist2 = np.sum(diff * diff, axis=2)
    rows, cols = np.nonzero(np.triu(dist2 <= radius * radius, k=1))
    graph = Graph(n, list(zip(rows.tolist(), cols.tolist())))
    if not is_connected(graph):
        graph, _ = largest_connected_component(graph)
    return graph
