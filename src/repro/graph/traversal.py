"""Graph traversal primitives: BFS orders/trees, components, diameters.

The CFCM algorithms need a BFS tree rooted at the current root set ``S`` (or
``S ∪ T``): the unbiased voltage estimators of the paper are sums of edge
currents along a *fixed* path from each node to the root set, and the BFS tree
provides a canonical shortest such path (so the per-sample magnitudes are
bounded by the graph diameter τ, the bound used in Lemmas 3.9 and 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import DisconnectedGraphError, InvalidNodeError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class BFSTree:
    """BFS forest rooted at a node set.

    Attributes
    ----------
    roots:
        Sorted array of root nodes.
    order:
        Nodes in visiting order (roots first, then by non-decreasing depth).
    parent:
        ``parent[u]`` is the BFS parent of ``u`` (``-1`` for roots and
        unreachable nodes).
    depth:
        BFS distance from the nearest root (``-1`` when unreachable).
    """

    roots: np.ndarray
    order: np.ndarray
    parent: np.ndarray
    depth: np.ndarray

    @property
    def max_depth(self) -> int:
        """Largest finite depth in the tree."""
        reachable = self.depth[self.depth >= 0]
        return int(reachable.max()) if reachable.size else 0

    def levels(self) -> List[np.ndarray]:
        """Nodes grouped by depth, ``levels()[d]`` listing nodes at depth ``d``."""
        grouped: List[np.ndarray] = []
        for d in range(self.max_depth + 1):
            grouped.append(np.flatnonzero(self.depth == d))
        return grouped


def bfs_tree(graph: Graph, roots: Sequence[int]) -> BFSTree:
    """Breadth-first search from a set of root nodes.

    All roots start at depth 0; ties between frontier nodes are broken by node
    id so the construction is deterministic.
    """
    root_array = np.asarray(sorted(set(int(r) for r in roots)), dtype=np.int64)
    if root_array.size == 0:
        raise InvalidNodeError("BFS requires at least one root")
    if root_array.min() < 0 or root_array.max() >= graph.n:
        raise InvalidNodeError("BFS roots must lie in [0, n)")

    parent = np.full(graph.n, -1, dtype=np.int64)
    depth = np.full(graph.n, -1, dtype=np.int64)
    depth[root_array] = 0
    order: List[int] = list(root_array)
    frontier = list(root_array)
    indptr, adjacency = graph.indptr, graph.adjacency
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in adjacency[indptr[u]:indptr[u + 1]]:
                v = int(v)
                if depth[v] < 0:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    next_frontier.append(v)
        next_frontier.sort()
        order.extend(next_frontier)
        frontier = next_frontier
    return BFSTree(
        roots=root_array,
        order=np.asarray(order, dtype=np.int64),
        parent=parent,
        depth=depth,
    )


def bfs_order(graph: Graph, roots: Sequence[int]) -> np.ndarray:
    """Nodes reachable from ``roots`` in BFS visiting order."""
    return bfs_tree(graph, roots).order


def connected_components(graph: Graph) -> List[np.ndarray]:
    """Connected components as arrays of node ids, largest first."""
    seen = np.zeros(graph.n, dtype=bool)
    components: List[np.ndarray] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        tree = bfs_tree(graph, [start])
        members = tree.order[tree.depth[tree.order] >= 0]
        members = np.asarray(sorted(int(v) for v in members), dtype=np.int64)
        seen[members] = True
        components.append(members)
    components.sort(key=lambda arr: (-arr.size, int(arr[0]) if arr.size else 0))
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected."""
    if graph.n <= 1:
        return True
    tree = bfs_tree(graph, [0])
    return bool(np.all(tree.depth >= 0))


def require_connected(graph: Graph) -> None:
    """Raise :class:`DisconnectedGraphError` when ``graph`` is not connected."""
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "this operation requires a connected graph; extract the largest "
            "connected component first (repro.graph.largest_connected_component)"
        )


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Largest connected component as a new graph plus the label mapping."""
    components = connected_components(graph)
    return graph.subgraph(components[0])


def eccentricity(graph: Graph, node: int) -> int:
    """Eccentricity (largest BFS distance) of ``node``; requires connectivity."""
    require_connected(graph)
    tree = bfs_tree(graph, [node])
    return tree.max_depth


def diameter(graph: Graph, exact: bool = False, samples: int = 16,
             seed: int | None = 0) -> int:
    """Graph diameter τ.

    Parameters
    ----------
    exact:
        When ``True`` runs a BFS from every node (O(nm)); otherwise uses the
        standard double-sweep lower bound refined over ``samples`` random
        restarts, which is exact on trees and extremely tight on the
        small-world graphs used throughout the paper.
    """
    require_connected(graph)
    if graph.n == 1:
        return 0
    if exact:
        return max(bfs_tree(graph, [u]).max_depth for u in range(graph.n))

    rng = np.random.default_rng(seed)
    best = 0
    starts = set([0, int(np.argmax(graph.degrees))])
    starts.update(int(v) for v in rng.integers(0, graph.n, size=max(samples - 2, 0)))
    for start in starts:
        first = bfs_tree(graph, [start])
        far = int(first.order[np.argmax(first.depth[first.order])])
        second = bfs_tree(graph, [far])
        best = max(best, second.max_depth)
    return best
