"""repro — reproduction of "Fast Maximization of Current Flow Group Closeness Centrality".

The package implements the paper's two contributions — ForestCFCM and
SchurCFCM — together with every substrate they rely on (graph structures,
Laplacian solvers, spanning-forest sampling) and every baseline the paper
compares against (exact greedy, ApproxGreedy, Degree, Top-CFCC, brute-force
optimum), plus an experiment harness regenerating each table and figure of
the evaluation section.

Quickstart
----------
>>> import repro
>>> from repro.graph import generators
>>> graph = generators.barabasi_albert(300, 3, seed=0)
>>> result = repro.maximize_cfcc(graph, k=5, method="schur", eps=0.3, seed=1)
>>> value = repro.group_cfcc(graph, result.group)
"""

import repro.obs as obs
from repro.exceptions import (
    ConvergenceError,
    DisconnectedGraphError,
    GraphError,
    InvalidNodeError,
    InvalidParameterError,
    NotComputedError,
    ReproError,
)
from repro.graph.graph import Graph
from repro.centrality import (
    ApproxGreedy,
    CFCMResult,
    ExactGreedy,
    ForestCFCM,
    METHODS,
    SchurCFCM,
    approximation_ratio,
    compare_methods,
    degree_group,
    effectiveness_curve,
    group_overlap,
    ranking_agreement,
    relative_difference,
    first_pick_objective,
    forest_delta,
    group_cfcc,
    group_cfcc_estimate,
    grounded_trace,
    marginal_gain,
    marginal_gains_all,
    maximize_cfcc,
    optimum_cfcm,
    resistance_distance,
    resistance_to_group,
    schur_delta,
    single_cfcc,
    single_cfcc_all,
    top_cfcc_group,
    total_group_resistance,
)
from repro.centrality.estimators import SamplingConfig
from repro.dynamic import DynamicCFCM, DynamicGraph, IncrementalResistance

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # exceptions
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "InvalidNodeError",
    "InvalidParameterError",
    "ConvergenceError",
    "NotComputedError",
    # core types
    "Graph",
    "CFCMResult",
    "SamplingConfig",
    # dynamic engine
    "DynamicGraph",
    "DynamicCFCM",
    "IncrementalResistance",
    # algorithms
    "maximize_cfcc",
    "METHODS",
    "ForestCFCM",
    "SchurCFCM",
    "ApproxGreedy",
    "ExactGreedy",
    "degree_group",
    "top_cfcc_group",
    "optimum_cfcm",
    "forest_delta",
    "schur_delta",
    # exact quantities
    "group_cfcc",
    "group_cfcc_estimate",
    "grounded_trace",
    "single_cfcc",
    "single_cfcc_all",
    "resistance_distance",
    "resistance_to_group",
    "total_group_resistance",
    "marginal_gain",
    "marginal_gains_all",
    "first_pick_objective",
    # evaluation metrics
    "approximation_ratio",
    "compare_methods",
    "effectiveness_curve",
    "group_overlap",
    "ranking_agreement",
    "relative_difference",
]
