"""Spanning-forest estimators of grounded-Laplacian quantities.

This module implements the statistical core shared by ForestCFCM and
SchurCFCM:

* ``Phi_{u,S}(v)`` — the unbiased estimator of ``(inv(L_{-S}))_{uv}`` built
  from edge-current counts of sampled rooted forests (Lemma 3.3).  The fixed
  path ``P_{v,S}`` required by the lemma is the BFS-tree path from ``v`` to
  the root set, so each per-sample value is bounded by the diameter τ (the
  bound used in Lemmas 3.9 / 4.5).
* JL-projected estimators ``Phi_{w_j,S}(v)`` of ``w_j^T inv(L_{-S}) e_v``
  (Section III-B), from which ``diag(inv(L_{-S})^2)`` is recovered as squared
  projected column norms.
* the rooted-probability matrix ``F`` and the sampled Schur complement
  ``S_T(L_{-S})`` of Section IV (Lemma 4.2 and Eq. 15).

Implementation note (documented substitution): the paper's C++ code maintains
per-directed-edge counters ``N~^{a->b}_{u,S}`` incrementally in O(1) amortised
per node.  Here every sampled forest is processed with vectorised NumPy
passes — forest subtree sums per depth level, BFS-level prefix sums, and an
Euler-tour ancestor test — which computes *exactly the same estimators* (same
expectations, same per-sample values) with Python-friendly constant factors.

Per-sample quantities
---------------------
For a sampled forest with parent map ``π`` and a BFS tree (parent ``b``) from
the root set:

* ``alpha_x = 1`` iff ``π_x = b_x`` — the BFS edge of ``x`` is traversed
  upward by every node in the forest subtree of ``x``;
* ``beta_x = 1`` iff ``π_{b_x} = x`` — the BFS edge of ``x`` is traversed
  downward by every node in the forest subtree of ``b_x``.

The projected estimator for node ``u`` is the sum over the BFS path of
``alpha_x * Tw(x) - beta_x * Tw(b_x)`` where ``Tw(x)`` is the forest-subtree
sum of the weight vector, computed as a prefix sum along BFS levels.  The
diagonal estimator for ``u`` restricts the same sum to the contribution of
``u`` itself, i.e. keeps a term only when ``x`` (resp. ``b_x``) is a forest
ancestor of ``u`` — an O(1) Euler-tour interval test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import BFSTree, bfs_tree
from repro.linalg.jl import jl_dimension
from repro.obs.tracing import trace
from repro.sampling.batch import (
    ForestBatch,
    LOCKSTEP_STATE_LIMIT,
    sample_forest_batch_vectorized,
)
from repro.sampling.wilson import sample_rooted_forest
from repro.utils.rng import RandomState, as_rng


@dataclass
class SamplingConfig:
    """Tunable knobs of the forest-sampling estimators.

    Parameters
    ----------
    eps:
        Target relative error of the marginal-gain estimates.
    delta:
        Failure probability of the concentration bounds; ``None`` uses the
        paper's ``1/n``.
    max_samples:
        Hard cap on sampled forests per estimation call.  The theoretical
        Hoeffding-style bound of the paper (``r = O(eps^-2 τ^2 dmax^{2τ+2}
        log n)``) is astronomically conservative; as in the paper the real
        driver is the empirical-Bernstein early-stopping rule, and this cap
        bounds worst-case work.
    min_samples / initial_batch:
        Floor and first batch size of the doubling schedule.
    jl_constant / max_jl_dimension:
        JL dimension is ``min(ceil(jl_constant * eps^-2 * log n),
        max_jl_dimension)``; set ``theoretical_constants=True`` to use the
        paper's ``24 (eps/7)^-2 log n`` without a cap (only sensible for very
        small graphs).
    """

    eps: float = 0.2
    delta: Optional[float] = None
    max_samples: int = 512
    min_samples: int = 16
    initial_batch: int = 16
    jl_constant: float = 1.0
    max_jl_dimension: int = 96
    theoretical_constants: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.eps < 1.0:
            raise InvalidParameterError(f"eps must lie in (0, 1), got {self.eps}")
        if self.delta is not None and not 0.0 < self.delta < 1.0:
            raise InvalidParameterError(f"delta must lie in (0, 1), got {self.delta}")
        if self.max_samples < 1:
            raise InvalidParameterError("max_samples must be >= 1")
        self.min_samples = max(1, min(self.min_samples, self.max_samples))
        self.initial_batch = max(1, self.initial_batch)

    def failure_probability(self, n: int) -> float:
        """Effective delta (``1/n`` unless overridden)."""
        return self.delta if self.delta is not None else 1.0 / max(n, 2)

    def jl_rows(self, n: int) -> int:
        """Number of JL projection rows for a graph with ``n`` nodes."""
        if self.theoretical_constants:
            return jl_dimension(n, self.eps / 7.0, constant=24.0)
        return jl_dimension(n, self.eps, constant=self.jl_constant,
                            maximum=self.max_jl_dimension)

    def sample_cap(self, n: int) -> int:
        """Worst-case sample count for a graph with ``n`` nodes."""
        if self.theoretical_constants:
            return self.max_samples  # even then, keep the explicit cap
        scaled = int(math.ceil(4.0 * self.eps ** -2 * math.log(max(n, 2))))
        return int(min(self.max_samples, max(self.min_samples, scaled) * 4))


class PathSystem:
    """A fixed path system ``P_{u,S}`` from every node to the root set.

    Lemma 3.3's diagonal estimator is unbiased for *any* fixed choice of
    graph paths from each node to ``S``; this library uses the BFS-tree
    paths (so per-sample values are bounded by the diameter τ).  The path
    system is deliberately decoupled from the sampled forests: the engine's
    importance-weighted pools keep one path system alive across graph
    mutations and cache each stored forest's estimator value against it —
    cached values stay exact as long as every path edge still exists, which
    edge insertions, reweights and (leaf-extended) node insertions all
    preserve.

    Parameters
    ----------
    parent:
        ``(n,)`` path-tree parents (``-1`` on roots): ``parent[u]`` is the
        next hop of ``u``'s fixed path towards the root set.
    roots:
        The root set ``S``.
    """

    def __init__(self, parent: np.ndarray, roots: Sequence[int]):
        from repro.sampling.forest import Forest as _Forest

        self.parent = np.asarray(parent, dtype=np.int64)
        self.roots = sorted(set(int(r) for r in roots))
        n = self.parent.size
        self.root_mask = np.zeros(n, dtype=bool)
        self.root_mask[self.roots] = True
        self.nonroot = np.flatnonzero(~self.root_mask)
        tree = _Forest(parent=self.parent.copy(),
                       roots=np.asarray(self.roots, dtype=np.int64))
        # Euler-tour intervals give the O(1) "x on BFS path of u" test the
        # diagonal walk needs.
        self.tin, self.tout = tree.euler_intervals()
        self._levels: Optional[list] = None

    @classmethod
    def from_graph(cls, graph: Graph, roots: Sequence[int]) -> "PathSystem":
        """The BFS-tree path system of ``graph`` (paths bounded by τ)."""
        tree = bfs_tree(graph, sorted(set(int(r) for r in roots)))
        if np.any(tree.depth < 0):
            raise InvalidParameterError(
                "graph must be connected for forest sampling"
            )
        return cls(tree.parent, roots)

    @property
    def n(self) -> int:
        return int(self.parent.size)

    def uses_edge(self, u: int, v: int) -> bool:
        """Whether the path tree traverses the undirected edge ``(u, v)``."""
        u, v = int(u), int(v)
        return bool(self.parent[u] == v or self.parent[v] == u)

    def levels(self) -> list:
        """Nodes grouped by path-tree depth (level 0 = roots), cached.

        The projected-estimator fold needs exactly this grouping for its
        per-level prefix sums; deriving it from the path tree itself (rather
        than a separate BFS object) lets pooled consumers fold projected
        rows against a long-lived path system.
        """
        if self._levels is None:
            depth = np.full(self.n, -1, dtype=np.int64)
            depth[self.root_mask] = 0
            pending = self.nonroot.copy()
            while pending.size:
                ready = depth[self.parent[pending]] >= 0
                now = pending[ready]
                depth[now] = depth[self.parent[now]] + 1
                pending = pending[~ready]
            self._levels = [
                np.flatnonzero(depth == level)
                for level in range(int(depth.max()) + 1 if depth.size else 0)
            ]
        return self._levels

    def extended(self, attachment: int) -> "PathSystem":
        """A path system for the graph grown by one node (id ``n``).

        The new node's fixed path is the edge to ``attachment`` followed by
        the attachment's path — i.e. the path tree gains one leaf, leaving
        every existing path unchanged.
        """
        attachment = int(attachment)
        if not 0 <= attachment < self.n:
            raise InvalidParameterError(
                f"attachment {attachment} outside node range [0, {self.n})"
            )
        parent = np.concatenate([self.parent, [attachment]])
        return PathSystem(parent, self.roots)


def batched_diag_estimates(forest_parent: np.ndarray, path: PathSystem,
                           columns: Optional[Sequence[int]] = None,
                           ) -> np.ndarray:
    """Per-forest Lemma 3.3 diagonal estimates over a ``(B, n)`` batch.

    Returns the ``(B, n)`` matrix whose row ``i`` is the per-node diagonal
    estimator of forest ``i`` under the fixed ``path`` system (columns on
    roots are zero) — the quantity :class:`ForestAccumulator` accumulates,
    exposed per forest so pooled consumers can cache it.  ``columns``
    restricts the walk to the given start nodes and returns ``(B, k)``
    (used to price a newly inserted node without refolding the batch).

    The kernel is a lane-compressed ancestor walk: one lane per (sample,
    start-node) pair climbs its forest path with batch-wide fancy gathers,
    so the Python loop runs over the batch-wide maximum forest depth.
    """
    forest_parent = np.asarray(forest_parent, dtype=np.int64)
    if forest_parent.ndim != 2 or forest_parent.shape[1] != path.n:
        raise InvalidParameterError(
            f"forest parents must have shape (B, {path.n}), "
            f"got {forest_parent.shape}"
        )
    size = forest_parent.shape[0]
    n = path.n
    if columns is None:
        starts = path.nonroot
    else:
        starts = np.asarray([int(c) for c in columns], dtype=np.int64)
        if starts.size and (starts.min() < 0 or starts.max() >= n):
            raise InvalidParameterError("columns outside node range")
    bfs_parent = path.parent
    nonroot = path.nonroot
    tin, tout = path.tin, path.tout

    alpha = np.zeros((size, n), dtype=bool)
    alpha[:, nonroot] = forest_parent[:, nonroot] == bfs_parent[nonroot]
    has_parent = forest_parent >= 0
    safe_parent = np.where(has_parent, forest_parent, 0)
    delta = has_parent & (bfs_parent[safe_parent] == np.arange(n))

    diag = np.zeros((size, starts.size))
    lane_sample = np.repeat(np.arange(size, dtype=np.int64), starts.size)
    lane_start = np.tile(np.arange(starts.size, dtype=np.int64), size)
    cursor = np.tile(starts, size)
    tin_lane = tin[cursor]
    # Lanes rooted at a root node are done before they start.
    live = ~path.root_mask[cursor]
    lane_sample, lane_start = lane_sample[live], lane_start[live]
    cursor, tin_lane = cursor[live], tin_lane[live]
    while lane_sample.size:
        x = cursor
        on_path_x = (tin[x] <= tin_lane) & (tin_lane <= tout[x])
        pi_x = forest_parent[lane_sample, x]
        safe_pi = np.where(pi_x >= 0, pi_x, x)
        on_path_pi = (tin[safe_pi] <= tin_lane) & (tin_lane <= tout[safe_pi])
        step = (
            (alpha[lane_sample, x] & on_path_x).astype(np.float64)
            - (delta[lane_sample, x] & on_path_pi & (pi_x >= 0)).astype(np.float64)
        )
        # (sample, start) pairs are unique within the lane set, so the
        # fancy-indexed accumulate cannot collide.
        diag[lane_sample, lane_start] += step
        keep = (pi_x >= 0) & ~path.root_mask[safe_pi]
        lane_sample = lane_sample[keep]
        lane_start = lane_start[keep]
        cursor = pi_x[keep]
        tin_lane = tin_lane[keep]
    if columns is None:
        full = np.zeros((size, n))
        full[:, starts] = diag
        return full
    return diag


def batched_projected_estimates(batch: ForestBatch, path: PathSystem,
                                weights: np.ndarray) -> np.ndarray:
    """Per-forest projected estimators ``w_j^T inv(L_{-S}) e_u`` over a batch.

    Returns the ``(B, w, n)`` tensor whose slice ``i`` holds forest ``i``'s
    unaggregated projected estimator rows under the fixed ``path`` system —
    the quantity :meth:`ForestAccumulator._fold_batched` weight-sums over
    the batch axis, exposed per forest so pooled consumers (the engine's
    JL-projected gain evaluation) can cache rows per forest and fold only
    fresh draws.  Columns of ``weights`` on roots are zeroed defensively.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = path.n
    if weights.ndim != 2 or weights.shape[1] != n:
        raise InvalidParameterError(f"weights must have shape (w, {n})")
    if batch.n != n:
        raise InvalidParameterError(
            f"forest batch spans {batch.n} nodes, path system {n}"
        )
    weights = weights.copy()
    weights[:, path.roots] = 0.0
    parent = batch.parent
    size = batch.batch_size
    bfs_parent = path.parent
    nonroot = path.nonroot
    alpha = np.zeros((size, n), dtype=bool)
    beta = np.zeros((size, n), dtype=bool)
    alpha[:, nonroot] = parent[:, nonroot] == bfs_parent[nonroot]
    beta[:, nonroot] = parent[:, bfs_parent[nonroot]] == nonroot
    subtree = batch.subtree_sums(weights)  # (B, w, n)
    contribution = np.zeros_like(subtree)
    contribution[:, :, nonroot] = (
        subtree[:, :, nonroot] * alpha[:, None, nonroot]
        - subtree[:, :, bfs_parent[nonroot]] * beta[:, None, nonroot]
    )
    projected = np.zeros_like(subtree)
    levels = path.levels()
    for level in range(1, len(levels)):
        nodes = levels[level]
        if nodes.size == 0:
            continue
        projected[:, :, nodes] = (
            projected[:, :, bfs_parent[nodes]] + contribution[:, :, nodes]
        )
    return projected


def rademacher_weights(rows: int, n: int, excluded: Sequence[int],
                       rng: np.random.Generator) -> np.ndarray:
    """JL weight matrix of shape ``(rows, n)``, zeroed on ``excluded`` columns."""
    scale = 1.0 / math.sqrt(rows)
    weights = np.where(rng.random((rows, n)) < 0.5, -scale, scale)
    if len(excluded):
        weights[:, list(excluded)] = 0.0
    return weights


class ForestAccumulator:
    """Accumulates forest-sample estimates for a fixed root set.

    Parameters
    ----------
    graph:
        Connected graph.
    roots:
        Root set of the sampled forests (``S`` for ForestDelta, ``S ∪ T`` for
        SchurDelta, ``{s}`` for the first greedy pick).
    weights:
        ``(w, n)`` weight matrix; every row defines one linear functional
        ``w_j^T inv(L_{-roots}) e_u`` to estimate.  Columns on ``roots`` must
        be zero (they are zeroed defensively).
    tracked_roots:
        Optional subset of ``roots`` whose rooted probabilities
        ``Pr(ρ_u = t)`` must be estimated (the ``T`` set of SchurDelta).
    seed:
        Seed or generator driving Wilson's algorithm.
    """

    def __init__(self, graph: Graph, roots: Sequence[int],
                 weights: Optional[np.ndarray] = None,
                 tracked_roots: Optional[Sequence[int]] = None,
                 seed: RandomState = None):
        self.graph = graph
        self.roots = sorted(set(int(r) for r in roots))
        if not self.roots:
            raise InvalidParameterError("root set must be non-empty")
        self.rng = as_rng(seed)
        self.tree: BFSTree = bfs_tree(graph, self.roots)
        if np.any(self.tree.depth < 0):
            raise InvalidParameterError("graph must be connected for forest sampling")
        self.tau = int(self.tree.max_depth)

        n = graph.n
        # The fixed path system (BFS-tree paths with Euler-tour intervals):
        # the diagonal estimator walks each node's forest path and tests
        # membership of the BFS path with the intervals, so no per-sample
        # tour is ever needed.
        self._path = PathSystem(self.tree.parent, self.roots)
        self._root_mask = self._path.root_mask
        self._bfs_parent = self._path.parent
        self._levels = self.tree.levels()
        self._nonroot = self._path.nonroot
        self._bfs_tin, self._bfs_tout = self._path.tin, self._path.tout

        if weights is None:
            weights = np.zeros((0, n))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != n:
            raise InvalidParameterError(f"weights must have shape (w, {n})")
        weights = weights.copy()
        weights[:, self.roots] = 0.0
        self.weights = weights

        self.tracked_roots = sorted(set(int(t) for t in tracked_roots or []))
        unknown = set(self.tracked_roots) - set(self.roots)
        if unknown:
            raise InvalidParameterError(
                f"tracked roots {sorted(unknown)} are not part of the root set"
            )

        rows = weights.shape[0]
        # `count` is the total *importance weight* folded in (a float): plain
        # samples contribute 1 each, pooled forests their self-normalising
        # importance weight, so every estimate below is a weighted mean.
        self.count = 0.0
        self.projected_sum = np.zeros((rows, n))
        self.diag_sum = np.zeros(n)
        self.diag_sumsq = np.zeros(n)
        self.root_counts = np.zeros((n, len(self.tracked_roots)))

    # ----------------------------------------------------------------- sampling
    def add_samples(self, batch_size: int) -> None:
        """Sample ``batch_size`` forests and fold them into the running sums.

        Batches of two or more are drawn with the lockstep vectorised
        sampler (in chunks sized so the batched subtree-sum tensor stays
        memory-bounded) and folded through :meth:`add_batch`; a single
        sample falls back to the scalar sampler.
        """
        remaining = int(batch_size)
        if remaining <= 0:
            return
        n = self.graph.n
        rows = max(self.weights.shape[0], 1)
        # Bound both the sampler's (B, n) state and the (B, n, w) subtree
        # tensor of the batched fold.
        chunk_cap = max(1, min(LOCKSTEP_STATE_LIMIT // max(n, 1),
                               (1 << 24) // max(n * rows, 1)))
        while remaining > 0:
            take = min(remaining, chunk_cap)
            if take == 1:
                forest = sample_rooted_forest(self.graph, self.roots, seed=self.rng)
                self._process(forest)
            else:
                batch = sample_forest_batch_vectorized(self.graph, self.roots,
                                                       take, seed=self.rng)
                self.add_batch(batch)
            remaining -= take

    def add_forest(self, forest, weight: float = 1.0) -> None:
        """Fold one externally sampled forest into the running sums.

        The forest must be rooted at this accumulator's root set; this is the
        entry point for callers that manage their own forest pool (batch
        sampling workers, the dynamic engine's importance-weighted cache).
        ``weight`` is the forest's importance weight (1 for a fresh sample).
        """
        if forest.n != self.graph.n:
            raise InvalidParameterError(
                f"forest has {forest.n} nodes, graph has {self.graph.n}"
            )
        if [int(r) for r in forest.roots] != self.roots:
            raise InvalidParameterError(
                f"forest roots {forest.roots.tolist()} do not match the "
                f"accumulator root set {self.roots}"
            )
        self._process(forest, weight=float(weight))

    def add_batch(self, batch: ForestBatch,
                  weights: Optional[np.ndarray] = None,
                  method: str = "batched") -> None:
        """Fold a whole :class:`~repro.sampling.batch.ForestBatch` in at once.

        ``method="batched"`` (the default) runs the fully vectorised
        ``(B, n)`` fold of :meth:`_fold_batched`: one batched subtree-sum /
        root-map kernel plus a lane-compressed ancestor walk whose Python
        loop runs over the *batch-wide* maximum forest depth instead of once
        per forest.  ``method="scalar"`` folds each forest through the
        per-forest reference :meth:`_fold` (the chi-square baseline); both
        paths produce the same running sums up to float summation order.

        ``weights`` optionally assigns each forest an importance weight
        (default 1), making every estimate a self-normalised weighted mean —
        this is how the dynamic engine's reweighted pools are evaluated.
        """
        if batch.n != self.graph.n:
            raise InvalidParameterError(
                f"forest batch has {batch.n} nodes, graph has {self.graph.n}"
            )
        if [int(r) for r in batch.roots] != self.roots:
            raise InvalidParameterError(
                f"batch roots {batch.roots.tolist()} do not match the "
                f"accumulator root set {self.roots}"
            )
        if batch.batch_size == 0:
            return
        if weights is None:
            weights = np.ones(batch.batch_size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (batch.batch_size,):
                raise InvalidParameterError(
                    f"per-forest weights must have shape "
                    f"({batch.batch_size},), got {weights.shape}"
                )
            if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
                raise InvalidParameterError(
                    "per-forest weights must be finite and non-negative"
                )
        method = str(method).lower()
        if method not in ("batched", "scalar"):
            raise InvalidParameterError(
                f"method must be 'batched' or 'scalar', got {method!r}"
            )
        with trace("estimator.fold", forests=batch.batch_size, method=method):
            if method == "batched":
                self._fold_batched(batch, weights)
                return
            subtree = (batch.subtree_sums(self.weights)
                       if self.weights.shape[0] else None)
            root_of = batch.root_of() if self.tracked_roots else None
            for index in range(batch.batch_size):
                self._fold(
                    batch.parent[index],
                    None if subtree is None else subtree[index],
                    None if root_of is None else root_of[index],
                    weight=float(weights[index]),
                )

    def _process(self, forest, weight: float = 1.0) -> None:
        subtree = forest.subtree_sums(self.weights) if self.weights.shape[0] else None
        root_of = forest.root_of() if self.tracked_roots else None
        self._fold(forest.parent, subtree, root_of, weight=weight)

    def _fold(self, parent: np.ndarray, subtree: Optional[np.ndarray],
              root_of: Optional[np.ndarray], weight: float = 1.0) -> None:
        """Fold one forest, given its precomputed derived arrays.

        The scalar reference path: :meth:`_fold_batched` computes the same
        sums for a whole batch at once, and the distributional (chi-square)
        suites pin this version as the baseline.  ``subtree`` is the
        ``(w, n)`` forest-subtree sum of :attr:`weights` (``None`` when
        there are no weight rows) and ``root_of`` the rooted-at map
        (``None`` when no roots are tracked); both may be rows of the
        batched kernels' outputs.
        """
        n = self.graph.n
        bfs_parent = self._bfs_parent
        nonroot = self._nonroot

        alpha = np.zeros(n, dtype=bool)
        beta = np.zeros(n, dtype=bool)
        # alpha_x: the forest parent edge of x coincides with its BFS edge.
        alpha[nonroot] = parent[nonroot] == bfs_parent[nonroot]
        # beta_x: the forest parent edge of x's BFS parent points back at x,
        # i.e. the BFS edge of x is traversed downward by the forest path.
        beta[nonroot] = parent[bfs_parent[nonroot]] == nonroot

        # Projected (weight-vector) estimators: forest-subtree sums of the
        # weights, folded along the BFS tree with per-level prefix sums.
        if subtree is not None:
            contribution = np.zeros_like(subtree)
            contribution[:, nonroot] = (
                subtree[:, nonroot] * alpha[nonroot]
                - subtree[:, bfs_parent[nonroot]] * beta[nonroot]
            )
            projected = np.zeros_like(subtree)
            for level in range(1, len(self._levels)):
                nodes = self._levels[level]
                if nodes.size == 0:
                    continue
                projected[:, nodes] = projected[:, bfs_parent[nodes]] + contribution[:, nodes]
            self.projected_sum += weight * projected

        # Diagonal estimators.  Rewriting the Lemma 3.3 path sum so that the
        # outer iteration runs over each node's *forest* ancestors gives
        #
        #   c_u = sum_{x in Fanc(u) \ S} ( alpha_x [x in BFSpath(u)]
        #                                  - delta_x [pi_x in BFSpath(u)] )
        #
        # with delta_x = 1 iff bfs_parent(pi_x) = x.  Membership of the fixed
        # BFS path is an Euler-interval test precomputed in the constructor,
        # so every walk step below is a handful of vectorised array ops.
        tin, tout = self._bfs_tin, self._bfs_tout
        delta = np.zeros(n, dtype=bool)
        has_parent = parent >= 0
        delta[has_parent] = bfs_parent[parent[has_parent]] == np.flatnonzero(has_parent)
        diag = np.zeros(n)
        cursor = nonroot.copy()
        active = nonroot.copy()
        tin_active = tin[active]
        while active.size:
            x = cursor
            on_path_x = (tin[x] <= tin_active) & (tin_active <= tout[x])
            pi_x = parent[x]
            safe_pi = np.where(pi_x >= 0, pi_x, x)
            on_path_pi = (tin[safe_pi] <= tin_active) & (tin_active <= tout[safe_pi])
            diag[active] += (
                (alpha[x] & on_path_x).astype(np.float64)
                - (delta[x] & on_path_pi & (pi_x >= 0)).astype(np.float64)
            )
            keep = (pi_x >= 0) & ~self._root_mask[safe_pi]
            active = active[keep]
            cursor = pi_x[keep]
            tin_active = tin_active[keep]
        self.diag_sum += weight * diag
        self.diag_sumsq += weight * (diag * diag)

        # Rooted probabilities for the tracked (Schur) roots.
        if root_of is not None:
            for idx, target in enumerate(self.tracked_roots):
                self.root_counts[:, idx] += weight * (root_of == target)

        self.count += weight

    def _fold_batched(self, batch: ForestBatch, weights: np.ndarray) -> None:
        """Fold a whole batch with ``(B, n)`` kernels (no per-forest pass).

        Computes exactly the sums of running :meth:`_fold` over every row of
        the batch (up to float summation order):

        * ``alpha``/``beta``/``delta`` indicators as ``(B, n)`` comparisons;
        * the projected estimators via the batched subtree-sum kernel and a
          BFS-level prefix fold vectorised over the batch axis;
        * the diagonal estimators via a lane-compressed ancestor walk: one
          lane per (sample, node) pair climbs its forest path, all lanes
          advance together with fancy gathers, and finished lanes are
          compressed away — so the Python loop runs ``max`` forest depth
          times for the whole batch instead of once per forest;
        * rooted-at counts from the batched pointer-doubling root map.

        The per-forest ``weights`` multiply every contribution, which is
        what lets one kernel serve both the fresh-sample estimators and the
        importance-weighted pool evaluation.
        """
        parent = batch.parent

        if self.weights.shape[0]:
            projected = batched_projected_estimates(batch, self._path,
                                                    self.weights)
            self.projected_sum += np.einsum("b,bwn->wn", weights, projected)

        diag = batched_diag_estimates(parent, self._path)
        self.diag_sum += weights @ diag
        self.diag_sumsq += weights @ (diag * diag)

        if self.tracked_roots:
            root_of = batch.root_of()
            for idx, target in enumerate(self.tracked_roots):
                self.root_counts[:, idx] += (
                    weights @ (root_of == target).astype(np.float64)
                )

        self.count += float(weights.sum())

    # ------------------------------------------------------------------ results
    def projected_estimates(self) -> np.ndarray:
        """``(w, n)`` estimates of ``w_j^T inv(L_{-roots}) e_u``."""
        self._require_samples()
        return self.projected_sum / self.count

    def diag_estimates(self) -> np.ndarray:
        """``(n,)`` estimates of ``(inv(L_{-roots}))_uu`` (zero on roots)."""
        self._require_samples()
        return self.diag_sum / self.count

    def diag_variances(self) -> np.ndarray:
        """Per-node empirical variance of the diagonal per-sample values."""
        self._require_samples()
        mean = self.diag_sum / self.count
        return np.maximum(self.diag_sumsq / self.count - mean * mean, 0.0)

    def diag_half_widths(self, delta: float) -> np.ndarray:
        """Empirical-Bernstein half-widths of the diagonal estimates."""
        self._require_samples()
        variances = self.diag_variances()
        bound = float(max(self.tau, 1))
        log_term = math.log(3.0 / delta)
        return (np.sqrt(2.0 * variances * log_term / self.count)
                + 3.0 * bound * log_term / self.count)

    def root_fractions(self) -> np.ndarray:
        """``(n, |tracked_roots|)`` empirical probabilities ``Pr(ρ_u = t)``.

        Rows of root-set nodes are zeroed: the Schur machinery only uses the
        interior rows ``u ∈ U``.
        """
        self._require_samples()
        fractions = self.root_counts / self.count
        fractions[self._root_mask] = 0.0
        return fractions

    def _require_samples(self) -> None:
        if self.count <= 0.0:
            raise InvalidParameterError("no forests sampled yet")


def run_adaptive_sampling(accumulator: ForestAccumulator, config: SamplingConfig,
                          monitored: Optional[np.ndarray] = None,
                          ) -> Dict[str, float]:
    """Doubling-batch sampling with empirical-Bernstein early stopping.

    The stopping rule mirrors line 17 of Algorithm 2: sampling ends once the
    Bernstein half-width of every monitored diagonal estimate satisfies
    ``err_u <= eps * (estimate_u - err_u)`` (or the sample cap is reached).

    Parameters
    ----------
    monitored:
        Boolean mask of nodes whose diagonal estimates drive the stopping
        rule; defaults to all non-root nodes.

    Returns
    -------
    Diagnostics dictionary with the number of samples and whether the rule
    fired before the cap.
    """
    n = accumulator.graph.n
    delta = config.failure_probability(n)
    cap = config.sample_cap(n)
    if monitored is None:
        monitored = ~accumulator._root_mask
    monitored = np.asarray(monitored, dtype=bool)

    batch = config.initial_batch
    stopped_early = False
    while accumulator.count < cap:
        take = min(batch, cap - accumulator.count)
        accumulator.add_samples(take)
        batch *= 2
        if accumulator.count < config.min_samples:
            continue
        estimates = accumulator.diag_estimates()
        widths = accumulator.diag_half_widths(delta)
        slack = estimates - widths
        satisfied = widths <= config.eps * np.maximum(slack, 0.0)
        if bool(np.all(satisfied[monitored])):
            stopped_early = True
            break
    return {
        "samples": float(accumulator.count),
        "stopped_early": float(stopped_early),
        "cap": float(cap),
    }


def estimate_first_pick(graph: Graph, config: SamplingConfig,
                        seed: RandomState = None,
                        anchor: Optional[int] = None,
                        ) -> Tuple[int, np.ndarray, Dict[str, float]]:
    """First greedy pick shared by ForestCFCM and SchurCFCM (Algorithm 3/5, lines 1-14).

    Samples forests rooted at the maximum-degree node ``s`` and estimates, for
    every node ``u``,

    ``x_u = Phi_{u,{s}}(u) - (2/n) Phi_{1,{s}}(u)``

    which equals ``L†_uu`` up to the common constant ``(1/n^2) 1^T inv(L_{-s}) 1``
    (Lemma 3.5); the node minimising ``x_u`` therefore minimises ``L†_uu``.

    Returns
    -------
    (node, scores, diagnostics):
        The selected node, the estimated ``x_u`` vector (``x_s = 0``) and the
        sampling diagnostics.
    """
    rng = as_rng(seed)
    n = graph.n
    s = int(np.argmax(graph.degrees)) if anchor is None else int(anchor)
    ones = np.ones((1, n))
    accumulator = ForestAccumulator(graph, [s], weights=ones, seed=rng)
    diagnostics = run_adaptive_sampling(accumulator, config)
    column_sums = accumulator.projected_estimates()[0]
    diagonal = accumulator.diag_estimates()
    scores = diagonal - (2.0 / n) * column_sums
    scores[s] = 0.0
    best = int(np.argmin(scores))
    return best, scores, diagnostics


def estimate_forest_delta(graph: Graph, group: Sequence[int],
                          config: SamplingConfig, seed: RandomState = None,
                          ) -> Tuple[Dict[int, float], Dict[str, float]]:
    """ForestDelta (Algorithm 2): estimate ``Δ(u, S)`` for every ``u ∉ S``.

    Returns
    -------
    (gains, diagnostics):
        ``gains[u]`` approximates ``(inv(L_{-S})^2)_uu / (inv(L_{-S}))_uu``.
    """
    rng = as_rng(seed)
    group = sorted(set(int(v) for v in group))
    n = graph.n
    rows = config.jl_rows(n)
    weights = rademacher_weights(rows, n, group, rng)
    accumulator = ForestAccumulator(graph, group, weights=weights, seed=rng)
    diagnostics = run_adaptive_sampling(accumulator, config)

    projected = accumulator.projected_estimates()
    diagonal = accumulator.diag_estimates()
    numerators = np.sum(projected * projected, axis=0)
    gains: Dict[int, float] = {}
    for u in range(n):
        if u in group:
            continue
        # (inv(L_{-S}))_uu >= 1/d_u (Neumann series), a sound floor for the
        # denominator when the sampled estimate is noisy or non-positive.
        floor = 1.0 / max(graph.degrees[u], 1)
        denominator = max(float(diagonal[u]), floor)
        gains[u] = float(numerators[u]) / denominator
    return gains, diagnostics


def estimate_schur_delta(graph: Graph, group: Sequence[int], extra_roots: Sequence[int],
                         config: SamplingConfig, seed: RandomState = None,
                         ) -> Tuple[Dict[int, float], Dict[str, float]]:
    """SchurDelta (Algorithm 4): ``Δ(u, S)`` estimates using extra roots ``T``.

    The forests are rooted at ``S ∪ T`` — cheaper to sample and better
    conditioned — and ``inv(L_{-S})`` is reassembled through the Eq. (11)
    block representation with the sampled rooted-probability matrix ``F`` and
    the sampled Schur complement of Eq. (15).
    """
    rng = as_rng(seed)
    group = sorted(set(int(v) for v in group))
    extras = sorted(set(int(t) for t in extra_roots) - set(group))
    if not extras:
        return estimate_forest_delta(graph, group, config, seed=rng)

    n = graph.n
    roots = sorted(set(group) | set(extras))
    rows = config.jl_rows(n)
    # One Rademacher matrix over all non-grounded coordinates; the columns on
    # U act as the paper's W block and the columns on T as its Q block.
    full_weights = rademacher_weights(rows, n, group, rng)
    interior_weights = full_weights.copy()
    interior_weights[:, roots] = 0.0
    q_block = full_weights[:, extras]

    accumulator = ForestAccumulator(
        graph, roots, weights=interior_weights, tracked_roots=extras, seed=rng
    )
    diagnostics = run_adaptive_sampling(accumulator, config)

    projected = accumulator.projected_estimates()
    diagonal = accumulator.diag_estimates()
    fractions = accumulator.root_fractions()  # (n, |T|), zero rows on roots

    schur = _sampled_schur_complement(graph, group, extras, fractions)
    inv_schur = _robust_inverse(schur)

    # (w, |T|) combination (W F + Q) used by both the U and T columns.
    combined = interior_weights @ fractions + q_block

    gains: Dict[int, float] = {}
    extras_index = {t: i for i, t in enumerate(extras)}
    for u in range(n):
        if u in group:
            continue
        floor = 1.0 / max(graph.degrees[u], 1)
        if u in extras_index:
            idx = extras_index[u]
            column = combined @ inv_schur[:, idx]
            denominator = max(float(inv_schur[idx, idx]), floor)
        else:
            f_row = fractions[u]
            correction = inv_schur @ f_row
            column = projected[:, u] + combined @ correction
            denominator = max(float(diagonal[u]) + float(f_row @ correction), floor)
        gains[u] = float(column @ column) / denominator
    return gains, diagnostics


def _sampled_schur_complement(graph: Graph, group: Sequence[int],
                              extras: Sequence[int],
                              fractions: np.ndarray) -> np.ndarray:
    """Assemble the sampled ``S_T(L_{-S})`` from rooted probabilities (Eq. 15)."""
    grounded = set(int(v) for v in group)
    extras = list(extras)
    index = {t: i for i, t in enumerate(extras)}
    size = len(extras)
    schur = np.zeros((size, size))
    for t in extras:
        i = index[t]
        schur[i, i] = graph.degrees[t]
    for i, t_i in enumerate(extras):
        for t_j in graph.neighbors(t_i):
            t_j = int(t_j)
            if t_j in index and index[t_j] > i:
                schur[i, index[t_j]] -= 1.0
                schur[index[t_j], i] -= 1.0
    # Subtract, per column t_j, the rooted probabilities of the interior
    # neighbours of t_i: (L_TU F)_{ij} = -sum_{(u, t_i) in E, u in U} F[u, j].
    for t_i in extras:
        i = index[t_i]
        for u in graph.neighbors(t_i):
            u = int(u)
            if u in index or u in grounded:
                continue
            schur[i, :] -= fractions[u]
    return schur


def _robust_inverse(matrix: np.ndarray, ridge: float = 1e-10) -> np.ndarray:
    """Inverse with a tiny ridge fallback for near-singular sampled matrices."""
    matrix = np.asarray(matrix, dtype=np.float64)
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError:
        size = matrix.shape[0]
        return np.linalg.inv(matrix + ridge * np.eye(size))
