"""ApproxGreedy — the state-of-the-art baseline of Li et al. (WWW 2019).

ApproxGreedy runs the same greedy loop as the exact algorithm but estimates
the required diagonals with Johnson–Lindenstrauss projections whose image is
computed by solving Laplacian linear systems:

* ``(inv(L_{-S})^2)_uu = ||inv(L_{-S}) e_u||^2 ≈ ||Q inv(L_{-S}) e_u||^2``
  where each row of ``Q inv(L_{-S})`` is one linear solve;
* ``(inv(L_{-S}))_uu = ||C inv(L_{-S}) e_u||^2`` with the incidence-style
  factor ``C^T C = L_{-S}``, again JL-compressed into a handful of solves;
* the first pick uses the Lemma 3.5 grounded reformulation of ``L†_uu`` so
  that only grounded (non-singular) systems are ever solved.

The Julia approximate-Cholesky solver of the original implementation is
substituted by the sparse LU / preconditioned CG substrate in
:mod:`repro.linalg.solvers` (see DESIGN.md): the baseline keeps its defining
characteristic — per-iteration cost proportional to solving
``O(eps^-2 log n)`` Laplacian systems of size ``m`` — which is exactly the
behaviour the paper's efficiency comparison exercises.
"""

from __future__ import annotations

from repro.utils.timer import clock
from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.centrality.result import CFCMResult
from repro.linalg.incidence import grounded_incidence_factor
from repro.linalg.jl import jl_dimension
from repro.linalg.laplacian import grounded_laplacian
from repro.linalg.solvers import LaplacianSolver, SolverMethod
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_integer


class ApproxGreedy:
    """JL + Laplacian-solver greedy baseline.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    eps:
        Error parameter controlling the number of JL rows (and hence solves).
    seed:
        Seed or generator for the random projections.
    solver_method:
        Which Laplacian solver backend to use for the linear systems
        (``auto`` picks dense Cholesky for small graphs, sparse LU otherwise).
    jl_constant / max_jl_dimension:
        Practical-scale JL sizing, mirroring :class:`SamplingConfig`.
    """

    method_name = "approx"

    def __init__(self, graph: Graph, eps: float = 0.2, seed: RandomState = None,
                 solver_method: SolverMethod | str = SolverMethod.AUTO,
                 jl_constant: float = 1.0, max_jl_dimension: int = 96):
        require_connected(graph)
        self.graph = graph
        self.eps = float(eps)
        self.rng = as_rng(seed)
        self.solver_method = solver_method
        self.jl_rows = jl_dimension(graph.n, eps, constant=jl_constant,
                                    maximum=max_jl_dimension)

    # ----------------------------------------------------------------- greedy
    def run(self, k: int) -> CFCMResult:
        """Select ``k`` nodes greedily with solver-based estimated gains."""
        check_integer("k", k, minimum=1, maximum=self.graph.n - 1)
        start = clock()
        iteration_log: List[Dict[str, object]] = []

        first, first_scores = self._first_pick()
        group = [first]
        iteration_log.append({
            "iteration": 0,
            "node": first,
            "score": float(first_scores[first]),
            "solves": self.jl_rows + 1,
        })

        for iteration in range(1, k):
            gains = self._estimate_gains(group)
            node = max(gains, key=gains.get)
            group.append(int(node))
            iteration_log.append({
                "iteration": iteration,
                "node": int(node),
                "gain": float(gains[node]),
                "solves": 2 * self.jl_rows,
            })

        runtime = clock() - start
        return CFCMResult(
            method=self.method_name,
            group=group,
            runtime_seconds=runtime,
            parameters={"eps": self.eps, "jl_rows": self.jl_rows},
            iteration_log=iteration_log,
        )

    # -------------------------------------------------------------- internals
    def _signs(self, rows: int, cols: int) -> np.ndarray:
        scale = 1.0 / np.sqrt(rows)
        return np.where(self.rng.random((rows, cols)) < 0.5, -scale, scale)

    def _first_pick(self) -> tuple:
        """First pick via Lemma 3.5 with the max-degree node grounded."""
        graph = self.graph
        n = graph.n
        anchor = int(np.argmax(graph.degrees))
        matrix, kept = grounded_laplacian(graph, [anchor])
        solver = LaplacianSolver(matrix, method=self.solver_method)

        # Column sums 1^T inv(L_{-s}) via a single solve.
        column_sums = solver.solve(np.ones(n - 1))
        # diag(inv(L_{-s})) via the incidence factor and JL compression.
        factor, _ = grounded_incidence_factor(graph, [anchor])
        projection = self._signs(self.jl_rows, factor.shape[0])
        projected_rows = (projection @ factor).T  # (n-1, w)
        solved = solver.solve_many(projected_rows)  # (n-1, w)
        diag_estimate = np.sum(solved * solved, axis=1)

        scores = np.zeros(n)
        scores[kept] = diag_estimate - (2.0 / n) * column_sums
        scores[anchor] = 0.0
        return int(np.argmin(scores)), scores

    def _estimate_gains(self, group: List[int]) -> Dict[int, float]:
        graph = self.graph
        matrix, kept = grounded_laplacian(graph, group)
        solver = LaplacianSolver(matrix, method=self.solver_method)
        size = kept.size

        # Numerator: ||inv(L_{-S}) e_u||^2 ~ ||Q inv(L_{-S}) e_u||^2.
        q_rows = self._signs(self.jl_rows, size)
        numerator_image = solver.solve_many(q_rows.T)  # (size, w)
        numerators = np.sum(numerator_image * numerator_image, axis=1)

        # Denominator: ||C inv(L_{-S}) e_u||^2 with C^T C = L_{-S}.
        factor, _ = grounded_incidence_factor(graph, group)
        projection = self._signs(self.jl_rows, factor.shape[0])
        denominator_image = solver.solve_many((projection @ factor).T)
        denominators = np.sum(denominator_image * denominator_image, axis=1)

        degrees = graph.degrees[kept]
        floors = 1.0 / np.maximum(degrees, 1)
        denominators = np.maximum(denominators, floors)
        gains = numerators / denominators
        return {int(kept[i]): float(gains[i]) for i in range(size)}
