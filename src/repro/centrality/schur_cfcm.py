"""SchurCFCM (Algorithm 5) and SchurDelta (Algorithm 4).

SchurCFCM improves on ForestCFCM by sampling forests rooted at the enlarged
set ``S ∪ T`` where ``T`` contains the highest-degree nodes:

* random walks are absorbed much faster, so Wilson's algorithm is cheaper
  (Lemma 3.7 with the larger root set);
* ``inv(L_{-S ∪ T})`` is more diagonally dominant, so the per-sample variance
  of the estimators drops.

The quantities referring to the original root set ``S`` are recovered through
the Eq. (11) block representation of ``inv(L_{-S})`` using the sampled
rooted-probability matrix ``F`` (Lemma 4.2) and the sampled Schur complement
``S_T(L_{-S})`` (Eq. 15, Lemma 4.3).  The approximation factor of Theorem 4.7
matches ForestCFCM's.
"""

from __future__ import annotations

from repro.utils.timer import clock
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.centrality.estimators import (
    SamplingConfig,
    estimate_first_pick,
    estimate_schur_delta,
)
from repro.centrality.result import CFCMResult
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_integer


def choose_extra_roots(graph: Graph, size: Optional[int] = None,
                       max_size: int = 256) -> List[int]:
    """Select the additional root set ``T`` of SchurCFCM.

    The paper repeatedly takes the highest-degree node of the remaining graph
    and sizes the set as ``|T*| = argmin_{|T|} { |T| - dmax(T) }``, balancing
    the cubic cost of inverting the Schur complement against the degree bound
    entering the sampling complexity.  Passing ``size`` overrides the
    automatic choice.
    """
    if size is not None:
        check_integer("size", size, minimum=1, maximum=graph.n - 1)
        order = np.argsort(-graph.degrees, kind="stable")
        return [int(v) for v in order[:size]]
    from repro.graph.properties import extra_root_size

    best = extra_root_size(graph, max_size=max_size)
    order = np.argsort(-graph.degrees, kind="stable")
    return [int(v) for v in order[:best]]


def schur_delta(graph: Graph, group: Sequence[int], extra_roots: Sequence[int],
                eps: float = 0.2, seed: RandomState = None,
                config: Optional[SamplingConfig] = None) -> Dict[int, float]:
    """SchurDelta: sampled marginal gains using the auxiliary root set ``T``."""
    require_connected(graph)
    if not group:
        raise InvalidParameterError("SchurDelta requires a non-empty group S")
    config = config or SamplingConfig(eps=eps)
    gains, _ = estimate_schur_delta(graph, group, extra_roots, config, seed=seed)
    return gains


class SchurCFCM:
    """Greedy CFCM solver based on forest sampling plus the Schur complement.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    eps:
        Error parameter in ``(0, 1)``.
    extra_roots:
        Explicit auxiliary root set ``T``; by default the highest-degree
        nodes, sized by ``argmin(|T| - dmax(T))`` as in the paper.
    seed, config:
        Randomness and full sampling configuration.

    Examples
    --------
    >>> from repro.graph import generators
    >>> graph = generators.barabasi_albert(200, 2, seed=1)
    >>> result = SchurCFCM(graph, eps=0.3, seed=0).run(k=3)
    >>> len(result.group)
    3
    """

    method_name = "schur"

    def __init__(self, graph: Graph, eps: float = 0.2,
                 extra_roots: Optional[Sequence[int]] = None,
                 seed: RandomState = None,
                 config: Optional[SamplingConfig] = None,
                 max_extra_roots: int = 64):
        require_connected(graph)
        self.graph = graph
        self.config = config or SamplingConfig(eps=eps)
        self.rng = as_rng(seed)
        if extra_roots is None:
            extra_roots = choose_extra_roots(graph, max_size=max_extra_roots)
        self.extra_roots = sorted(set(int(t) for t in extra_roots))
        if not self.extra_roots:
            raise InvalidParameterError("extra root set T must be non-empty")

    # ----------------------------------------------------------------- greedy
    def run(self, k: int) -> CFCMResult:
        """Select a group of ``k`` nodes maximising (approximately) CFCC."""
        check_integer("k", k, minimum=1, maximum=self.graph.n - 1)
        start = clock()
        iteration_log = []

        first, scores, diagnostics = estimate_first_pick(
            self.graph, self.config, seed=self.rng
        )
        group = [first]
        iteration_log.append({
            "iteration": 0,
            "node": first,
            "score": float(scores[first]),
            "samples": int(diagnostics["samples"]),
            "stopped_early": bool(diagnostics["stopped_early"]),
        })

        for iteration in range(1, k):
            node, gain, diag = self._next_node(group)
            group.append(node)
            iteration_log.append({
                "iteration": iteration,
                "node": node,
                "gain": gain,
                "samples": int(diag["samples"]),
                "stopped_early": bool(diag["stopped_early"]),
            })

        runtime = clock() - start
        return CFCMResult(
            method=self.method_name,
            group=group,
            runtime_seconds=runtime,
            parameters={
                "eps": self.config.eps,
                "max_samples": self.config.max_samples,
                "jl_rows": self.config.jl_rows(self.graph.n),
                "extra_roots": list(self.extra_roots),
            },
            iteration_log=iteration_log,
        )

    # -------------------------------------------------------------- internals
    def _next_node(self, group: Sequence[int]) -> Tuple[int, float, Dict[str, float]]:
        usable_extras = [t for t in self.extra_roots if t not in set(group)]
        gains, diagnostics = estimate_schur_delta(
            self.graph, group, usable_extras, self.config, seed=self.rng
        )
        node = max(gains, key=gains.get)
        return int(node), float(gains[node]), diagnostics
