"""Exact marginal gains of the greedy objective.

The greedy algorithms minimise ``Tr(inv(L_{-S}))``.  For the first pick the
objective per node is Eq. (4):

``Σ_v R(u, v) = Tr(L†) + n L†_uu``

and for subsequent picks the marginal gain of adding ``u`` to ``S`` is Eq. (5):

``Δ(u, S) = Tr(inv(L_{-S})) - Tr(inv(L_{-S-u})) = (inv(L_{-S})^2)_uu / (inv(L_{-S}))_uu``.

These exact values are the ground truth against which the sampled estimators
of ForestDelta / SchurDelta are tested.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.linalg.laplacian import grounded_laplacian_dense
from repro.linalg.pseudoinverse import laplacian_pseudoinverse
from repro.utils.validation import check_group, check_node


def first_pick_objective(graph: Graph) -> np.ndarray:
    """Eq. (4) per node: ``Tr(L†) + n L†_uu`` (smaller is better)."""
    require_connected(graph)
    pinv = laplacian_pseudoinverse(graph)
    return float(np.trace(pinv)) + graph.n * np.diag(pinv)


def marginal_gain(graph: Graph, node: int, group: Sequence[int]) -> float:
    """Exact ``Δ(u, S)`` for one candidate node ``u ∉ S`` (Eq. 5)."""
    require_connected(graph)
    group = check_group(group, graph.n)
    check_node(node, graph.n)
    if node in group:
        raise ValueError(f"candidate node {node} already belongs to the group")
    matrix, kept = grounded_laplacian_dense(graph, group)
    inverse = np.linalg.inv(matrix)
    local = int(np.flatnonzero(kept == node)[0])
    numerator = float(inverse[local] @ inverse[:, local])
    denominator = float(inverse[local, local])
    return numerator / denominator


def marginal_gains_all(graph: Graph, group: Sequence[int]) -> Dict[int, float]:
    """Exact ``Δ(u, S)`` for every candidate ``u ∈ V \\ S`` with one inversion."""
    require_connected(graph)
    group = check_group(group, graph.n)
    matrix, kept = grounded_laplacian_dense(graph, group)
    inverse = np.linalg.inv(matrix)
    squared_diag = np.sum(inverse * inverse, axis=0)
    diag = np.diag(inverse)
    return {int(kept[i]): float(squared_diag[i] / diag[i]) for i in range(kept.size)}


def trace_drop(graph: Graph, node: int, group: Sequence[int]) -> float:
    """Direct evaluation of ``Tr(inv(L_{-S})) - Tr(inv(L_{-S-u}))``.

    Cross-check used by tests: must match :func:`marginal_gain` up to
    numerical error, validating Eq. (5).
    """
    from repro.centrality.cfcc import grounded_trace

    before = grounded_trace(graph, group)
    after = grounded_trace(graph, sorted(set(group) | {int(node)}))
    return before - after
