"""Evaluation metrics for comparing CFCM solutions and algorithms.

The experiment harness and the ablation studies need a consistent vocabulary
for "how good is this group / this method":

* :func:`relative_difference` — the Fig. 5 metric, the relative CFCC gap to a
  reference solution (usually the exact greedy);
* :func:`approximation_ratio` — the ratio to the brute-force optimum, i.e.
  the empirical counterpart of the paper's `1 - (k/(k-1))/e - eps` guarantee;
* :func:`group_overlap` — Jaccard overlap between two selected groups;
* :func:`ranking_agreement` — Kendall-tau-style agreement between two
  marginal-gain rankings, used to compare the sampled oracles (ForestDelta /
  SchurDelta) against the exact gains;
* :func:`effectiveness_curve` — CFCC along the greedy prefixes of a result,
  the quantity plotted in Fig. 2/3.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.centrality.cfcc import group_cfcc
from repro.centrality.result import CFCMResult


def relative_difference(reference_value: float, value: float) -> float:
    """``(reference - value) / reference`` clipped below at zero.

    Zero means the solution matches (or beats) the reference; this is the
    quantity on the y-axis of Fig. 5.
    """
    if reference_value <= 0:
        raise InvalidParameterError("reference value must be positive")
    return max(0.0, (reference_value - value) / reference_value)


def approximation_ratio(optimal_value: float, value: float) -> float:
    """``value / optimal`` — 1.0 means the solution is optimal."""
    if optimal_value <= 0:
        raise InvalidParameterError("optimal value must be positive")
    return value / optimal_value


def group_overlap(first: Sequence[int], second: Sequence[int]) -> float:
    """Jaccard overlap of two node groups (1.0 = identical)."""
    a, b = set(first), set(second)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def ranking_agreement(reference: Mapping[int, float],
                      estimate: Mapping[int, float]) -> float:
    """Kendall-tau-b agreement between two score dictionaries.

    Only keys present in both mappings are compared.  Returns a value in
    ``[-1, 1]``; 1 means the estimated gains order the candidates exactly as
    the exact gains do, which is all a greedy selection needs.
    """
    common = sorted(set(reference) & set(estimate))
    if len(common) < 2:
        raise InvalidParameterError("need at least two common candidates to compare")
    ref = np.asarray([reference[key] for key in common])
    est = np.asarray([estimate[key] for key in common])
    from scipy.stats import kendalltau

    value, _ = kendalltau(ref, est)
    return float(value)


def top_candidate_recall(reference: Mapping[int, float],
                         estimate: Mapping[int, float], top: int = 5) -> float:
    """Fraction of the reference's top-``top`` candidates kept in the estimate's top-``top``."""
    if top <= 0:
        raise InvalidParameterError("top must be positive")
    ref_top = set(sorted(reference, key=reference.get, reverse=True)[:top])
    est_top = set(sorted(estimate, key=estimate.get, reverse=True)[:top])
    return len(ref_top & est_top) / len(ref_top)


def effectiveness_curve(graph: Graph, result: CFCMResult,
                        k_values: Sequence[int] | None = None) -> Dict[int, float]:
    """Exact CFCC of every greedy prefix of ``result`` (the Fig. 2/3 curves)."""
    if k_values is None:
        k_values = range(1, result.k + 1)
    curve: Dict[int, float] = {}
    for k in k_values:
        curve[int(k)] = group_cfcc(graph, result.prefix(int(k)))
    return curve


def compare_methods(graph: Graph, results: Mapping[str, CFCMResult],
                    reference: str = "exact") -> Dict[str, Dict[str, float]]:
    """Summary table comparing several results against a reference method.

    Returns, per method, the exact CFCC of its group, the relative difference
    to the reference, the group overlap with the reference and the runtime.
    """
    if reference not in results:
        raise InvalidParameterError(
            f"reference method {reference!r} missing from results {sorted(results)}"
        )
    reference_value = group_cfcc(graph, results[reference].group)
    summary: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        value = group_cfcc(graph, result.group)
        summary[name] = {
            "cfcc": value,
            "relative_difference": relative_difference(reference_value, value),
            "overlap_with_reference": group_overlap(result.group,
                                                    results[reference].group),
            "runtime_seconds": result.runtime_seconds,
        }
    return summary
