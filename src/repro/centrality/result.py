"""Result container shared by all CFCM algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import NotComputedError


@dataclass
class CFCMResult:
    """Outcome of one CFCM maximisation run.

    Attributes
    ----------
    method:
        Name of the algorithm (``"exact"``, ``"approx"``, ``"forest"``,
        ``"schur"``, ``"degree"``, ``"top-cfcc"``, ``"optimum"``).
    group:
        Selected nodes in the order they were added.
    runtime_seconds:
        Wall-clock time of the selection.
    parameters:
        Algorithm parameters (``eps``, seeds, sample caps, ...).
    iteration_log:
        One entry per greedy iteration with diagnostic data (chosen node,
        estimated gain, samples used, ...).
    cfcc:
        Exact or estimated CFCC of the final group when the caller asked the
        algorithm to evaluate it; ``None`` otherwise.
    """

    method: str
    group: List[int]
    runtime_seconds: float = 0.0
    parameters: Dict[str, object] = field(default_factory=dict)
    iteration_log: List[Dict[str, object]] = field(default_factory=list)
    cfcc: Optional[float] = None

    @property
    def k(self) -> int:
        """Number of selected nodes."""
        return len(self.group)

    def as_set(self) -> set:
        """Selected nodes as a set."""
        return set(self.group)

    def prefix(self, size: int) -> Sequence[int]:
        """First ``size`` selected nodes (greedy prefix)."""
        if size < 0 or size > len(self.group):
            raise NotComputedError(
                f"prefix of size {size} unavailable; only {len(self.group)} nodes selected"
            )
        return list(self.group[:size])

    def samples_used(self) -> int:
        """Total number of sampled forests recorded in the iteration log."""
        return int(sum(int(entry.get("samples", 0)) for entry in self.iteration_log))

    def summary(self) -> Dict[str, object]:
        """Compact dictionary for experiment reporting."""
        return {
            "method": self.method,
            "k": self.k,
            "group": list(self.group),
            "runtime_seconds": self.runtime_seconds,
            "cfcc": self.cfcc,
            "samples": self.samples_used(),
        }
