"""High-level entry point: ``maximize_cfcc``.

Dispatches to the individual algorithms so that examples, experiments and
downstream users only need one call:

>>> from repro import maximize_cfcc
>>> from repro.graph import generators
>>> graph = generators.barabasi_albert(150, 2, seed=0)
>>> result = maximize_cfcc(graph, k=3, method="schur", eps=0.3, seed=1)
>>> result.k
3
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.centrality.approx_greedy import ApproxGreedy
from repro.centrality.cfcc import group_cfcc, group_cfcc_estimate
from repro.centrality.estimators import SamplingConfig
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM
from repro.centrality.heuristics import degree_group, top_cfcc_group
from repro.centrality.optimum import optimum_cfcm
from repro.centrality.result import CFCMResult
from repro.centrality.schur_cfcm import SchurCFCM
from repro.utils.rng import RandomState
from repro.utils.validation import check_integer

METHODS = ("schur", "forest", "approx", "exact", "degree", "top-cfcc", "optimum")

# Methods whose accuracy is governed by the error parameter eps.
_EPS_METHODS = ("schur", "forest", "approx")


def validate_cfcm_parameters(n: int, k: int, method: str, eps: float,
                             config: Optional[SamplingConfig]) -> int:
    """Validate the shared CFCM parameters; returns the normalised ``k``.

    Shared by :func:`maximize_cfcc` and :meth:`repro.dynamic.DynamicCFCM.query`
    so both entry points fail fast with the same messages (in particular
    *before* any cache key is derived from the raw arguments).
    """
    k = check_integer("k", k, minimum=1)
    if k >= n:
        raise InvalidParameterError(
            f"k={k} must satisfy 1 <= k < n={n}: the selected group has to be "
            "a strict subset of the nodes"
        )
    if method in _EPS_METHODS and config is None:
        eps = float(eps)
        if not 0.0 < eps < 1.0:
            raise InvalidParameterError(
                f"eps must lie in (0, 1) for method {method!r}, got {eps}"
            )
    return k


def maximize_cfcc(graph: Graph, k: int, method: str = "schur", eps: float = 0.2,
                  seed: RandomState = None,
                  config: Optional[SamplingConfig] = None,
                  extra_roots: Optional[Sequence[int]] = None,
                  evaluate: bool | str = False,
                  engine: Optional[object] = None) -> CFCMResult:
    """Approximately solve CFCM: pick ``k`` nodes maximising group CFCC.

    Parameters
    ----------
    graph:
        Connected undirected :class:`repro.Graph`.
    k:
        Group cardinality constraint (``k << n``).
    method:
        One of :data:`METHODS`:

        ``"schur"``
            SchurCFCM — forest sampling + Schur complement (recommended).
        ``"forest"``
            ForestCFCM — pure forest sampling.
        ``"approx"``
            ApproxGreedy — the JL + Laplacian-solver state-of-the-art baseline.
        ``"exact"``
            Exact greedy with dense marginal gains.
        ``"degree"`` / ``"top-cfcc"``
            Heuristic baselines.
        ``"optimum"``
            Brute force over all groups (tiny graphs only).
    eps:
        Error parameter for the randomised methods.
    seed:
        Seed or :class:`numpy.random.Generator`.
    config:
        Full :class:`SamplingConfig` for the sampling methods (overrides
        ``eps``).
    extra_roots:
        Explicit auxiliary root set ``T`` for SchurCFCM.
    evaluate:
        ``False`` (default) leaves ``result.cfcc`` empty; ``True`` or
        ``"exact"`` fills it with the exact CFCC of the selected group;
        ``"estimate"`` uses the sparse-solver estimate (large graphs).
    engine:
        Optional :class:`repro.dynamic.DynamicCFCM`.  When given, the call is
        routed through the engine's version-aware cache (repeat queries on an
        unchanged graph are O(1) hits) instead of running a batch algorithm
        directly; ``graph`` must then be the engine's dynamic graph (or
        ``None``), and ``seed`` / ``config`` / ``extra_roots`` must be unset —
        the engine owns those.

    Returns
    -------
    :class:`CFCMResult`
    """
    method = str(method).lower()
    if method not in METHODS:
        raise InvalidParameterError(
            f"unknown method {method!r}; valid methods: {METHODS}"
        )

    if graph is None and engine is None:
        raise InvalidParameterError(
            "graph is required (it may only be None when engine= is given)"
        )
    n = engine.graph.n if (engine is not None and graph is None) else graph.n
    k = validate_cfcm_parameters(n, k, method, eps, config)

    if engine is not None:
        if seed is not None or config is not None or extra_roots is not None:
            raise InvalidParameterError(
                "seed/config/extra_roots cannot be combined with engine=: the "
                "engine owns its random stream and sampling configuration "
                "(set them on the DynamicCFCM constructor)"
            )
        if graph is not None and graph is not engine.graph \
                and graph is not engine.graph.snapshot():
            raise InvalidParameterError(
                "graph does not match engine.graph; pass the engine's dynamic "
                "graph (or None) when routing through engine="
            )
        return engine.query(k, method=method, eps=eps, evaluate=evaluate)

    # A DynamicGraph (or anything snapshot-able) is frozen to an immutable
    # CSR graph so the batch algorithms below run unmodified.  The snapshot
    # only carries the topology, so a weighted dynamic graph must be refused
    # here or every method below would silently optimise the wrong objective.
    if not isinstance(graph, Graph) and hasattr(graph, "snapshot"):
        if not getattr(graph, "is_unit_weighted", True):
            raise InvalidParameterError(
                "CFCM selection assumes unit edge weights; reset weights to 1 "
                "(weighted graphs are supported for evaluation via "
                "DynamicCFCM.evaluate_exact only)"
            )
        graph = graph.snapshot()

    if method == "schur":
        result = SchurCFCM(graph, eps=eps, seed=seed, config=config,
                           extra_roots=extra_roots).run(k)
    elif method == "forest":
        result = ForestCFCM(graph, eps=eps, seed=seed, config=config).run(k)
    elif method == "approx":
        result = ApproxGreedy(graph, eps=eps, seed=seed).run(k)
    elif method == "exact":
        result = ExactGreedy(graph).run(k)
    elif method == "degree":
        result = degree_group(graph, k)
    elif method == "top-cfcc":
        result = top_cfcc_group(graph, k)
    else:  # optimum
        result = optimum_cfcm(graph, k)

    if evaluate and result.cfcc is None:
        if evaluate == "estimate":
            result.cfcc = group_cfcc_estimate(graph, result.group)
        else:
            result.cfcc = group_cfcc(graph, result.group)
    return result
