"""High-level entry point: ``maximize_cfcc``.

Dispatches to the individual algorithms so that examples, experiments and
downstream users only need one call:

>>> from repro import maximize_cfcc
>>> from repro.graph import generators
>>> graph = generators.barabasi_albert(150, 2, seed=0)
>>> result = maximize_cfcc(graph, k=3, method="schur", eps=0.3, seed=1)
>>> result.k
3
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.centrality.approx_greedy import ApproxGreedy
from repro.centrality.cfcc import group_cfcc, group_cfcc_estimate
from repro.centrality.estimators import SamplingConfig
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.forest_cfcm import ForestCFCM
from repro.centrality.heuristics import degree_group, top_cfcc_group
from repro.centrality.optimum import optimum_cfcm
from repro.centrality.result import CFCMResult
from repro.centrality.schur_cfcm import SchurCFCM
from repro.utils.rng import RandomState

METHODS = ("schur", "forest", "approx", "exact", "degree", "top-cfcc", "optimum")


def maximize_cfcc(graph: Graph, k: int, method: str = "schur", eps: float = 0.2,
                  seed: RandomState = None,
                  config: Optional[SamplingConfig] = None,
                  extra_roots: Optional[Sequence[int]] = None,
                  evaluate: bool | str = False) -> CFCMResult:
    """Approximately solve CFCM: pick ``k`` nodes maximising group CFCC.

    Parameters
    ----------
    graph:
        Connected undirected :class:`repro.Graph`.
    k:
        Group cardinality constraint (``k << n``).
    method:
        One of :data:`METHODS`:

        ``"schur"``
            SchurCFCM — forest sampling + Schur complement (recommended).
        ``"forest"``
            ForestCFCM — pure forest sampling.
        ``"approx"``
            ApproxGreedy — the JL + Laplacian-solver state-of-the-art baseline.
        ``"exact"``
            Exact greedy with dense marginal gains.
        ``"degree"`` / ``"top-cfcc"``
            Heuristic baselines.
        ``"optimum"``
            Brute force over all groups (tiny graphs only).
    eps:
        Error parameter for the randomised methods.
    seed:
        Seed or :class:`numpy.random.Generator`.
    config:
        Full :class:`SamplingConfig` for the sampling methods (overrides
        ``eps``).
    extra_roots:
        Explicit auxiliary root set ``T`` for SchurCFCM.
    evaluate:
        ``False`` (default) leaves ``result.cfcc`` empty; ``True`` or
        ``"exact"`` fills it with the exact CFCC of the selected group;
        ``"estimate"`` uses the sparse-solver estimate (large graphs).

    Returns
    -------
    :class:`CFCMResult`
    """
    method = str(method).lower()
    if method not in METHODS:
        raise InvalidParameterError(
            f"unknown method {method!r}; valid methods: {METHODS}"
        )

    if method == "schur":
        result = SchurCFCM(graph, eps=eps, seed=seed, config=config,
                           extra_roots=extra_roots).run(k)
    elif method == "forest":
        result = ForestCFCM(graph, eps=eps, seed=seed, config=config).run(k)
    elif method == "approx":
        result = ApproxGreedy(graph, eps=eps, seed=seed).run(k)
    elif method == "exact":
        result = ExactGreedy(graph).run(k)
    elif method == "degree":
        result = degree_group(graph, k)
    elif method == "top-cfcc":
        result = top_cfcc_group(graph, k)
    else:  # optimum
        result = optimum_cfcm(graph, k)

    if evaluate and result.cfcc is None:
        if evaluate == "estimate":
            result.cfcc = group_cfcc_estimate(graph, result.group)
        else:
            result.cfcc = group_cfcc(graph, result.group)
    return result
