"""Brute-force optimum for tiny graphs (the reference curve of Fig. 1).

CFCM is NP-hard, so the optimum is obtained by exhaustively evaluating
``C(S)`` over all ``n choose k`` groups.  Only intended for graphs with a few
dozen nodes; the effort is bounded explicitly to protect callers.
"""

from __future__ import annotations

import itertools
import math
from repro.utils.timer import clock
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.centrality.result import CFCMResult
from repro.linalg.laplacian import laplacian_dense
from repro.utils.validation import check_integer


def optimum_cfcm(graph: Graph, k: int, max_candidates: int = 2_000_000) -> CFCMResult:
    """Exhaustive CFCM optimum.

    Parameters
    ----------
    graph:
        Connected graph, small enough that ``n choose k`` stays below
        ``max_candidates``.
    k:
        Group size.
    max_candidates:
        Safety cap on the number of evaluated groups.

    Returns
    -------
    :class:`CFCMResult` whose ``cfcc`` field holds the optimal value.
    """
    require_connected(graph)
    check_integer("k", k, minimum=1, maximum=graph.n - 1)
    candidates = math.comb(graph.n, k)
    if candidates > max_candidates:
        raise InvalidParameterError(
            f"brute force would evaluate {candidates} groups "
            f"(> max_candidates={max_candidates}); use a greedy algorithm instead"
        )
    start = clock()
    laplacian = laplacian_dense(graph)
    best_group: Tuple[int, ...] | None = None
    best_trace = math.inf
    nodes = range(graph.n)
    for group in itertools.combinations(nodes, k):
        trace = _grounded_trace(laplacian, group)
        if trace < best_trace:
            best_trace = trace
            best_group = group
    assert best_group is not None
    return CFCMResult(
        method="optimum",
        group=list(best_group),
        runtime_seconds=clock() - start,
        cfcc=graph.n / best_trace,
        parameters={"candidates": candidates},
    )


def _grounded_trace(laplacian: np.ndarray, group: Sequence[int]) -> float:
    keep = np.ones(laplacian.shape[0], dtype=bool)
    keep[list(group)] = False
    reduced = laplacian[np.ix_(keep, keep)]
    return float(np.trace(np.linalg.inv(reduced)))
