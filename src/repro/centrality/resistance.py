"""Resistance distance between nodes and between a node and a grounded group.

Definitions (Section II-D of the paper):

* ``R(i, j) = L†_ii + L†_jj - 2 L†_ij`` — pairwise effective resistance;
* ``R(u, S) = (inv(L_{-S}))_uu`` — resistance between ``u`` and the grounded
  node group ``S`` (all nodes of ``S`` held at potential zero).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.linalg.laplacian import grounded_laplacian_dense
from repro.linalg.pseudoinverse import laplacian_pseudoinverse
from repro.utils.validation import check_group, check_node


def resistance_distance(graph: Graph, u: int, v: int) -> float:
    """Effective resistance ``R(u, v)`` between two nodes."""
    require_connected(graph)
    check_node(u, graph.n)
    check_node(v, graph.n)
    if u == v:
        return 0.0
    pinv = laplacian_pseudoinverse(graph)
    return float(pinv[u, u] + pinv[v, v] - 2.0 * pinv[u, v])


def resistance_to_group(graph: Graph, u: int, group: Sequence[int]) -> float:
    """Effective resistance ``R(u, S)`` between node ``u`` and grounded group ``S``."""
    require_connected(graph)
    group = check_group(group, graph.n)
    check_node(u, graph.n)
    if u in group:
        return 0.0
    matrix, kept = grounded_laplacian_dense(graph, group)
    inverse = np.linalg.inv(matrix)
    local = int(np.flatnonzero(kept == u)[0])
    return float(inverse[local, local])


def total_group_resistance(graph: Graph, group: Sequence[int]) -> float:
    """``Σ_{u ∈ V} R(u, S) = Tr(inv(L_{-S}))`` — the reciprocal objective of CFCM."""
    require_connected(graph)
    group = check_group(group, graph.n)
    matrix, _ = grounded_laplacian_dense(graph, group)
    return float(np.trace(np.linalg.inv(matrix)))


def resistance_matrix(graph: Graph) -> np.ndarray:
    """Dense matrix of pairwise effective resistances."""
    require_connected(graph)
    pinv = laplacian_pseudoinverse(graph)
    diag = np.diag(pinv)
    return diag[:, None] + diag[None, :] - 2.0 * pinv
