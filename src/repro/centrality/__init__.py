"""Current-flow closeness centrality: exact quantities, baselines and the paper's algorithms."""

from repro.centrality.cfcc import (
    group_cfcc,
    group_cfcc_estimate,
    grounded_trace,
    single_cfcc,
    single_cfcc_all,
)
from repro.centrality.resistance import (
    resistance_distance,
    resistance_to_group,
    total_group_resistance,
)
from repro.centrality.marginal import (
    first_pick_objective,
    marginal_gain,
    marginal_gains_all,
)
from repro.centrality.result import CFCMResult
from repro.centrality.exact_greedy import ExactGreedy
from repro.centrality.approx_greedy import ApproxGreedy
from repro.centrality.forest_cfcm import ForestCFCM, forest_delta
from repro.centrality.schur_cfcm import SchurCFCM, schur_delta, choose_extra_roots
from repro.centrality.heuristics import degree_group, top_cfcc_group
from repro.centrality.optimum import optimum_cfcm
from repro.centrality.api import maximize_cfcc, METHODS
from repro.centrality.evaluation import (
    approximation_ratio,
    compare_methods,
    effectiveness_curve,
    group_overlap,
    ranking_agreement,
    relative_difference,
)

__all__ = [
    "group_cfcc",
    "group_cfcc_estimate",
    "grounded_trace",
    "single_cfcc",
    "single_cfcc_all",
    "resistance_distance",
    "resistance_to_group",
    "total_group_resistance",
    "first_pick_objective",
    "marginal_gain",
    "marginal_gains_all",
    "CFCMResult",
    "ExactGreedy",
    "ApproxGreedy",
    "ForestCFCM",
    "forest_delta",
    "SchurCFCM",
    "schur_delta",
    "choose_extra_roots",
    "degree_group",
    "top_cfcc_group",
    "optimum_cfcm",
    "maximize_cfcc",
    "METHODS",
    "approximation_ratio",
    "compare_methods",
    "effectiveness_curve",
    "group_overlap",
    "ranking_agreement",
    "relative_difference",
]
