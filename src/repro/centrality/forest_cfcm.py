"""ForestCFCM (Algorithm 3) and ForestDelta (Algorithm 2).

The greedy loop:

1. *First pick* — sample forests rooted at the maximum-degree node ``s`` and
   select the node minimising the Lemma 3.5 reformulation of ``L†_uu``.
2. *Subsequent picks* — call ForestDelta to estimate the marginal gain
   ``Δ(u, S) = (inv(L_{-S})^2)_uu / (inv(L_{-S}))_uu`` for every candidate and
   add the maximiser.

Both steps draw rooted spanning forests with Wilson's algorithm, use the
BFS-path current estimators of Lemma 3.3, JL projections (Lemma 3.4) for the
numerator and the empirical-Bernstein adaptive stopping rule (Lemma 3.6).
The algorithm achieves the ``1 - (k/(k-1))/e - eps`` approximation factor of
Theorem 3.11.
"""

from __future__ import annotations

from repro.utils.timer import clock
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.centrality.estimators import (
    SamplingConfig,
    estimate_first_pick,
    estimate_forest_delta,
)
from repro.centrality.result import CFCMResult
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_integer


def forest_delta(graph: Graph, group: Sequence[int], eps: float = 0.2,
                 seed: RandomState = None,
                 config: Optional[SamplingConfig] = None,
                 ) -> Dict[int, float]:
    """ForestDelta: sampled marginal gains ``Δ'(u, S)`` for all ``u ∉ S``.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    group:
        Current group ``S`` (non-empty).
    eps:
        Relative error target (ignored when an explicit ``config`` is given).
    seed:
        Seed or generator for forest sampling and JL projections.
    config:
        Full :class:`SamplingConfig`; overrides ``eps``.
    """
    require_connected(graph)
    if not group:
        raise InvalidParameterError("ForestDelta requires a non-empty group S")
    config = config or SamplingConfig(eps=eps)
    gains, _ = estimate_forest_delta(graph, group, config, seed=seed)
    return gains


class ForestCFCM:
    """Greedy CFCM solver based purely on spanning-forest sampling.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    eps:
        Error parameter in ``(0, 1)`` controlling JL dimension and the
        adaptive stopping rule.
    seed:
        Seed or generator for all randomness.
    config:
        Optional full :class:`SamplingConfig` (overrides ``eps``).

    Examples
    --------
    >>> from repro.graph import generators
    >>> graph = generators.barabasi_albert(200, 2, seed=1)
    >>> result = ForestCFCM(graph, eps=0.3, seed=0).run(k=3)
    >>> len(result.group)
    3
    """

    method_name = "forest"

    def __init__(self, graph: Graph, eps: float = 0.2, seed: RandomState = None,
                 config: Optional[SamplingConfig] = None):
        require_connected(graph)
        self.graph = graph
        self.config = config or SamplingConfig(eps=eps)
        self.rng = as_rng(seed)

    # ----------------------------------------------------------------- greedy
    def run(self, k: int) -> CFCMResult:
        """Select a group of ``k`` nodes maximising (approximately) CFCC."""
        check_integer("k", k, minimum=1, maximum=self.graph.n - 1)
        start = clock()
        iteration_log = []

        first, scores, diagnostics = estimate_first_pick(
            self.graph, self.config, seed=self.rng
        )
        group = [first]
        iteration_log.append({
            "iteration": 0,
            "node": first,
            "score": float(scores[first]),
            "samples": int(diagnostics["samples"]),
            "stopped_early": bool(diagnostics["stopped_early"]),
        })

        for iteration in range(1, k):
            node, gain, diag = self._next_node(group)
            group.append(node)
            iteration_log.append({
                "iteration": iteration,
                "node": node,
                "gain": gain,
                "samples": int(diag["samples"]),
                "stopped_early": bool(diag["stopped_early"]),
            })

        runtime = clock() - start
        return CFCMResult(
            method=self.method_name,
            group=group,
            runtime_seconds=runtime,
            parameters={
                "eps": self.config.eps,
                "max_samples": self.config.max_samples,
                "jl_rows": self.config.jl_rows(self.graph.n),
            },
            iteration_log=iteration_log,
        )

    # -------------------------------------------------------------- internals
    def _next_node(self, group: Sequence[int]) -> Tuple[int, float, Dict[str, float]]:
        gains, diagnostics = estimate_forest_delta(
            self.graph, group, self.config, seed=self.rng
        )
        node = max(gains, key=gains.get)
        return int(node), float(gains[node]), diagnostics
