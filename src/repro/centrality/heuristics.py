"""Heuristic baselines: Degree and Top-CFCC (Section V-A of the paper).

* ``Degree`` selects the ``k`` nodes with the largest degrees.
* ``Top-CFCC`` selects the ``k`` nodes with the largest single-node CFCC.

Both ignore interactions inside the group, which is precisely the effect the
paper's Fig. 2/3 use them to demonstrate.
"""

from __future__ import annotations

from repro.utils.timer import clock
from typing import List

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.centrality.cfcc import single_cfcc_all
from repro.centrality.result import CFCMResult
from repro.utils.validation import check_integer


def degree_group(graph: Graph, k: int) -> CFCMResult:
    """Top-``k`` nodes by degree (ties broken by node id)."""
    check_integer("k", k, minimum=1, maximum=graph.n - 1)
    start = clock()
    order = np.argsort(-graph.degrees, kind="stable")
    group: List[int] = [int(v) for v in order[:k]]
    return CFCMResult(
        method="degree",
        group=group,
        runtime_seconds=clock() - start,
    )


def top_cfcc_group(graph: Graph, k: int) -> CFCMResult:
    """Top-``k`` nodes by exact single-node CFCC (ties broken by node id)."""
    require_connected(graph)
    check_integer("k", k, minimum=1, maximum=graph.n - 1)
    start = clock()
    scores = single_cfcc_all(graph)
    order = np.argsort(-scores, kind="stable")
    group = [int(v) for v in order[:k]]
    return CFCMResult(
        method="top-cfcc",
        group=group,
        runtime_seconds=clock() - start,
    )
