"""Absorbing random-walk quantities related to grounded node groups.

The complexity analysis of the paper (Lemma 3.7 and the SchurCFCM rationale)
is phrased in terms of absorbing random walks: the expected number of steps a
walk takes before hitting the root set bounds the cost of Wilson's algorithm,
and the entrywise monotonicity of ``inv(L_{-S})`` explains why enlarging the
root set with hubs makes sampling cheaper.  These quantities are also what
make CFCC meaningful for applications (a group with high CFCC is quickly
reached by random-walk search, spike propagation, or diffusing load).

This module exposes them directly:

* :func:`hitting_times_to_group` — expected steps from every node until a
  walk is absorbed by the group ``S`` (``(I - P_{-S})^{-1} 1``);
* :func:`mean_group_hitting_time` — the average over start nodes, a natural
  "search cost" companion to ``C(S)``;
* :func:`expected_wilson_visits` — ``Tr((I - P_{-S})^{-1})``, the Lemma 3.7
  bound on the sampler's work;
* :func:`simulate_hitting_time` — Monte Carlo cross-check used in tests and
  by the P2P example.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.linalg.laplacian import grounded_transition_matrix
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_group


def _fundamental_matrix(graph: Graph, group: Sequence[int]) -> tuple:
    """Dense ``(I - P_{-S})^{-1}`` plus the kept-node index array."""
    submatrix, kept = grounded_transition_matrix(graph, group)
    dense = submatrix.toarray()
    fundamental = np.linalg.inv(np.eye(dense.shape[0]) - dense)
    return fundamental, kept


def hitting_times_to_group(graph: Graph, group: Sequence[int]) -> np.ndarray:
    """Expected absorption time into ``group`` from every node.

    Returns an ``(n,)`` vector; entries of group members are zero.  Uses the
    standard absorbing-chain identity ``t = (I - P_{-S})^{-1} 1``.
    """
    require_connected(graph)
    group = check_group(group, graph.n)
    fundamental, kept = _fundamental_matrix(graph, group)
    times = np.zeros(graph.n)
    times[kept] = fundamental @ np.ones(kept.size)
    return times


def mean_group_hitting_time(graph: Graph, group: Sequence[int]) -> float:
    """Average absorption time over all start nodes (group members count as 0)."""
    return float(hitting_times_to_group(graph, group).mean())


def expected_wilson_visits(graph: Graph, group: Sequence[int]) -> float:
    """``Tr((I - P_{-S})^{-1})`` — Lemma 3.7's bound on Wilson's algorithm cost."""
    require_connected(graph)
    group = check_group(group, graph.n)
    fundamental, _ = _fundamental_matrix(graph, group)
    return float(np.trace(fundamental))


def weighted_group_resistance_identity(graph: Graph, group: Sequence[int]) -> float:
    """Degree-weighted diagonal identity ``sum_u d_u (inv(L_{-S}))_uu``.

    Equals ``Tr((I - P_{-S})^{-1})`` because
    ``(I - P_{-S})^{-1} = D_{-S} inv(L_{-S})``; exposed separately so tests can
    validate the identity the SchurCFCM analysis relies on.
    """
    require_connected(graph)
    group = check_group(group, graph.n)
    from repro.linalg.laplacian import grounded_laplacian_dense

    dense, kept = grounded_laplacian_dense(graph, group)
    inverse = np.linalg.inv(dense)
    degrees = graph.degrees[kept].astype(np.float64)
    return float(np.sum(degrees * np.diag(inverse)))


def simulate_hitting_time(graph: Graph, group: Sequence[int], walks: int = 200,
                          seed: RandomState = None,
                          max_steps_factor: int = 50) -> float:
    """Monte Carlo estimate of the mean absorption time into ``group``.

    Starts each walk at a uniformly random node (group members contribute 0
    steps) and follows the simple random walk until a group node is reached.
    """
    require_connected(graph)
    group = set(check_group(group, graph.n))
    if walks <= 0:
        raise ValueError("walks must be positive")
    rng = as_rng(seed)
    indptr, adjacency, degrees = graph.adjacency_lists()
    cap = max_steps_factor * graph.n
    total = 0.0
    for _ in range(walks):
        node = int(rng.integers(0, graph.n))
        steps = 0
        while node not in group and steps < cap:
            node = adjacency[indptr[node] + int(rng.integers(0, degrees[node]))]
            steps += 1
        total += steps
    return total / walks
