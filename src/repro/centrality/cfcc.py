"""Current flow closeness centrality of single nodes and of node groups.

* single node (Brandes & Fleischer 2005):
  ``C(u) = n / (Tr(L†) + n L†_uu)``;
* node group (Li et al. 2019, Eq. 3 of the paper):
  ``C(S) = n / Tr(inv(L_{-S}))``.

Exact evaluation uses dense linear algebra and is intended for graphs of up
to a few thousand nodes; :func:`group_cfcc_estimate` provides the conjugate
gradient / Hutchinson route the paper uses to evaluate solutions on graphs
where exact inversion is infeasible (Fig. 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.linalg.laplacian import grounded_laplacian, grounded_laplacian_dense
from repro.linalg.pseudoinverse import laplacian_pseudoinverse
from repro.linalg.solvers import LaplacianSolver, SolverMethod, estimate_trace_of_inverse
from repro.utils.validation import check_group, check_node


def grounded_trace(graph: Graph, group: Sequence[int]) -> float:
    """Exact ``Tr(inv(L_{-S}))`` — the quantity greedy minimises."""
    require_connected(graph)
    group = check_group(group, graph.n)
    matrix, _ = grounded_laplacian_dense(graph, group)
    return float(np.trace(np.linalg.inv(matrix)))


def group_cfcc(graph: Graph, group: Sequence[int]) -> float:
    """Exact group CFCC ``C(S) = n / Tr(inv(L_{-S}))``."""
    return graph.n / grounded_trace(graph, group)


def group_cfcc_estimate(graph: Graph, group: Sequence[int],
                        probes: int = 64, seed: int | None = 0,
                        method: SolverMethod | str = SolverMethod.AUTO) -> float:
    """Estimate ``C(S)`` via Hutchinson trace probes over a sparse solver.

    This is the evaluation route used for the large-graph effectiveness study
    (Fig. 3): ``Tr(inv(L_{-S}))`` is approximated by Rademacher probes whose
    solves run through the sparse LU / conjugate-gradient substrate.
    """
    require_connected(graph)
    group = check_group(group, graph.n)
    matrix, _ = grounded_laplacian(graph, group)
    trace = estimate_trace_of_inverse(matrix, probes=probes, seed=seed, method=method)
    return graph.n / trace


def group_cfcc_solver(graph: Graph, group: Sequence[int],
                      method: SolverMethod | str = SolverMethod.AUTO) -> float:
    """Exact-to-solver-tolerance ``C(S)`` via ``|V \\ S|`` linear solves.

    More expensive than :func:`group_cfcc_estimate` but deterministic; used in
    tests as an independent cross-check of the dense route.
    """
    require_connected(graph)
    group = check_group(group, graph.n)
    matrix, _ = grounded_laplacian(graph, group)
    solver = LaplacianSolver(matrix, method=method)
    return graph.n / solver.trace_of_inverse()


def single_cfcc(graph: Graph, node: int) -> float:
    """Exact single-node CFCC ``C(u) = n / (Tr(L†) + n L†_uu)``."""
    require_connected(graph)
    check_node(node, graph.n)
    pinv = laplacian_pseudoinverse(graph)
    return graph.n / (float(np.trace(pinv)) + graph.n * float(pinv[node, node]))


def single_cfcc_all(graph: Graph) -> np.ndarray:
    """Exact single-node CFCC for every node (one pseudoinverse, n values)."""
    require_connected(graph)
    pinv = laplacian_pseudoinverse(graph)
    trace = float(np.trace(pinv))
    diag = np.diag(pinv)
    return graph.n / (trace + graph.n * diag)
