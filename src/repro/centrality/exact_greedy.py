"""Exact greedy baseline (the paper's ``Exact`` method).

Computes the first pick from the dense Laplacian pseudoinverse (Eq. 4) and
every subsequent marginal gain ``Δ(u, S)`` from the dense ``inv(L_{-S})``
(Eq. 5).  After each pick the inverse is downdated in O(n^2) instead of being
refactored, so the overall cost is O(n^3 + k n^2) — feasible for graphs of a
few thousand nodes, exactly the regime in which Table II reports ``Exact``.
"""

from __future__ import annotations

from repro.utils.timer import clock
from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.centrality.result import CFCMResult
from repro.linalg.pseudoinverse import pseudoinverse_diagonal
from repro.linalg.updates import GroundedInverseTracker
from repro.utils.validation import check_integer


class ExactGreedy:
    """Deterministic greedy CFCM solver using dense linear algebra.

    Examples
    --------
    >>> from repro.graph import generators
    >>> graph = generators.barabasi_albert(60, 2, seed=3)
    >>> result = ExactGreedy(graph).run(k=2)
    >>> len(result.group)
    2
    """

    method_name = "exact"

    def __init__(self, graph: Graph):
        require_connected(graph)
        self.graph = graph

    def run(self, k: int) -> CFCMResult:
        """Select ``k`` nodes greedily with exact marginal gains."""
        check_integer("k", k, minimum=1, maximum=self.graph.n - 1)
        start = clock()
        iteration_log: List[Dict[str, object]] = []

        diag = pseudoinverse_diagonal(self.graph)
        first = int(np.argmin(diag))
        group = [first]
        iteration_log.append({
            "iteration": 0,
            "node": first,
            "score": float(diag[first]),
        })

        tracker = GroundedInverseTracker(self.graph, group)
        for iteration in range(1, k):
            inverse = tracker.inverse
            numerators = np.sum(inverse * inverse, axis=0)
            denominators = np.diag(inverse)
            gains = numerators / denominators
            local_best = int(np.argmax(gains))
            node = int(tracker.kept[local_best])
            group.append(node)
            iteration_log.append({
                "iteration": iteration,
                "node": node,
                "gain": float(gains[local_best]),
                "trace_before": float(tracker.trace()),
            })
            tracker.add_node(node)

        runtime = clock() - start
        return CFCMResult(
            method=self.method_name,
            group=group,
            runtime_seconds=runtime,
            parameters={},
            iteration_log=iteration_log,
        )
