"""Fault-point seams for deterministic fault injection.

Library code marks its failure-relevant seams with a single call::

    fault_point("backend.solve", subject=self, backend=self.name)

With no gate installed (the default, and the production configuration) the
call is one module-global check and returns immediately.  The resilience
layer (:mod:`repro.resilience.faults`) installs a *gate* — any object with
``check(site, subject=None, **labels)`` — for the duration of a chaos run;
the gate may raise a typed error or mutate ``subject`` in place to simulate
numerical drift.

This module deliberately imports nothing from :mod:`repro` so every layer
(solvers, backends, engine, service) can mark seams without import cycles.
"""

from __future__ import annotations

from typing import Any, Optional

_GATE: Optional[Any] = None


def install_gate(gate: Any) -> None:
    """Install ``gate`` as the process-wide fault gate (replacing any prior)."""
    global _GATE
    _GATE = gate


def clear_gate(gate: Optional[Any] = None) -> None:
    """Remove the installed gate.

    When ``gate`` is given, only clears if it is still the installed one —
    so a nested/stale injector exiting cannot tear down its successor.
    """
    global _GATE
    if gate is None or _GATE is gate:
        _GATE = None


def current_gate() -> Optional[Any]:
    """The installed gate, or ``None``."""
    return _GATE


def fault_point(site: str, subject: Any = None, **labels: Any) -> None:
    """Give the installed gate (if any) a chance to inject a fault at ``site``."""
    if _GATE is not None:
        _GATE.check(site, subject=subject, **labels)
