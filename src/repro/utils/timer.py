"""Small timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("phase"):
    ...     _ = sum(range(10))
    >>> timer.total("phase") >= 0.0
    True
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.records.setdefault(label, []).append(elapsed)

    def total(self, label: str) -> float:
        """Total seconds recorded under ``label`` (0.0 when never measured)."""
        return float(sum(self.records.get(label, ())))

    def count(self, label: str) -> int:
        """Number of measurements recorded under ``label``."""
        return len(self.records.get(label, ()))

    def summary(self) -> Dict[str, float]:
        """Mapping of label to total elapsed seconds."""
        return {label: self.total(label) for label in self.records}


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a one-element list filled with elapsed seconds.

    >>> with timed() as elapsed:
    ...     _ = sum(range(100))
    >>> elapsed[0] >= 0.0
    True
    """
    box: List[float] = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
