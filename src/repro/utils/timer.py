"""Small timing helpers used by the experiment harness.

:class:`Timer` is now a thin shim over :class:`repro.obs.metrics.Histogram`:
each label is backed by a standalone latency histogram (always enabled —
registry-independent), which is where :meth:`Timer.percentile` and
:meth:`Timer.merge` come from.  The raw per-measurement ``records`` lists
are kept for exact totals and backward compatibility.

``clock`` re-exports ``time.perf_counter`` as the repo's sanctioned
monotonic clock: instrumented modules import it from here so
``scripts/check_no_adhoc_timing.py`` can forbid raw ``perf_counter`` use
everywhere else in ``src/repro``.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs.metrics import LATENCY_BUCKETS, Histogram

#: The repo's sanctioned monotonic clock (see module docstring).
clock = time.perf_counter


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("phase"):
    ...     _ = sum(range(10))
    >>> timer.total("phase") >= 0.0
    True
    """

    records: Dict[str, List[float]] = field(default_factory=dict)
    _histograms: Dict[str, Histogram] = field(default_factory=dict, repr=False)

    def _histogram(self, label: str) -> Histogram:
        histogram = self._histograms.get(label)
        if histogram is None:
            histogram = self._histograms[label] = Histogram(
                f"timer_{label}", buckets=LATENCY_BUCKETS
            )
        return histogram

    def record(self, label: str, elapsed: float) -> None:
        """Record one measurement of ``elapsed`` seconds under ``label``."""
        self.records.setdefault(label, []).append(elapsed)
        self._histogram(label).observe(elapsed)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = clock()
        try:
            yield
        finally:
            self.record(label, clock() - start)

    def total(self, label: str) -> float:
        """Total seconds recorded under ``label`` (0.0 when never measured)."""
        return float(sum(self.records.get(label, ())))

    def count(self, label: str) -> int:
        """Number of measurements recorded under ``label``."""
        return len(self.records.get(label, ()))

    def percentile(self, label: str, q: float) -> float:
        """Interpolated ``q``-th percentile of ``label``'s measurements.

        Bucket-interpolated (clamped to the observed min/max) via the
        backing histogram; 0.0 when the label was never measured.
        """
        histogram = self._histograms.get(label)
        return histogram.percentile(q) if histogram is not None else 0.0

    def merge(self, other: "Timer") -> "Timer":
        """Fold another timer's measurements into this one (per label).

        Combines per-worker timers into one distribution; returns ``self``.
        """
        for label, values in other.records.items():
            self.records.setdefault(label, []).extend(values)
            self._histogram(label).merge(other._histogram(label))
        return self

    def summary(self) -> Dict[str, float]:
        """Mapping of label to total elapsed seconds."""
        return {label: self.total(label) for label in self.records}


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a one-element list filled with elapsed seconds.

    .. deprecated::
        Use :meth:`Timer.measure`, or a registry histogram via
        :mod:`repro.obs` — ``timed()`` will be removed.

    >>> import warnings
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     with timed() as elapsed:
    ...         _ = sum(range(100))
    >>> elapsed[0] >= 0.0
    True
    """
    warnings.warn(
        "timed() is deprecated: use Timer.measure() or a repro.obs histogram",
        DeprecationWarning, stacklevel=3,
    )
    box: List[float] = [0.0]
    start = clock()
    try:
        yield box
    finally:
        box[0] = clock() - start
