"""Random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts either an integer seed, ``None``
(fresh entropy) or an existing :class:`numpy.random.Generator`.  This module
normalises those inputs so that algorithms never have to special-case them.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a reproducible
        stream, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent generators derived from ``seed``.

    Useful for batch-parallel sampling where each batch needs its own stream
    that is reproducible from a single user-supplied seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator itself to preserve reproducibility.
        children = seed.spawn(count) if hasattr(seed, "spawn") else None
        if children is not None:
            return list(children)
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return [np.random.default_rng(s) for s in root.spawn(count)]


def random_signs(rng: np.random.Generator, shape, scale: float = 1.0) -> np.ndarray:
    """Return an array of ``+scale`` / ``-scale`` entries with equal probability."""
    return np.where(rng.random(shape) < 0.5, -scale, scale)


def sample_seed(rng: Optional[np.random.Generator]) -> int:
    """Draw a fresh integer seed from ``rng`` (or from OS entropy when ``None``)."""
    generator = rng if rng is not None else np.random.default_rng()
    return int(generator.integers(0, 2**63 - 1))
