"""Input-validation helpers shared across the package.

These helpers raise :class:`repro.exceptions.InvalidParameterError` or
:class:`repro.exceptions.InvalidNodeError` with informative messages so that
algorithm code can stay focused on the mathematics.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidNodeError, InvalidParameterError


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    value = float(value)
    if strict and value <= 0:
        raise InvalidParameterError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float, inclusive: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1)`` (or ``[0, 1]`` when inclusive)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise InvalidParameterError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise InvalidParameterError(f"{name} must be in (0, 1), got {value}")
    return value


def check_integer(name: str, value: int, minimum: int | None = None,
                  maximum: int | None = None) -> int:
    """Validate that ``value`` is an integer inside ``[minimum, maximum]``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise InvalidParameterError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_node(node: int, n: int) -> int:
    """Validate a node identifier against a graph of ``n`` nodes."""
    if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
        raise InvalidNodeError(f"node must be an integer, got {node!r}")
    node = int(node)
    if not 0 <= node < n:
        raise InvalidNodeError(f"node {node} outside valid range [0, {n - 1}]")
    return node


def check_group(group: Iterable[int], n: int, allow_empty: bool = False) -> Sequence[int]:
    """Validate a node group (iterable of distinct node ids) and return it sorted."""
    nodes = [check_node(v, n) for v in group]
    if not allow_empty and not nodes:
        raise InvalidParameterError("node group must be non-empty")
    if len(set(nodes)) != len(nodes):
        raise InvalidParameterError(f"node group contains duplicates: {sorted(nodes)}")
    if len(nodes) >= n:
        raise InvalidParameterError(
            f"node group of size {len(nodes)} must be a strict subset of {n} nodes"
        )
    return sorted(nodes)
