"""Shared utilities: RNG handling, validation helpers, timers and logging."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timer import Timer, clock, timed
from repro.utils.validation import (
    check_group,
    check_integer,
    check_node,
    check_positive,
    check_probability,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Timer",
    "clock",
    "timed",
    "check_group",
    "check_integer",
    "check_node",
    "check_positive",
    "check_probability",
]
