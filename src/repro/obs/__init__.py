"""Unified observability layer: metrics, span tracing and health exposition.

Three small, dependency-free pieces:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms (p50/p95/p99), with a
  ``snapshot()`` dict API and a Prometheus text renderer.  The module-level
  :data:`REGISTRY` is the default instance every instrumented module writes
  to; it starts disabled, so the hot path pays one attribute check until
  :func:`enable` is called.
* :mod:`repro.obs.tracing` — ``with trace("stage"):`` nested timed spans
  over a thread-local stack, collected into a ring buffer and an optional
  JSON-lines file once :func:`enable_tracing` installs a tracer.
* :mod:`repro.obs.health` — ``bind_engine_health`` / ``bind_service_health``
  collectors that publish :class:`EngineStats`, :class:`ServiceStats`, pool
  ESS health and queue depths onto registry gauges at exposition time.

Typical opt-in::

    from repro import obs

    obs.enable()                       # metrics on
    tracer = obs.enable_tracing(jsonl_path="trace.jsonl")
    ... run traffic ...
    print(obs.render_prometheus())     # exposition text
    snapshot = obs.snapshot()          # plain-dict API
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace,
)
from repro.obs.health import bind_engine_health, bind_service_health


def enable() -> MetricsRegistry:
    """Enable hot-path recording on the default registry."""
    return REGISTRY.enable()


def disable() -> MetricsRegistry:
    """Disable hot-path recording on the default registry."""
    return REGISTRY.disable()


def snapshot(percentiles=(50.0, 95.0, 99.0)):
    """Snapshot of the default registry (runs collectors first)."""
    return REGISTRY.snapshot(percentiles)


def render_prometheus() -> str:
    """The default registry in the Prometheus text exposition format."""
    return REGISTRY.render_prometheus()


__all__ = [
    "LATENCY_BUCKETS",
    "REGISTRY",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "trace",
    "bind_engine_health",
    "bind_service_health",
    "enable",
    "disable",
    "snapshot",
    "render_prometheus",
]
