"""Health exposition: publish engine/service/pool state onto registry gauges.

The engine and service already keep operational counters
(:class:`repro.dynamic.EngineStats`, :class:`repro.service.ServiceStats`,
:meth:`repro.dynamic.DynamicCFCM.pool_health`); this module bridges them
onto the metrics registry as *collectors* — callbacks the registry runs at
exposition time (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` /
:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`) — so gauge
families always reflect live state without the hot path writing gauges.

Both binders hold their component through a weak reference: a collector
whose component was garbage-collected unregisters itself on its next run,
so binding never extends a component's lifetime.  The service binds itself
on :meth:`~repro.service.AsyncCFCMService.start` and unbinds on ``stop``.
"""

from __future__ import annotations

import weakref
from typing import Callable, Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry

# EngineStats scalar fields published as repro_engine_<field> gauges.
_ENGINE_FIELDS = (
    "query_hits", "query_misses", "eval_hits", "eval_misses",
    "forests_kept", "forests_resampled", "forests_reweighted",
    "forests_dropped", "forests_folded", "pools_flushed", "pools_evicted",
    "ess_topups", "batch_updates", "batched_events", "node_evictions",
)

# ServiceStats fields published as repro_service_<field> gauges.
_SERVICE_FIELDS = (
    "updates_submitted", "updates_applied", "updates_failed",
    "updates_rejected", "update_batches", "coalesced_updates",
    "queries", "evaluations", "cancelled",
)


def bind_engine_health(engine, registry: Optional[MetricsRegistry] = None,
                       prefix: str = "repro_engine") -> Callable[[], None]:
    """Publish a :class:`~repro.dynamic.DynamicCFCM`'s health as gauges.

    Registers a collector exposing every :class:`EngineStats` counter as
    ``<prefix>_<field>``, the cache hit rate, the pending-event backlog, and
    per-pool ``repro_pool_{ess,ess_floor,size,capacity,stale_fraction}``
    gauges labelled by the pool's root-set key.  Returns the unbind callable.
    """
    registry = registry if registry is not None else REGISTRY
    ref = weakref.ref(engine)
    unregister_box = []

    gauges = {
        field: registry.gauge(f"{prefix}_{field}",
                              f"EngineStats.{field} of the dynamic engine")
        for field in _ENGINE_FIELDS
    }
    hit_rate = registry.gauge(f"{prefix}_query_hit_rate",
                              "Fraction of query() calls answered from cache")
    pending = registry.gauge(f"{prefix}_pending_events",
                             "Journal events not yet folded into the caches")
    pool_gauges = {
        field: registry.gauge(f"repro_pool_{field}",
                              f"Per-root-set forest pool {field}",
                              labels=("pool",))
        for field in ("ess", "ess_floor", "size", "capacity", "stale_fraction")
    }

    def collect(_registry: MetricsRegistry) -> None:
        live = ref()
        if live is None:
            unregister_box[0]()
            return
        stats = live.stats
        for field, gauge in gauges.items():
            gauge.set(float(getattr(stats, field)))
        hit_rate.set(stats.hit_rate())
        pending.set(float(live.pending_events))
        # Re-publish the pool family from scratch so series for pools that
        # were flushed or LRU-evicted disappear instead of going stale.
        for gauge in pool_gauges.values():
            gauge.clear()
        for pool_key, health in live.pool_health().items():
            for field, gauge in pool_gauges.items():
                if field in health:
                    gauge.set(float(health[field]), pool=pool_key)

    unregister_box.append(registry.register_collector(collect))
    return unregister_box[0]


def bind_service_health(service, registry: Optional[MetricsRegistry] = None,
                        prefix: str = "repro_service") -> Callable[[], None]:
    """Publish an :class:`~repro.service.AsyncCFCMService`'s health as gauges.

    Exposes every :class:`ServiceStats` counter as ``<prefix>_<field>`` plus
    the mean coalesced batch size, the update queue depth, and the last
    journal version the writer published.  Returns the unbind callable.
    """
    registry = registry if registry is not None else REGISTRY
    ref = weakref.ref(service)
    unregister_box = []

    gauges = {
        field: registry.gauge(f"{prefix}_{field}",
                              f"ServiceStats.{field} of the async service")
        for field in _SERVICE_FIELDS
    }
    mean_batch = registry.gauge(f"{prefix}_mean_batch_size",
                                "Mean updates coalesced per writer batch")
    queue_depth = registry.gauge(f"{prefix}_queue_depth",
                                 "Updates enqueued but not yet applied")
    applied = registry.gauge(f"{prefix}_applied_version",
                             "Last journal version the writer published")

    def collect(_registry: MetricsRegistry) -> None:
        live = ref()
        if live is None:
            unregister_box[0]()
            return
        stats = live.stats
        for field, gauge in gauges.items():
            gauge.set(float(getattr(stats, field)))
        batches = stats.update_batches
        mean_batch.set(stats.coalesced_updates / batches if batches else 0.0)
        queue_depth.set(float(live.pending_updates))
        applied.set(float(live.version))

    unregister_box.append(registry.register_collector(collect))
    return unregister_box[0]
