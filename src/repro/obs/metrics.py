"""Process-local metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` owns every metric of the process (the module
level :data:`REGISTRY` is the default instance shared by the engine, the
async service and the samplers).  Three metric kinds cover the repo's needs:

* :class:`Counter` — monotonically increasing totals (forests drawn,
  lockstep chunks, ...);
* :class:`Gauge` — point-in-time values, mostly written by registered
  *collectors* at exposition time (engine/service stats, pool ESS, queue
  depth — see :mod:`repro.obs.health`);
* :class:`Histogram` — fixed-bucket distributions with exact ``sum`` /
  ``count`` / ``min`` / ``max`` side-cars and interpolated
  :meth:`~Histogram.percentile` (p50/p95/p99), the type behind every latency
  and batch-size distribution in the benchmarks and the serve study.

Metrics may declare **labels** (``labels=("pool",)``); each distinct label
value combination is an independent time series, rendered separately by the
exposition formats.

Design constraints (why the implementation looks the way it does):

* **Near-zero overhead when disabled.**  The registry starts *disabled*;
  :meth:`Counter.inc` / :meth:`Histogram.observe` check one attribute and
  return, so library users who never opt in pay an attribute load per hook.
  Enable with :meth:`MetricsRegistry.enable` (or :func:`repro.obs.enable`).
* **Thread-safe.**  The async service's worker pool updates metrics from
  several threads; every value mutation happens under a per-metric lock and
  registration under a registry lock.  :meth:`Gauge.set` applies even while
  the registry is disabled — gauges are written by collectors at exposition
  time, which is always an explicit request.
* **Pull exposition.**  :meth:`MetricsRegistry.snapshot` returns a plain
  dict (attachable to a JSON artifact or a :class:`ServiceResponse`);
  :meth:`MetricsRegistry.render_prometheus` renders the Prometheus text
  format.  Both first run the registered collectors so gauge families
  reflect live state.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# Log-spaced seconds buckets covering 10us .. 10s — wide enough for both the
# sub-millisecond cache-hit path and a full refactorisation.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Powers-of-two buckets for discrete sizes (coalesced batch sizes, forests
# per top-up/fold, journal events per sync).
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

_EMPTY_KEY: Tuple[str, ...] = ()


class MetricError(ValueError):
    """Raised on metric misuse (label mismatch, kind collision, bad merge)."""


class _Metric:
    """Shared machinery: naming, label keying, per-metric locking."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None):
        self.name = str(name)
        self.help = str(help)
        self.label_names: Tuple[str, ...] = tuple(str(l) for l in labels)
        self.registry = registry
        self._lock = threading.Lock()

    # -- fast-path guard ----------------------------------------------------
    @property
    def _enabled(self) -> bool:
        registry = self.registry
        return registry is None or registry.enabled

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if not self.label_names:
            if labels:
                raise MetricError(
                    f"metric {self.name!r} declares no labels, got {sorted(labels)}"
                )
            return _EMPTY_KEY
        try:
            return tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:
            raise MetricError(
                f"metric {self.name!r} requires labels {self.label_names}, "
                f"got {sorted(labels)}"
            ) from exc

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """Monotonically increasing float total, optionally per label values."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, labels, registry)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0); a no-op while the registry is disabled."""
        if not self._enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        """Current total for the label values (0.0 when never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` pairs for every live series."""
        with self._lock:
            return [(self._label_dict(key), value)
                    for key, value in sorted(self._values.items())]


class Gauge(_Metric):
    """Point-in-time value; writes apply even while the registry is disabled
    (collectors set gauges at exposition time, which is always explicit)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, labels, registry)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0.0)

    def clear(self) -> None:
        """Drop every series (collectors call this before re-publishing so
        series for vanished label values — dead pools — disappear)."""
        with self._lock:
            self._values.clear()

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        with self._lock:
            return [(self._label_dict(key), value)
                    for key, value in sorted(self._values.items())]


class _HistogramState:
    """One label combination's buckets + exact side-car statistics."""

    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, buckets: int):
        self.counts = [0] * (buckets + 1)  # +1 for the +Inf overflow bucket
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Metric):
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are the finite upper bounds (ascending); an implicit ``+Inf``
    overflow bucket is always appended.  Besides the bucket counts the
    histogram keeps exact ``sum``/``count``/``min``/``max``, so means are
    exact and percentile interpolation is clamped to the observed range.
    Standalone instances (no registry) are always enabled — that is what
    :class:`repro.utils.timer.Timer` builds on.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = LATENCY_BUCKETS,
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, labels, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram {self.name!r} needs strictly increasing buckets"
            )
        self.buckets = bounds
        self._states: Dict[Tuple[str, ...], _HistogramState] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation; a no-op while the registry is disabled."""
        if not self._enabled:
            return
        key = self._key(labels)
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.buckets))
            state.counts[index] += 1
            state.sum += value
            state.count += 1
            if value < state.min:
                state.min = value
            if value > state.max:
                state.max = value

    # -- reading ------------------------------------------------------------
    def _aggregate(self, labels: Dict[str, object]) -> _HistogramState:
        """The state for one label key — or all series merged when the
        histogram is labelled but no labels are given (aggregate view)."""
        merged = _HistogramState(len(self.buckets))
        with self._lock:
            if self.label_names and not labels:
                states = list(self._states.values())
            else:
                state = self._states.get(self._key(labels))
                states = [state] if state is not None else []
            for state in states:
                merged.counts = [a + b for a, b in zip(merged.counts, state.counts)]
                merged.sum += state.sum
                merged.count += state.count
                merged.min = min(merged.min, state.min)
                merged.max = max(merged.max, state.max)
        return merged

    def count(self, **labels) -> int:
        return self._aggregate(labels).count

    def sum(self, **labels) -> float:
        return self._aggregate(labels).sum

    def mean(self, **labels) -> float:
        state = self._aggregate(labels)
        return state.sum / state.count if state.count else 0.0

    def percentile(self, q: float, **labels) -> float:
        """Interpolated ``q``-th percentile (``q`` in [0, 100]).

        Linear interpolation inside the bucket containing the target rank,
        clamped to the exact observed ``[min, max]`` range; 0.0 when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise MetricError(f"percentile must lie in [0, 100], got {q}")
        state = self._aggregate(labels)
        if state.count == 0:
            return 0.0
        target = (q / 100.0) * state.count
        cumulative = 0
        for index, bucket_count in enumerate(state.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (self.buckets[index] if index < len(self.buckets)
                         else state.max)
                fraction = (target - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, state.min), state.max)
            cumulative += bucket_count
        return state.max

    def summary(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0),
                **labels) -> Dict[str, float]:
        """count/sum/mean/min/max plus the requested percentiles as a dict."""
        state = self._aggregate(labels)
        result: Dict[str, float] = {
            "count": float(state.count),
            "sum": state.sum,
            "mean": state.sum / state.count if state.count else 0.0,
            "min": state.min if state.count else 0.0,
            "max": state.max if state.count else 0.0,
        }
        for q in percentiles:
            label = f"p{q:g}".replace(".", "_")
            result[label] = self.percentile(q, **labels)
        return result

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram (same buckets).

        Series are matched by label values; this is what
        :meth:`repro.utils.timer.Timer.merge` uses to combine per-worker
        timers into one distribution.  Returns ``self``.
        """
        if not isinstance(other, Histogram):
            raise MetricError(f"cannot merge {type(other).__name__} into a histogram")
        if other.buckets != self.buckets:
            raise MetricError(
                f"histogram {self.name!r} bucket mismatch: "
                f"{other.buckets} != {self.buckets}"
            )
        if other.label_names != self.label_names:
            raise MetricError(
                f"histogram {self.name!r} label mismatch: "
                f"{other.label_names} != {self.label_names}"
            )
        with other._lock:
            pairs = [(key, state.counts[:], state.sum, state.count,
                      state.min, state.max)
                     for key, state in other._states.items()]
        with self._lock:
            for key, counts, total, count, minimum, maximum in pairs:
                state = self._states.get(key)
                if state is None:
                    state = self._states[key] = _HistogramState(len(self.buckets))
                state.counts = [a + b for a, b in zip(state.counts, counts)]
                state.sum += total
                state.count += count
                state.min = min(state.min, minimum)
                state.max = max(state.max, maximum)
        return self

    def clear(self) -> None:
        with self._lock:
            self._states.clear()

    def series(self) -> List[Tuple[Dict[str, str], _HistogramState]]:
        with self._lock:
            return [(self._label_dict(key), state)
                    for key, state in sorted(self._states.items())]


class MetricsRegistry:
    """Process-local registry of named metrics plus exposition collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    registers the metric, later calls return the same object (and verify the
    kind and label names match, so two modules cannot silently share a name
    for different things).  The registry starts ``enabled=False``; hot-path
    writes are no-ops until :meth:`enable`.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.RLock()

    # -- lifecycle ----------------------------------------------------------
    def enable(self) -> "MetricsRegistry":
        """Turn hot-path recording on; returns ``self`` for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        """Turn hot-path recording off (registrations and values persist)."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Zero every metric's series.

        Metric *objects* survive (module-level handles stay valid); only
        their recorded values are dropped.  Collectors stay registered —
        they belong to component lifecycles, not to the value state.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric.clear()

    # -- registration -------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, labels=labels,
                             registry=self, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, requested {cls.kind}"
            )
        if tuple(labels) != metric.label_names:
            raise MetricError(
                f"metric {name!r} declares labels {metric.label_names}, "
                f"requested {tuple(labels)}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric of that name, or ``None``."""
        return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- collectors ---------------------------------------------------------
    def register_collector(
        self, collect: Callable[["MetricsRegistry"], None]
    ) -> Callable[[], None]:
        """Register an exposition-time callback; returns its unregisterer.

        Collectors run (in registration order) at the start of
        :meth:`snapshot` and :meth:`render_prometheus`, typically publishing
        component health onto gauges (see :mod:`repro.obs.health`).  The
        returned callable removes the collector and is idempotent.
        """
        with self._lock:
            self._collectors.append(collect)

        def unregister() -> None:
            with self._lock:
                try:
                    self._collectors.remove(collect)
                except ValueError:
                    pass

        return unregister

    def collect(self) -> None:
        """Run every registered collector once."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    # -- exposition ---------------------------------------------------------
    def snapshot(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
                 ) -> Dict[str, Dict[str, object]]:
        """All metrics as one plain dict (runs collectors first).

        Counters/gauges list ``{"labels": ..., "value": ...}`` series;
        histograms additionally carry bucket counts and the requested
        interpolated percentiles.  The result contains only fresh
        containers, so callers may attach it to responses or JSON artifacts
        without aliasing live registry state.
        """
        self.collect()
        result: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            entry: Dict[str, object] = {
                "type": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
            }
            if isinstance(metric, Histogram):
                series = []
                for labels, state in metric.series():
                    item: Dict[str, object] = {"labels": labels}
                    item.update(metric.summary(percentiles, **labels))
                    item["buckets"] = {
                        _format_bound(bound): count
                        for bound, count in zip(
                            metric.buckets + (float("inf"),), state.counts)
                    }
                    series.append(item)
                entry["series"] = series
            else:
                entry["series"] = [{"labels": labels, "value": value}
                                   for labels, value in metric.series()]
            result[metric.name] = entry
        return result

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (v0.0.4)."""
        self.collect()
        lines: List[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, state in metric.series():
                    cumulative = 0
                    bounds = metric.buckets + (float("inf"),)
                    for bound, count in zip(bounds, state.counts):
                        cumulative += count
                        bucket_labels = dict(labels, le=_format_bound(bound))
                        lines.append(
                            f"{metric.name}_bucket{_render_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_render_labels(labels)} {state.sum!r}"
                    )
                    lines.append(
                        f"{metric.name}_count{_render_labels(labels)} {state.count}"
                    )
            else:
                for labels, value in metric.series():
                    lines.append(
                        f"{metric.name}{_render_labels(labels)} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label(str(value))}"'
                    for name, value in labels.items())
    return "{" + body + "}"


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: Default process-local registry shared by every instrumented module.
REGISTRY = MetricsRegistry(enabled=False)
