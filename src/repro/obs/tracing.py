"""Lightweight span tracing for the engine/service hot path.

A *span* is one timed stage — ``with trace("resistance.sync", events=4):``
— and spans nest: the thread-local span stack links each span to its parent,
so a finished trace reconstructs the full pipeline tree
(``service.apply_batch`` → ``engine.sync_pools`` → ``resistance.sync`` →
``pool.topup`` → ``sampling.lockstep`` → ``estimator.fold``).

Tracing is off by default: :func:`trace` returns the shared no-op span until
:func:`enable_tracing` installs a :class:`Tracer`, so the disabled cost is
one global load and a truth test per hook.  The tracer keeps finished spans
in a bounded ring buffer (newest win) and can mirror every finished span to
a JSON-lines file for offline reconstruction.

Spans are thread-scoped on purpose: the async service runs its traced work
inside synchronous closures on worker threads, where a thread-local stack
gives correct parentage.  Do **not** open a span around an ``await`` — all
coroutines of a loop share one thread, so interleaved tasks would
mis-parent; on the event loop use histograms instead.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Dict, IO, List, Optional

_STACK = threading.local()


def _span_stack() -> List["Span"]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


class Span:
    """One timed stage; a context manager that records itself on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "depth",
                 "thread", "start", "elapsed")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.thread = threading.current_thread().name
        self.start = 0.0
        self.elapsed = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (batch sizes, hit/miss)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _span_stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self.start
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (generator teardown etc.) — drop if present
            try:
                stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._record(self)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "thread": self.thread,
            "start": self.start,
            "elapsed": self.elapsed,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    elapsed = 0.0

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans into a ring buffer and optional JSONL file."""

    def __init__(self, capacity: int = 4096,
                 jsonl_path: Optional[str] = None):
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = None
        if jsonl_path is not None:
            self._file = open(jsonl_path, "w", encoding="utf-8")

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def _record(self, span: Span) -> None:
        record = span.as_dict()
        with self._lock:
            self._spans.append(record)
            if self._file is not None:
                json.dump(record, self._file, default=str)
                self._file.write("\n")

    def spans(self) -> List[Dict[str, Any]]:
        """Finished spans, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def close(self) -> None:
        """Flush and close the JSONL sink (the ring buffer stays readable)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


_TRACER: Optional[Tracer] = None


def trace(name: str, **attrs: Any):
    """A span under the active tracer, or the shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def enable_tracing(capacity: int = 4096,
                   jsonl_path: Optional[str] = None) -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _TRACER
    disable_tracing()
    _TRACER = Tracer(capacity=capacity, jsonl_path=jsonl_path)
    return _TRACER


def disable_tracing() -> None:
    """Remove the active tracer (closing its JSONL sink, if any)."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    if tracer is not None:
        tracer.close()


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` while tracing is disabled."""
    return _TRACER
