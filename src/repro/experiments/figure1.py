"""Fig. 1 — greedy solutions versus the brute-force optimum on tiny graphs.

For each of the four tiny graphs the harness sweeps ``k = 1..5`` and reports
the CFCC achieved by the brute-force optimum, the exact greedy, ApproxGreedy,
ForestCFCM and SchurCFCM.  The paper's observation — greedy and sampling
curves indistinguishable from the optimum — is the shape to reproduce.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.centrality.cfcc import group_cfcc
from repro.experiments.networks import tiny_suite
from repro.experiments.report import format_series, save_json
from repro.experiments.runner import RunSpec, run_method
from repro.graph.graph import Graph


def run_figure1(graphs: Optional[Dict[str, Graph]] = None,
                k_values: Sequence[int] = (1, 2, 3, 4, 5),
                eps: float = 0.2, max_samples: int = 192, seed: int = 0,
                verbose: bool = True,
                output_json: Optional[str] = None) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Run the Fig. 1 study.

    Returns
    -------
    ``{graph_name: {method: {k: cfcc}}}``
    """
    graphs = graphs if graphs is not None else tiny_suite()
    specs = {
        "Optimum": RunSpec("optimum"),
        "Exact": RunSpec("exact"),
        "Approx": RunSpec("approx", eps=eps),
        "Forest": RunSpec("forest", eps=eps, max_samples=max_samples),
        "Schur": RunSpec("schur", eps=eps, max_samples=max_samples),
    }
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, graph in graphs.items():
        per_method: Dict[str, Dict[int, float]] = {label: {} for label in specs}
        for k in k_values:
            for label, spec in specs.items():
                run = run_method(graph, k, spec, seed=seed)
                if run is None:
                    continue
                per_method[label][k] = group_cfcc(graph, run.group)
        results[name] = per_method
        if verbose:
            print(format_series(f"Fig.1 {name} (n={graph.n})", per_method))
            print()
    save_json(results, output_json)
    return results
