"""Scenario-sweep study: map the serving envelope across sampled worlds.

``python -m repro.experiments worlds`` runs :func:`repro.worlds.sweep` over
either the canonical CI smoke cross (``--smoke``), a JSON file of explicit
world specs (``--worlds``), or a :class:`repro.worlds.WorldSampler` draw
(the default), then prints the accuracy/latency/ESS table and applies the
sweep gates.  ``--smoke`` makes the gates fatal: a world that misses its
accuracy tolerance or ESS floor fails the run with a non-zero exit, which
is what CI's bench-smoke job relies on.

Latency percentiles and pool health in the table come from the
:data:`repro.obs.REGISTRY` histograms and health gauges the engine already
populates (``repro_engine_op_seconds``, ``repro_pool_ess``) — the sweep
layer adds no timing of its own.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.report import format_table, write_obs_artifacts
from repro.worlds import (
    WorldSampler,
    WorldSpec,
    faulted_smoke_specs,
    gate_rows,
    smoke_specs,
    sweep,
    write_worlds_artifacts,
)

TABLE_COLUMNS = (
    "world", "n", "events_applied", "forest_rel_error", "exact_rel_error",
    "p95_exact_ms", "p95_forest_ms", "min_pool_ess", "accuracy_ok", "ess_ok",
)

FAULTS_TABLE_COLUMNS = (
    "world", "n", "faults", "faults_injected", "typed_failures",
    "events_applied", "forest_rel_error", "exact_rel_error",
    "min_pool_ess", "accuracy_ok", "ess_ok",
)


def load_world_specs(path: str) -> List[WorldSpec]:
    """Load a JSON file holding a list of :class:`WorldSpec` dicts."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict):
        payload = payload.get("worlds", [])
    return [WorldSpec.from_dict(entry) for entry in payload]


def run_worlds(
    count: int = 8,
    events: int = 24,
    seed: int = 0,
    smoke: bool = False,
    quick: bool = False,
    faults: bool = False,
    worlds_file: Optional[str] = None,
    output_json: Optional[str] = None,
    output_csv: Optional[str] = None,
    metrics_prefix: Optional[str] = None,
) -> Dict[str, object]:
    """Run the sweep and print the envelope table; returns rows + failures.

    ``faults=True`` overlays the chaos fault regimes on the smoke cross
    (:func:`repro.worlds.faulted_smoke_specs`): every read under injection
    must either meet the world's accuracy gate or fail with a typed error,
    and the table grows injection/typed-failure columns.
    """
    if smoke and faults:
        specs = faulted_smoke_specs()
        source = "chaos smoke cross"
    elif smoke:
        specs = smoke_specs()
        source = "smoke cross"
    elif worlds_file is not None:
        specs = load_world_specs(worlds_file)
        source = worlds_file
    else:
        if quick:
            count = min(count, 4)
        sampler = WorldSampler(events=events, seed=seed)
        specs = list(sampler.sample(count))
        source = f"sampler(seed={seed})"
    if faults and not smoke:
        from dataclasses import replace

        from repro.worlds import FaultSpec

        specs = [spec if spec.faults.active
                 else replace(spec, faults=FaultSpec(regime="chaos"))
                 for spec in specs]
        source += " + chaos faults"

    print(f"== worlds sweep: {len(specs)} worlds from {source} ==")
    rows = sweep(specs, verbose=True)
    failures = gate_rows(rows)

    columns = FAULTS_TABLE_COLUMNS if faults else TABLE_COLUMNS
    print()
    print(format_table(
        columns,
        [[row.get(column) for column in columns] for row in rows],
        float_format="{:.4g}",
    ))
    print()
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}")
    else:
        print(f"all {len(rows)} worlds within accuracy tolerance and "
              "ESS floor")

    write_worlds_artifacts(rows, json_path=output_json, csv_path=output_csv)
    if metrics_prefix is not None:
        # The registry still holds the last world's distributions (run_world
        # resets it per world), so the obs artifacts snapshot that world.
        write_obs_artifacts(metrics_prefix, label="worlds")
    return {"rows": rows, "failures": failures}
