"""Plain-text and JSON reporting helpers for the experiment harness."""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            elif value is None:
                rendered.append("-")
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, Dict[object, float]],
                  x_label: str = "k") -> str:
    """Render ``{method: {x: value}}`` series as a table with one column per method."""
    methods = sorted(series)
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + methods
    rows = []
    for x in xs:
        row: List[object] = [x]
        for method in methods:
            row.append(series[method].get(x))
        rows.append(row)
    return f"{title}\n" + format_table(headers, rows, float_format="{:.5f}")


def save_json(payload: object, path: Optional[str]) -> None:
    """Persist a result payload as JSON when ``path`` is given."""
    if path is None:
        return
    Path(path).write_text(json.dumps(payload, indent=2, default=str), encoding="utf-8")


def write_bench_artifact(rows: object, path: str, benchmark: str) -> None:
    """Write one ``BENCH_*.json`` perf-trajectory artifact (see CI).

    The envelope is shared by every benchmark smoke so the per-commit
    artifacts CI uploads stay schema-compatible over time.
    """
    payload = {
        "benchmark": benchmark,
        "python": sys.version.split()[0],
        "unix_time": time.time(),
        "rows": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True, default=str),
                          encoding="utf-8")
    print(f"[{benchmark}] wrote {path}")
