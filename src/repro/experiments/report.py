"""Plain-text and JSON reporting helpers for the experiment harness."""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            elif value is None:
                rendered.append("-")
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, Dict[object, float]],
                  x_label: str = "k") -> str:
    """Render ``{method: {x: value}}`` series as a table with one column per method."""
    methods = sorted(series)
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + methods
    rows = []
    for x in xs:
        row: List[object] = [x]
        for method in methods:
            row.append(series[method].get(x))
        rows.append(row)
    return f"{title}\n" + format_table(headers, rows, float_format="{:.5f}")


def save_json(payload: object, path: Optional[str]) -> None:
    """Persist a result payload as JSON when ``path`` is given."""
    if path is None:
        return
    Path(path).write_text(json.dumps(payload, indent=2, default=str), encoding="utf-8")


def write_bench_artifact(rows: object, path: str, benchmark: str) -> None:
    """Write one ``BENCH_*.json`` perf-trajectory artifact (see CI).

    The envelope is shared by every benchmark smoke so the per-commit
    artifacts CI uploads stay schema-compatible over time.
    """
    payload = {
        "benchmark": benchmark,
        "python": sys.version.split()[0],
        "unix_time": time.time(),
        "rows": rows,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True, default=str),
                          encoding="utf-8")
    print(f"[{benchmark}] wrote {path}")


def percentiles_ms(latencies: Sequence[float],
                   percentiles: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
    """Millisecond percentile fields for a list of second-valued latencies.

    The shared shape of the per-row latency summaries in the ``BENCH_*.json``
    artifacts (``{"p50_ms": ..., "p95_ms": ..., "p99_ms": ...}``); empty input
    yields zeros so smoke rows stay schema-stable.
    """
    keys = [f"p{int(q) if float(q).is_integer() else q}_ms" for q in percentiles]
    values = list(latencies)
    if not values:
        return {key: 0.0 for key in keys}
    data = np.asarray(values, dtype=np.float64) * 1e3
    return {key: float(np.percentile(data, q))
            for key, q in zip(keys, percentiles)}


def metrics_prefix_for(bench_path: str) -> str:
    """Derive the metrics-artifact prefix paired with a ``BENCH_*.json`` path.

    ``BENCH_async.json`` maps to ``METRICS_async`` in the same directory, so
    the CI upload globs pair every benchmark artifact with the registry
    snapshot recorded during its run.
    """
    path = Path(bench_path)
    stem = path.stem
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return str(path.with_name(f"METRICS_{stem}"))


def write_obs_artifacts(prefix: str, label: str = "obs") -> None:
    """Write the default registry as ``<prefix>.prom`` and ``<prefix>.json``.

    The Prometheus text exposition and the ``snapshot()`` dict of
    :data:`repro.obs.REGISTRY`, side by side — CI uploads these next to the
    ``BENCH_*.json`` artifacts so the perf trajectory carries full metric
    distributions, not just the row summaries.
    """
    from repro import obs

    Path(f"{prefix}.prom").write_text(obs.render_prometheus(), encoding="utf-8")
    Path(f"{prefix}.json").write_text(
        json.dumps(obs.snapshot(), indent=2, sort_keys=True, default=str),
        encoding="utf-8",
    )
    print(f"[{label}] wrote {prefix}.prom and {prefix}.json")
