"""Fig. 2 — effectiveness on small graphs: CFCC of the selected group vs k.

Six small graphs, methods Exact / Top-CFCC / Degree / Approx / Forest /
Schur, group sizes k = 4..20.  CFCC is evaluated exactly.  The shape to
reproduce: SchurCFCM tracks Exact most closely across all k, ForestCFCM is
competitive, and the two heuristics trail the greedy methods.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.networks import small_suite
from repro.experiments.report import format_series, save_json
from repro.experiments.runner import methods_for_effectiveness, run_method, evaluate_cfcc
from repro.graph.graph import Graph


def run_figure2(graphs: Optional[Dict[str, Graph]] = None,
                k_values: Sequence[int] = (4, 8, 12, 16, 20),
                eps: float = 0.2, max_samples: int = 96, seed: int = 0,
                scale: str = "small", verbose: bool = True,
                output_json: Optional[str] = None) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Run the Fig. 2 study; returns ``{graph: {method: {k: cfcc}}}``."""
    graphs = graphs if graphs is not None else small_suite(scale)
    specs = methods_for_effectiveness(include_exact=True, eps=eps,
                                      max_samples=max_samples)
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, graph in graphs.items():
        per_method: Dict[str, Dict[int, float]] = {label: {} for label in specs}
        for label, spec in specs.items():
            run = run_method(graph, max(k_values), spec, seed=seed)
            if run is None:
                continue
            # Greedy methods produce nested prefixes, so one run at the
            # largest k yields the whole curve.
            for k in k_values:
                per_method[label][k] = evaluate_cfcc(graph, run.prefix(k))
        results[name] = per_method
        if verbose:
            print(format_series(f"Fig.2 {name} (n={graph.n})", per_method))
            print()
    save_json(results, output_json)
    return results
