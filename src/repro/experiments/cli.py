"""Command-line interface of the experiment harness.

Usage::

    python -m repro.experiments table2 [--scale small|full] [--k 10]
    python -m repro.experiments fig1
    python -m repro.experiments fig2 --eps 0.2
    python -m repro.experiments dynamic --quick
    python -m repro.experiments serve --smoke
    python -m repro.experiments worlds --smoke [--faults]
    python -m repro.experiments all --quick

``all`` regenerates the paper artefacts (table2 and the five figures); the
``dynamic`` workload study characterises the incremental engine, the
``serve`` study drives the async query service (``--smoke`` additionally
gates on async/sync equivalence and exits non-zero on a mismatch) and the
``worlds`` study sweeps sampled serving scenarios (``--smoke`` runs the
canonical CI cross and gates on accuracy tolerance and pool-ESS floors);
all three are run explicitly.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments.dynamic import run_dynamic
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.service import run_service
from repro.experiments.table2 import run_table2
from repro.experiments.worlds import run_worlds

EXPERIMENTS = ("table2", "fig1", "fig2", "fig3", "fig4", "fig5", "dynamic",
               "serve", "worlds", "all")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on synthetic stand-ins.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which artefact to regenerate")
    parser.add_argument("--scale", choices=("small", "full"), default="small",
                        help="workload scale (default: small)")
    parser.add_argument("--k", type=int, default=10,
                        help="group size for table2/fig4/fig5 (default: 10)")
    parser.add_argument("--eps", type=float, default=0.2,
                        help="error parameter for the effectiveness studies")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--max-samples", type=int, default=96,
                        help="per-call cap on sampled spanning forests")
    parser.add_argument("--batch", type=int, default=1,
                        help="events per update burst for the dynamic study "
                             "(each burst syncs as one rank-t Woodbury update)")
    parser.add_argument("--node-churn", type=float, default=0.0,
                        help="fraction of dynamic-study events that add/remove "
                             "a node instead of an edge")
    parser.add_argument("--ops", type=int, default=200,
                        help="total Poisson arrivals for the serve study")
    parser.add_argument("--rate", type=float, default=500.0,
                        help="arrival rate (events/s) for the serve study")
    parser.add_argument("--query-fraction", type=float, default=0.5,
                        help="fraction of serve-study arrivals that are queries")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads of the async service")
    parser.add_argument("--backend", choices=("dense", "sparse", "auto"),
                        default="dense",
                        help="resistance backend of the dynamic/serve "
                             "studies: dense explicit-inverse Woodbury, "
                             "sparse solver-backed, or auto by graph size")
    parser.add_argument("--shards", type=int, default=1,
                        help="dynamic: with N > 1 the engine pass runs the "
                             "sharded distributed backend (per-shard trackers "
                             "stitched by a global Schur complement)")
    parser.add_argument("--smoke", action="store_true",
                        help="serve: shrink the workload and gate on async/sync "
                             "equivalence; worlds: run the canonical CI cross "
                             "and gate on accuracy + ESS (non-zero exit)")
    parser.add_argument("--count", type=int, default=8,
                        help="worlds: how many worlds to sample (default: 8)")
    parser.add_argument("--events", type=int, default=24,
                        help="worlds: churn-event budget per sampled world")
    parser.add_argument("--worlds", default=None, metavar="JSON",
                        help="worlds: run explicit specs from this JSON file "
                             "instead of sampling (a list of WorldSpec dicts)")
    parser.add_argument("--faults", action="store_true",
                        help="worlds: inject deterministic fault regimes "
                             "(with --smoke: the chaos smoke cross; "
                             "otherwise overlay chaos faults on the specs)")
    parser.add_argument("--output-csv", default=None,
                        help="worlds: also write the sweep table as CSV")
    parser.add_argument("--quick", action="store_true",
                        help="shrink sweeps for a fast smoke run")
    parser.add_argument("--output-json", default=None,
                        help="optional path for a JSON dump of the results")
    parser.add_argument("--metrics-prefix", default=None,
                        help="dynamic/serve: write the metrics registry as "
                             "<prefix>.prom and <prefix>.json after the run")
    parser.add_argument("--trace-out", default=None,
                        help="serve: stream the span trace to this JSON-lines file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    eps_sweep = (0.3, 0.2) if args.quick else (0.4, 0.35, 0.3, 0.25, 0.2, 0.15)
    table_eps = (0.3, 0.2) if args.quick else (0.3, 0.2, 0.15)
    k_values = (2, 4) if args.quick else (4, 8, 12, 16, 20)
    fig1_k = (1, 2, 3) if args.quick else (1, 2, 3, 4, 5)
    k = min(args.k, 4) if args.quick else args.k

    name = args.experiment
    if name in ("table2", "all"):
        run_table2(k=k, eps_values=table_eps, max_samples=args.max_samples,
                   seed=args.seed, scale=args.scale, output_json=args.output_json)
    if name in ("fig1", "all"):
        run_figure1(k_values=fig1_k, eps=args.eps, seed=args.seed,
                    output_json=args.output_json)
    if name in ("fig2", "all"):
        run_figure2(k_values=k_values, eps=args.eps, max_samples=args.max_samples,
                    seed=args.seed, scale=args.scale, output_json=args.output_json)
    if name in ("fig3", "all"):
        run_figure3(k_values=k_values, eps=args.eps, max_samples=args.max_samples,
                    seed=args.seed, scale=args.scale, output_json=args.output_json)
    if name in ("fig4", "all"):
        run_figure4(eps_values=eps_sweep, k=k, max_samples=args.max_samples,
                    seed=args.seed, scale=args.scale, output_json=args.output_json)
    if name in ("fig5", "all"):
        run_figure5(eps_values=eps_sweep, k=k, max_samples=args.max_samples,
                    seed=args.seed, scale=args.scale, output_json=args.output_json)
    if name == "dynamic":
        run_dynamic(k=k, eps=args.eps, max_samples=args.max_samples,
                    seed=args.seed, scale=args.scale, quick=args.quick,
                    batch=args.batch, node_churn=args.node_churn,
                    backend=args.backend, shards=args.shards,
                    output_json=args.output_json,
                    metrics_prefix=args.metrics_prefix)
    if name == "serve":
        row = run_service(ops=args.ops, rate=args.rate,
                          query_fraction=args.query_fraction, k=k,
                          eps=args.eps, node_churn=args.node_churn,
                          workers=args.workers, seed=args.seed,
                          backend=args.backend,
                          smoke=args.smoke, quick=args.quick,
                          output_json=args.output_json,
                          metrics_prefix=args.metrics_prefix,
                          trace_output=args.trace_out)
        return 1 if row["failures"] else 0
    if name == "worlds":
        result = run_worlds(count=args.count, events=args.events,
                            seed=args.seed, smoke=args.smoke,
                            quick=args.quick, faults=args.faults,
                            worlds_file=args.worlds,
                            output_json=args.output_json,
                            output_csv=args.output_csv,
                            metrics_prefix=args.metrics_prefix)
        return 1 if result["failures"] else 0
    return 0
