"""Table II — running-time comparison of all CFCM algorithms.

For every workload graph the harness reports the Table II metadata columns
(nodes, edges, diameter τ, auxiliary root-set size ``|T*|``) and the running
time of Exact, ApproxGreedy, ForestCFCM and SchurCFCM, the latter two for
each requested error parameter eps.  Exact (and, at full scale, ApproxGreedy)
are skipped on graphs where they are infeasible, mirroring the "-" entries of
the paper's table.

Expected qualitative shape (recorded in EXPERIMENTS.md): Exact drops out
first; SchurCFCM is never slower than ForestCFCM; the sampling methods' cost
grows roughly like ``eps^-2`` while ApproxGreedy's grows with the edge count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.networks import table2_suite
from repro.experiments.report import format_table, save_json
from repro.experiments.runner import RunSpec, run_method
from repro.graph.graph import Graph
from repro.graph.properties import extra_root_size
from repro.graph.traversal import diameter


def run_table2(graphs: Optional[Dict[str, Graph]] = None, k: int = 10,
               eps_values: Sequence[float] = (0.3, 0.2, 0.15),
               max_samples: int = 96, seed: int = 0,
               scale: str = "small", verbose: bool = True,
               output_json: Optional[str] = None) -> List[Dict[str, object]]:
    """Execute the Table II study and return one row dictionary per graph."""
    graphs = graphs if graphs is not None else table2_suite(scale)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        row: Dict[str, object] = {
            "network": name,
            "nodes": graph.n,
            "edges": graph.m,
            "tau": diameter(graph),
            "extra_roots": extra_root_size(graph, max_size=64),
        }
        exact = run_method(graph, k, RunSpec("exact"), seed=seed)
        row["exact_seconds"] = exact.runtime_seconds if exact else None
        approx = run_method(graph, k, RunSpec("approx", eps=0.2), seed=seed)
        row["approx_seconds"] = approx.runtime_seconds if approx else None
        for eps in eps_values:
            forest = run_method(
                graph, k, RunSpec("forest", eps=eps, max_samples=max_samples), seed=seed
            )
            schur = run_method(
                graph, k, RunSpec("schur", eps=eps, max_samples=max_samples), seed=seed
            )
            row[f"forest_{eps}_seconds"] = forest.runtime_seconds if forest else None
            row[f"schur_{eps}_seconds"] = schur.runtime_seconds if schur else None
        rows.append(row)
        if verbose:
            print(f"[table2] finished {name} (n={graph.n}, m={graph.m})")

    if verbose:
        print()
        print(render_table2(rows, eps_values))
    save_json(rows, output_json)
    return rows


def render_table2(rows: List[Dict[str, object]],
                  eps_values: Sequence[float] = (0.3, 0.2, 0.15)) -> str:
    """Format Table II rows as plain text."""
    headers = ["Network", "n", "m", "tau", "|T*|", "Exact", "Approx"]
    for eps in eps_values:
        headers.append(f"Forest({eps})")
    for eps in eps_values:
        headers.append(f"Schur({eps})")
    table_rows = []
    for row in rows:
        line: List[object] = [
            row["network"], row["nodes"], row["edges"], row["tau"],
            row["extra_roots"], row["exact_seconds"], row["approx_seconds"],
        ]
        for eps in eps_values:
            line.append(row.get(f"forest_{eps}_seconds"))
        for eps in eps_values:
            line.append(row.get(f"schur_{eps}_seconds"))
        table_rows.append(line)
    return format_table(headers, table_rows)
