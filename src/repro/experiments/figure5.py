"""Fig. 5 — solution quality relative to the exact greedy as a function of eps.

For each small graph and each eps, ForestCFCM and SchurCFCM select a group of
``k`` nodes; the relative difference between the CFCC of the exact greedy
group and the sampled group, ``(C_exact - C_method) / C_exact``, is reported.
Shape to reproduce: the difference shrinks as eps decreases and is negligible
by eps ≈ 0.2, with SchurCFCM at or below ForestCFCM across the sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.centrality.cfcc import group_cfcc
from repro.experiments.networks import eps_sweep_suite
from repro.experiments.report import format_series, save_json
from repro.experiments.runner import RunSpec, run_method
from repro.graph.graph import Graph


def run_figure5(graphs: Optional[Dict[str, Graph]] = None,
                eps_values: Sequence[float] = (0.4, 0.35, 0.3, 0.25, 0.2, 0.15),
                k: int = 10, max_samples: int = 128, seed: int = 0,
                scale: str = "small", verbose: bool = True,
                output_json: Optional[str] = None) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Run the Fig. 5 study; returns ``{graph: {method: {eps: rel. difference}}}``."""
    graphs = graphs if graphs is not None else eps_sweep_suite(scale)
    results: Dict[str, Dict[str, Dict[float, float]]] = {}
    for name, graph in graphs.items():
        exact = run_method(graph, k, RunSpec("exact"), seed=seed)
        if exact is None:
            continue
        exact_value = group_cfcc(graph, exact.group)
        per_method: Dict[str, Dict[float, float]] = {"ForestCFCM": {}, "SchurCFCM": {}}
        for eps in eps_values:
            for label, method in (("ForestCFCM", "forest"), ("SchurCFCM", "schur")):
                run = run_method(
                    graph, k, RunSpec(method, eps=eps, max_samples=max_samples),
                    seed=seed,
                )
                if run is None:
                    continue
                value = group_cfcc(graph, run.group)
                per_method[label][eps] = max(0.0, (exact_value - value) / exact_value)
        results[name] = per_method
        if verbose:
            print(format_series(
                f"Fig.5 {name} (n={graph.n}) [relative difference vs Exact]",
                per_method, x_label="eps",
            ))
            print()
    save_json(results, output_json)
    return results
