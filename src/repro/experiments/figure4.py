"""Fig. 4 — running time of ForestCFCM and SchurCFCM as a function of eps.

For each graph the two sampling algorithms are run with eps swept over
[0.4, 0.15].  The shape to reproduce: cost grows roughly like ``eps^-2``
(smaller eps means more JL directions and more sampled forests before the
Bernstein rule fires) and SchurCFCM stays at or below ForestCFCM, with its
advantage growing as eps shrinks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.networks import eps_sweep_suite
from repro.experiments.report import format_series, save_json
from repro.experiments.runner import RunSpec, run_method
from repro.graph.graph import Graph


def run_figure4(graphs: Optional[Dict[str, Graph]] = None,
                eps_values: Sequence[float] = (0.4, 0.35, 0.3, 0.25, 0.2, 0.15),
                k: int = 10, max_samples: int = 128, seed: int = 0,
                scale: str = "small", verbose: bool = True,
                output_json: Optional[str] = None) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Run the Fig. 4 study; returns ``{graph: {method: {eps: seconds}}}``."""
    graphs = graphs if graphs is not None else eps_sweep_suite(scale)
    results: Dict[str, Dict[str, Dict[float, float]]] = {}
    for name, graph in graphs.items():
        per_method: Dict[str, Dict[float, float]] = {"ForestCFCM": {}, "SchurCFCM": {}}
        for eps in eps_values:
            forest = run_method(
                graph, k, RunSpec("forest", eps=eps, max_samples=max_samples), seed=seed
            )
            schur = run_method(
                graph, k, RunSpec("schur", eps=eps, max_samples=max_samples), seed=seed
            )
            if forest is not None:
                per_method["ForestCFCM"][eps] = forest.runtime_seconds
            if schur is not None:
                per_method["SchurCFCM"][eps] = schur.runtime_seconds
        results[name] = per_method
        if verbose:
            print(format_series(f"Fig.4 {name} (n={graph.n}) [seconds]", per_method,
                                x_label="eps"))
            print()
    save_json(results, output_json)
    return results
