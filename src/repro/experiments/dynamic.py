"""Dynamic-engine workload study: incremental vs from-scratch latency.

Not a paper artefact — this experiment characterises the :mod:`repro.dynamic`
subsystem.  For several update:query ratios it runs an interleaved stream of
random mutations and CFCM queries twice:

* **engine** — through :class:`repro.dynamic.DynamicCFCM` (version-aware
  query cache, incremental grounded inverses folding each update burst in as
  one rank-``t`` Woodbury batch, selectively invalidated forest pools);
* **scratch** — recomputing everything from the current snapshot on every
  query (fresh ``maximize_cfcc`` plus a fresh dense evaluation).

Updates arrive in *bursts* of ``batch`` events between evaluations (the
bursty-stream regime where the rank-``t`` batching pays off), and a
``node_churn`` fraction of events mutate the node set instead of the edge
set (peers joining/leaving, intersections opening/closing).

The report shows where the incremental layer pays off: query-heavy streams
are dominated by cache hits, update-heavy streams by O(n²t) batched updates
replacing O(n³) factorisations.

Run with::

    python -m repro.experiments dynamic [--quick] [--seed 0] [--k 5]
        [--batch 8] [--node-churn 0.1]
"""

from __future__ import annotations

from repro.utils.timer import clock
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.centrality.api import maximize_cfcc
from repro.centrality.cfcc import group_cfcc
from repro.centrality.estimators import SamplingConfig
from repro.dynamic import DynamicCFCM, DynamicGraph, random_churn_journal
from repro.experiments.report import format_table, save_json
from repro.graph import generators


def run_dynamic(k: int = 5, eps: float = 0.3, max_samples: int = 48,
                seed: int = 0, scale: str = "small",
                ratios: Sequence[Tuple[int, int]] = ((8, 1), (2, 1), (1, 1), (1, 4)),
                rounds: int = 4, method: str = "exact",
                batch: int = 1, node_churn: float = 0.0,
                backend: str = "dense", shards: int = 1,
                verbose: bool = True, quick: bool = False,
                output_json: Optional[str] = None,
                metrics_prefix: Optional[str] = None) -> List[Dict[str, object]]:
    """Execute the update/query workload study; returns one row per ratio.

    Parameters
    ----------
    ratios:
        ``(updates, queries)`` pairs; each round applies that many random
        update *bursts* and then answers that many queries.
    method:
        CFCM method used for the queries (``"exact"`` keeps the comparison
        deterministic; the sampling methods work too).
    batch:
        Events per update burst; the incumbent group is re-evaluated once per
        burst, so the engine folds each burst in as one rank-``batch``
        Woodbury update.
    node_churn:
        Fraction of events that add/remove a node instead of an edge.
    backend:
        Resistance backend of the engine pass (``"dense"``, ``"sparse"`` or
        ``"auto"``); recorded on every row so the perf trajectory
        distinguishes the engines.
    shards:
        With ``shards > 1`` the engine pass runs through
        :class:`repro.distributed.ShardedCFCM` (one tracker per shard,
        queries stitched by the global Schur complement) instead of the
        single-tracker :class:`DynamicCFCM`; the scratch pass is unchanged,
        so the speedup column compares the sharded engine against the same
        from-scratch baseline.
    metrics_prefix:
        When given, the run records onto :data:`repro.obs.REGISTRY` and the
        registry is written as ``<prefix>.prom``/``<prefix>.json`` at the
        end; engine-op latency percentiles are attached to every row.
    """
    from repro import obs

    n = 160 if quick else (240 if scale == "small" else 600)
    rounds = 2 if quick else rounds
    batch = max(1, int(batch))
    config = SamplingConfig(eps=eps, max_samples=max_samples,
                            min_samples=min(8, max_samples))

    own_registry = metrics_prefix is not None and not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()

    rows: List[Dict[str, object]] = []
    for updates, queries in ratios:
        base = generators.barabasi_albert(n, 3, seed=seed)

        # Engine pass: after every update burst the incumbent group's CFCC is
        # re-evaluated through the incremental inverse (monitoring traffic);
        # selection queries go through the version-aware cache.
        rng = np.random.default_rng(seed)
        graph = DynamicGraph(base)
        if shards > 1:
            from repro.distributed import ShardedCFCM

            engine = ShardedCFCM(graph, shards=shards, seed=seed,
                                 config=config, backend=backend)
        else:
            engine = DynamicCFCM(graph, seed=seed, config=config,
                                 backend=backend)
        start = clock()
        group = engine.query(k, method=method, eps=eps).group
        for _ in range(rounds):
            for _ in range(updates):
                random_churn_journal(graph, batch, rng,
                                     node_probability=node_churn)
                group = [v for v in group if graph.has_node(v)]
                if group:
                    engine.evaluate_exact(group)
            for _ in range(queries):
                group = engine.query(k, method=method, eps=eps).group
        engine_seconds = clock() - start

        # Scratch pass: identical update stream (same rng seed), but the
        # monitoring evaluations re-invert the grounded Laplacian and every
        # query re-runs the batch algorithm on the current snapshot.
        rng = np.random.default_rng(seed)
        graph = DynamicGraph(base)
        start = clock()
        mapping = graph.snapshot_mapping()
        group = [int(mapping[v]) for v in
                 maximize_cfcc(graph.snapshot(), k, method=method, eps=eps,
                               seed=seed, config=config).group]
        for _ in range(rounds):
            for _ in range(updates):
                random_churn_journal(graph, batch, rng,
                                     node_probability=node_churn)
                group = [v for v in group if graph.has_node(v)]
                if group:
                    group_cfcc(graph.snapshot(), graph.compact_nodes(group))
            for _ in range(queries):
                mapping = graph.snapshot_mapping()
                group = [int(mapping[v]) for v in
                         maximize_cfcc(graph.snapshot(), k, method=method,
                                       eps=eps, seed=seed, config=config).group]
        scratch_seconds = clock() - start

        stats = engine.stats
        rows.append({
            "updates_per_round": updates,
            "queries_per_round": queries,
            "rounds": rounds,
            "batch": batch,
            "node_churn": node_churn,
            "backend": backend,
            "shards": shards,
            "engine_seconds": engine_seconds,
            "scratch_seconds": scratch_seconds,
            "speedup": scratch_seconds / engine_seconds if engine_seconds else None,
            "query_hits": stats.query_hits,
            "query_misses": stats.query_misses,
            "hit_rate": stats.hit_rate(),
            "batch_updates": stats.batch_updates,
            "batched_events": stats.batched_events,
            "forests_reweighted": stats.forests_reweighted,
            "forests_dropped": stats.forests_dropped,
            "ess_topups": stats.ess_topups,
            "pools_flushed": stats.pools_flushed,
        })
        if metrics_prefix is not None:
            op_seconds = obs.REGISTRY.get("repro_engine_op_seconds")
            if op_seconds is not None:
                rows[-1]["engine_op_latency"] = {
                    "p50_ms": op_seconds.percentile(50) * 1e3,
                    "p95_ms": op_seconds.percentile(95) * 1e3,
                    "p99_ms": op_seconds.percentile(99) * 1e3,
                }
        if verbose:
            print(f"[dynamic] ratio {updates}:{queries} finished "
                  f"(engine {engine_seconds:.3f}s, scratch {scratch_seconds:.3f}s)")

    if metrics_prefix is not None:
        from repro.experiments.report import write_obs_artifacts

        write_obs_artifacts(metrics_prefix, label="dynamic")
        if own_registry:
            obs.REGISTRY.disable()
    if verbose:
        print()
        print(render_dynamic(rows, n=n, k=k, method=method))
    save_json(rows, output_json)
    return rows


def render_dynamic(rows: List[Dict[str, object]], n: int, k: int,
                   method: str) -> str:
    """Format the workload rows as plain text."""
    headers = ["updates:queries", "engine(s)", "scratch(s)", "speedup",
               "hits", "misses", "hit rate", "batches", "batched ev"]
    table_rows = []
    for row in rows:
        table_rows.append([
            f"{row['updates_per_round']}:{row['queries_per_round']}",
            row["engine_seconds"], row["scratch_seconds"], row["speedup"],
            row["query_hits"], row["query_misses"], row["hit_rate"],
            row["batch_updates"], row["batched_events"],
        ])
    first = rows[0] if rows else {"batch": 1, "node_churn": 0.0}
    title = (f"Dynamic engine vs from-scratch recomputation "
             f"(n={n}, k={k}, method={method}, batch={first['batch']}, "
             f"node_churn={first['node_churn']})")
    return f"{title}\n" + format_table(headers, table_rows)
