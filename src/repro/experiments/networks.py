"""Workload graphs for the experiment harness.

Every graph is a synthetic stand-in for one of the paper's real datasets
(Table II / Fig. 1-5), scaled so that the whole harness runs on a laptop in
pure Python.  Two scales are provided:

* ``"small"`` (default) — hundreds to ~1500 nodes; every experiment,
  including the exact baselines, completes in minutes.
* ``"full"`` — the larger stand-ins registered in
  :mod:`repro.graph.datasets` (thousands to ~16k nodes); exact baselines are
  skipped automatically where infeasible.

The mapping of stand-in → paper dataset is part of the reproduction contract
and documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph import datasets, generators
from repro.graph.graph import Graph

SCALES = ("small", "full")


def tiny_suite() -> Dict[str, Graph]:
    """The four Fig. 1 graphs (23-62 nodes)."""
    return datasets.tiny_suite()


def small_suite(scale: str = "small") -> Dict[str, Graph]:
    """Six small graphs mirroring the paper's Fig. 2 / Fig. 5 datasets."""
    if scale == "small":
        return {
            "Hamsterster": generators.powerlaw_cluster(450, 8, 0.3, seed=102),
            "web-EPA": generators.barabasi_albert(500, 2, seed=103),
            "Routeviews": generators.barabasi_albert(600, 2, seed=104),
            "soc-PagesGov": generators.powerlaw_cluster(650, 10, 0.3, seed=105),
            "Astro-Ph": generators.powerlaw_cluster(700, 8, 0.3, seed=106),
            "EmailEnron": generators.powerlaw_cluster(800, 5, 0.3, seed=107),
        }
    if scale == "full":
        names = ["Hamsterster", "web-EPA", "Routeviews", "soc-PagesGov",
                 "Astro-Ph", "EmailEnron"]
        return {name: datasets.paper_network(name) for name in names}
    raise InvalidParameterError(f"unknown scale {scale!r}; valid scales: {SCALES}")


def medium_suite(scale: str = "small") -> Dict[str, Graph]:
    """Four larger graphs mirroring the paper's Fig. 3 datasets."""
    if scale == "small":
        return {
            "Livemocha": generators.powerlaw_cluster(900, 14, 0.2, seed=201),
            "WordNet": generators.barabasi_albert(1100, 4, seed=202),
            "Gowalla": generators.barabasi_albert(1300, 5, seed=203),
            "com-DBLP": generators.powerlaw_cluster(1500, 3, 0.5, seed=204),
        }
    if scale == "full":
        names = ["Livemocha", "WordNet", "Gowalla", "com-DBLP"]
        return {name: datasets.paper_network(name) for name in names}
    raise InvalidParameterError(f"unknown scale {scale!r}; valid scales: {SCALES}")


def sparse_suite(scale: str = "small") -> Dict[str, Graph]:
    """Sparse / infrastructure-style graphs used by Table II and Fig. 4."""
    if scale == "small":
        return {
            "Euroroads": generators.watts_strogatz(400, 4, 0.05, seed=301),
            "GR-QC": generators.powerlaw_cluster(550, 3, 0.4, seed=302),
            "CAIDA": generators.barabasi_albert(900, 2, seed=303),
        }
    if scale == "full":
        names = ["Euroroads", "GR-QC", "CAIDA"]
        return {name: datasets.paper_network(name) for name in names}
    raise InvalidParameterError(f"unknown scale {scale!r}; valid scales: {SCALES}")


def table2_suite(scale: str = "small") -> Dict[str, Graph]:
    """Graphs for the Table II timing study (sparse + small + medium tiers)."""
    combined: Dict[str, Graph] = {}
    combined.update(sparse_suite(scale))
    combined.update(small_suite(scale))
    combined.update(medium_suite(scale))
    return combined


def eps_sweep_suite(scale: str = "small") -> Dict[str, Graph]:
    """Graphs for the eps-sweep studies (Fig. 4 / Fig. 5)."""
    small = small_suite(scale)
    sparse = sparse_suite(scale)
    picked: Dict[str, Graph] = {}
    for name in ("Euroroads", "GR-QC", "CAIDA"):
        if name in sparse:
            picked[name] = sparse[name]
    for name in ("soc-PagesGov", "EmailEnron", "Routeviews"):
        if name in small:
            picked[name] = small[name]
    return picked


def experiment_suite(name: str, scale: str = "small") -> Dict[str, Graph]:
    """Look up a suite by name (``tiny/small/medium/sparse/table2/eps``)."""
    suites = {
        "tiny": lambda: tiny_suite(),
        "small": lambda: small_suite(scale),
        "medium": lambda: medium_suite(scale),
        "sparse": lambda: sparse_suite(scale),
        "table2": lambda: table2_suite(scale),
        "eps": lambda: eps_sweep_suite(scale),
    }
    if name not in suites:
        raise InvalidParameterError(
            f"unknown suite {name!r}; available: {sorted(suites)}"
        )
    return suites[name]()


def suite_summaries(graphs: Dict[str, Graph]) -> List[Tuple[str, int, int]]:
    """Compact (name, n, m) listing of a suite, for report headers."""
    return [(name, graph.n, graph.m) for name, graph in graphs.items()]
