"""Async service workload study: throughput/latency under Poisson traffic.

Not a paper artefact — this experiment characterises
:class:`repro.service.AsyncCFCMService`.  A Poisson stream of mixed traffic
(selection queries, monitoring evaluations, random update bursts with
optional node churn) is replayed against the service; the report shows
throughput, query-latency percentiles and how far the writer coalesced the
update stream into rank-``t`` batches.

With ``--smoke`` the run doubles as a correctness gate: a sample of the
version-tagged responses is re-checked against a *fresh synchronous*
:class:`repro.dynamic.DynamicCFCM` on the journal replayed to the same
version (tolerance 1e-8 on the exact paths), and the process exits non-zero
on any mismatch — this is what CI executes.

Run with::

    python -m repro.experiments serve [--smoke] [--ops 200] [--rate 500]
        [--query-fraction 0.5] [--workers 2] [--node-churn 0.1]
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.dynamic import DynamicCFCM, TrafficReport, poisson_traffic, replay_events
from repro.experiments.report import format_table, save_json
from repro.graph import generators
from repro.graph.graph import Graph
from repro.service import AsyncCFCMService
from repro.utils.timer import clock


async def _drive(
    base: Graph,
    ops: int,
    rate: float,
    query_fraction: float,
    k: int,
    eps: float,
    node_churn: float,
    workers: int,
    seed: int,
    backend: Optional[str],
) -> Tuple[TrafficReport, float, int, float, Dict, Dict, Tuple[int, ...]]:
    """Replay one Poisson traffic stream; returns the raw measurements."""
    monitor = tuple(range(min(3, base.n - 1)))
    kwargs: Dict[str, object] = {}
    if backend is not None:
        kwargs["backend"] = backend
    async with AsyncCFCMService(base, seed=seed, workers=workers, **kwargs) as service:
        started = clock()
        report = await poisson_traffic(
            service,
            ops,
            rng=seed,
            rate=rate,
            query_fraction=query_fraction,
            node_probability=node_churn,
            k=k,
            method="exact",
            eps=eps,
            monitor_group=monitor,
        )
        wall = clock() - started
        final = await service.evaluate(monitor, mode="exact")
        if service.graph.is_unit_weighted:
            # Exercise the forest path once so the trace/metrics of a smoke
            # run cover the full pipeline (top-up → lockstep → fold), not
            # just the exact Woodbury path the monitoring traffic uses.
            await service.prefetch_forests(monitor)
            await service.evaluate(monitor, mode="forest")
        service_stats = service.stats.as_dict()
        engine_stats = service.engine.stats.as_dict()
    return (
        report,
        float(final.result),
        final.version,
        wall,
        service_stats,
        engine_stats,
        monitor,
    )


def _verify_equivalence(
    base: Graph,
    report: TrafficReport,
    final_value: float,
    final_version: int,
    monitor: Tuple[int, ...],
    max_checks: int = 8,
) -> List[str]:
    """Re-check a sample of responses against a fresh synchronous engine."""
    failures: List[str] = []
    observations = list(report.eval_observations)
    if len(observations) > max_checks:
        stride = max(1, len(observations) // max_checks)
        observations = observations[::stride][:max_checks]
    observations.append((final_version, final_value))
    for version, value in observations:
        replayed = replay_events(base, report.events, upto_version=version)
        expected = DynamicCFCM(replayed, seed=0).evaluate_exact(monitor)
        if not abs(value - expected) <= 1e-8 * max(1.0, abs(expected)):
            failures.append(
                f"evaluation at version {version} returned {value!r}, "
                f"fresh synchronous engine returns {expected!r}"
            )
    for version, group in report.query_observations[:max_checks]:
        replayed = replay_events(base, report.events, upto_version=version)
        expected = DynamicCFCM(replayed, seed=0).query(len(group), method="exact", eps=0.3)
        if list(group) != list(expected.group):
            failures.append(
                f"selection at version {version} returned group {list(group)}, "
                f"fresh synchronous engine returns {list(expected.group)}"
            )
    return failures


def run_service(
    ops: int = 200,
    rate: float = 500.0,
    query_fraction: float = 0.5,
    k: int = 4,
    eps: float = 0.3,
    node_churn: float = 0.0,
    workers: int = 2,
    seed: int = 0,
    backend: Optional[str] = None,
    n: int = 240,
    smoke: bool = False,
    quick: bool = False,
    verbose: bool = True,
    output_json: Optional[str] = None,
    metrics_prefix: Optional[str] = None,
    trace_output: Optional[str] = None,
) -> Dict[str, object]:
    """Execute the service study; returns one row (with a ``failures`` list).

    ``backend`` selects the resistance backend of the serving engine
    (``"dense"``, ``"sparse"`` or ``"auto"``); ``None`` keeps the service
    default.  ``smoke`` shrinks the workload and enables the equivalence
    gate: any mismatch against the fresh synchronous engine lands in
    ``failures`` and the CLI exits non-zero.  The run records into
    :mod:`repro.obs`: latency
    percentiles and the coalescing batch-size histogram are read back from
    the registry, ``metrics_prefix`` writes ``<prefix>.prom``/``<prefix>.json``
    exposition artifacts, and ``trace_output`` streams the span trace as
    JSON-lines.
    """
    if quick or smoke:
        n = min(n, 140)
        ops = min(ops, 80)
        k = min(k, 3)
    base = generators.barabasi_albert(n, 3, seed=seed)

    # Observe the run on the default registry + a fresh tracer; restore the
    # previous observability state afterwards so callers (tests, notebooks)
    # are not left with recording switched on.
    own_registry = not obs.REGISTRY.enabled
    if own_registry:
        obs.REGISTRY.reset()
        obs.REGISTRY.enable()
    tracer = obs.enable_tracing(jsonl_path=trace_output)
    try:
        measured = asyncio.run(
            _drive(base, ops, rate, query_fraction, k, eps, node_churn, workers, seed, backend)
        )
        report, final_value, final_version, wall, service_stats, engine_stats, monitor = measured

        # Registered at service-module import, so get() cannot miss here.
        request_seconds = obs.REGISTRY.get("repro_service_request_seconds")
        batch_sizes = obs.REGISTRY.get("repro_service_update_batch_size")
        query_lat = {
            q: request_seconds.percentile(q, kind="query") for q in (50.0, 95.0, 99.0)
        }
        update_lat = report.latency_percentiles("update")
        if metrics_prefix:
            from repro.experiments.report import write_obs_artifacts

            write_obs_artifacts(metrics_prefix, label="serve")
        span_names = [span["name"] for span in tracer.spans()]
    finally:
        obs.disable_tracing()
        if own_registry:
            obs.REGISTRY.disable()

    failures: List[str] = []
    if smoke:
        failures = _verify_equivalence(base, report, final_value, final_version, monitor)

    answered = report.queries + report.evaluations
    completed = answered + report.updates_applied + report.updates_failed
    row: Dict[str, object] = {
        "n": n,
        "ops": ops,
        "rate": rate,
        "query_fraction": query_fraction,
        "node_churn": node_churn,
        "workers": workers,
        "backend": backend or "dense",
        "wall_seconds": wall,
        "throughput_ops_per_s": completed / wall if wall else None,
        "queries": report.queries,
        "evaluations": report.evaluations,
        "updates_applied": report.updates_applied,
        "updates_failed": report.updates_failed,
        "updates_rejected": report.updates_rejected,
        "query_p50_ms": query_lat[50.0] * 1e3,
        "query_p95_ms": query_lat[95.0] * 1e3,
        "query_p99_ms": query_lat[99.0] * 1e3,
        "update_p95_ms": update_lat["p95"] * 1e3,
        "batch_size_histogram": batch_sizes.summary(),
        "final_version": final_version,
        "mean_batch_size": service_stats["mean_batch_size"],
        "engine_batched_events": engine_stats["batched_events"],
        "engine_hit_rate": engine_stats["hit_rate"],
        "trace_spans": len(span_names),
        "failures": failures,
    }
    if verbose:
        print(render_service(row))
        if smoke:
            if failures:
                for failure in failures:
                    print(f"[serve] SMOKE FAILURE: {failure}")
            else:
                print(
                    "[serve] smoke equivalence OK: async responses match a "
                    "fresh synchronous engine at the same journal version"
                )
    save_json(row, output_json)
    return row


def render_service(row: Dict[str, object]) -> str:
    """Format the service study row as plain text."""
    headers = [
        "ops",
        "wall(s)",
        "ops/s",
        "q p50(ms)",
        "q p95(ms)",
        "q p99(ms)",
        "batch size",
        "hit rate",
    ]
    table_rows = [
        [
            f"{row['queries']}q/{row['evaluations']}e/{row['updates_applied']}u",
            row["wall_seconds"],
            row["throughput_ops_per_s"],
            row["query_p50_ms"],
            row["query_p95_ms"],
            row["query_p99_ms"],
            row["mean_batch_size"],
            row["engine_hit_rate"],
        ]
    ]
    title = (
        f"Async CFCM service under Poisson traffic (n={row['n']}, "
        f"rate={row['rate']}/s, query_fraction={row['query_fraction']}, "
        f"workers={row['workers']}, node_churn={row['node_churn']})"
    )
    return f"{title}\n" + format_table(headers, table_rows)
