"""Shared plumbing for running CFCM methods inside the experiment harness."""

from __future__ import annotations

from repro.utils.timer import clock
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.centrality.api import maximize_cfcc
from repro.centrality.cfcc import group_cfcc, group_cfcc_estimate
from repro.centrality.estimators import SamplingConfig
from repro.centrality.result import CFCMResult
from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph

# Practical feasibility limits for the dense / solver-based baselines,
# mirroring the "-" entries of Table II where Exact and ApproxGreedy become
# infeasible on larger graphs.
EXACT_NODE_LIMIT = 2500
APPROX_NODE_LIMIT = 20000


@dataclass
class RunSpec:
    """One (method, eps) configuration to execute."""

    method: str
    eps: float = 0.2
    label: Optional[str] = None
    max_samples: int = 96

    @property
    def name(self) -> str:
        return self.label or self.method


def sampling_config(eps: float, max_samples: int) -> SamplingConfig:
    """Harness-wide sampling configuration for the randomised methods."""
    return SamplingConfig(eps=eps, max_samples=max_samples,
                          min_samples=min(16, max_samples),
                          initial_batch=min(16, max_samples))


def run_method(graph: Graph, k: int, spec: RunSpec, seed: int = 0
               ) -> Optional[CFCMResult]:
    """Run one method, returning ``None`` when it is infeasible for the graph.

    Mirrors the "-" entries of Table II: the dense Exact baseline and the
    exhaustive Optimum are skipped on graphs beyond their practical limits
    (including the ``n choose k`` cap of the brute force).
    """
    if spec.method in ("exact", "optimum") and graph.n > EXACT_NODE_LIMIT:
        return None
    if spec.method == "approx" and graph.n > APPROX_NODE_LIMIT:
        return None
    config = None
    if spec.method in ("forest", "schur"):
        config = sampling_config(spec.eps, spec.max_samples)
    start = clock()
    try:
        result = maximize_cfcc(graph, k, method=spec.method, eps=spec.eps,
                               seed=seed, config=config)
    except InvalidParameterError:
        # e.g. brute-force optimum beyond its candidate cap.
        return None
    result.runtime_seconds = clock() - start
    return result


def evaluate_cfcc(graph: Graph, group: Sequence[int], exact_limit: int = 2500,
                  probes: int = 32, seed: int = 0) -> float:
    """Exact CFCC for small graphs, Hutchinson/CG estimate for larger ones."""
    if graph.n <= exact_limit:
        return group_cfcc(graph, group)
    return group_cfcc_estimate(graph, group, probes=probes, seed=seed)


def methods_for_effectiveness(include_exact: bool, eps: float = 0.2,
                              max_samples: int = 96) -> Dict[str, RunSpec]:
    """Standard method line-up of the effectiveness figures."""
    specs = {
        "Top-CFCC": RunSpec("top-cfcc", label="Top-CFCC"),
        "Degree": RunSpec("degree", label="Degree"),
        "Approx": RunSpec("approx", eps=eps, label="Approx"),
        "Forest": RunSpec("forest", eps=eps, label="Forest", max_samples=max_samples),
        "Schur": RunSpec("schur", eps=eps, label="Schur", max_samples=max_samples),
    }
    if include_exact:
        specs = {"Exact": RunSpec("exact", label="Exact"), **specs}
    return specs
