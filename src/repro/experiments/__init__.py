"""Experiment harness regenerating every table and figure of the paper.

Each module corresponds to one artefact of the evaluation section:

==============  ==========================================================
Module          Paper artefact
==============  ==========================================================
``table2``      Table II — running time of Exact / ApproxGreedy /
                ForestCFCM / SchurCFCM across graphs and eps values
``figure1``     Fig. 1 — greedy vs brute-force optimum on tiny graphs
``figure2``     Fig. 2 — CFCC vs k on small graphs (all methods)
``figure3``     Fig. 3 — CFCC vs k on larger graphs (no exact baseline)
``figure4``     Fig. 4 — running time as a function of eps
``figure5``     Fig. 5 — solution quality relative to Exact vs eps
``dynamic``     (beyond the paper) incremental engine vs from-scratch
                recomputation across update/query ratios
``worlds``      (beyond the paper) scenario sweep over sampled topology x
                churn x traffic x backend worlds with accuracy/ESS gates
==============  ==========================================================

Run them from the command line::

    python -m repro.experiments table2 --scale small
    python -m repro.experiments fig1
    python -m repro.experiments all --quick

Graphs are synthetic stand-ins for the paper's datasets (see DESIGN.md);
``--scale`` selects how large the stand-ins are.
"""

from repro.experiments.networks import (
    experiment_suite,
    small_suite,
    medium_suite,
    tiny_suite,
)
from repro.experiments.dynamic import run_dynamic
from repro.experiments.table2 import run_table2
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.worlds import run_worlds

__all__ = [
    "experiment_suite",
    "small_suite",
    "medium_suite",
    "tiny_suite",
    "run_table2",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_dynamic",
    "run_worlds",
]
