"""Fig. 3 — effectiveness on larger graphs where exact greedy is infeasible.

Same protocol as Fig. 2 but without the Exact baseline and with CFCC of the
selected groups evaluated through the sparse-solver estimate (the conjugate
gradient route the paper uses).  Shape to reproduce: SchurCFCM delivers the
highest CFCC throughout, Degree and Top-CFCC trail.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.networks import medium_suite
from repro.experiments.report import format_series, save_json
from repro.experiments.runner import methods_for_effectiveness, run_method, evaluate_cfcc
from repro.graph.graph import Graph


def run_figure3(graphs: Optional[Dict[str, Graph]] = None,
                k_values: Sequence[int] = (4, 8, 12, 16, 20),
                eps: float = 0.2, max_samples: int = 64, seed: int = 0,
                scale: str = "small", exact_eval_limit: int = 2500,
                verbose: bool = True,
                output_json: Optional[str] = None) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Run the Fig. 3 study; returns ``{graph: {method: {k: cfcc}}}``."""
    graphs = graphs if graphs is not None else medium_suite(scale)
    specs = methods_for_effectiveness(include_exact=False, eps=eps,
                                      max_samples=max_samples)
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, graph in graphs.items():
        per_method: Dict[str, Dict[int, float]] = {label: {} for label in specs}
        for label, spec in specs.items():
            run = run_method(graph, max(k_values), spec, seed=seed)
            if run is None:
                continue
            for k in k_values:
                per_method[label][k] = evaluate_cfcc(
                    graph, run.prefix(k), exact_limit=exact_eval_limit, seed=seed
                )
        results[name] = per_method
        if verbose:
            print(format_series(f"Fig.3 {name} (n={graph.n})", per_method))
            print()
    save_json(results, output_json)
    return results
