"""Per-shard state: a mirrored dynamic subgraph plus its own CFCM engine.

Each shard owns the *interior* of one partition part and replicates the
whole separator ``T`` read-only.  The mirror is a
:class:`repro.dynamic.DynamicGraph` over ``interior ∪ T`` holding

* every real edge with at least one interior endpoint (by the partition
  invariant both endpoints of such an edge live in ``interior ∪ T``), and
* a *virtual chain* of unit edges linking consecutive separator nodes.

The chain exists purely to satisfy the connectivity guard: separator
nodes are grounded in every per-shard tracker, and grounded-row edges
never enter the kept block ``A_i = L[U_i, U_i]`` nor the non-root arrow
distribution of rooted forests, so the virtual edges are invisible to all
per-shard answers.  Separator–separator *real* edges are deliberately not
mirrored — they belong to the global Schur complement, and keeping them
out means a separator edge event touches exactly zero mirrors.

The shard's query/maintenance machinery is a full
:class:`repro.dynamic.DynamicCFCM` over the mirror (with adaptive ESS
floors on — shard pools see concentrated churn), so per-shard trackers,
forest pools, journal compaction and health reporting are all inherited
rather than reimplemented.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.centrality.estimators import SamplingConfig
from repro.dynamic.engine import DynamicCFCM
from repro.dynamic.graph import ADD, REMOVE, REWEIGHT, DynamicGraph, GraphUpdate
from repro.graph.graph import Graph


class ShardState:
    """One shard: interior ownership, separator mirror, dynamic engine.

    Parameters
    ----------
    graph:
        The *global* dynamic graph (read at construction time only; later
        changes arrive through :meth:`forward`).
    index:
        This shard's part index.
    interior:
        Stable global ids of the interior nodes owned by this shard.
    separator:
        Stable global ids of the full separator ``T`` (replicated).
    seed, config, pool_size, refresh_interval, cache_capacity, backend,
    backend_options:
        Forwarded to the shard's :class:`DynamicCFCM`.
    """

    def __init__(self, graph: DynamicGraph, index: int,
                 interior: Sequence[int], separator: Sequence[int],
                 seed: int = 0, config: Optional[SamplingConfig] = None,
                 pool_size: int = 24, refresh_interval: int = 64,
                 cache_capacity: int = 64, ess_floor: float = 0.5,
                 backend: str = "dense",
                 backend_options: Optional[Dict[str, object]] = None):
        self.index = int(index)
        self.interior = tuple(sorted(int(x) for x in interior))
        self.separator = tuple(sorted(int(x) for x in separator))
        self.interior_set = frozenset(self.interior)

        # Mirror node universe: interiors first is NOT required — local ids
        # follow the sorted global id order so lookups stay branch-free.
        members = sorted(self.interior + self.separator)
        self.g2l: Dict[int, int] = {g: i for i, g in enumerate(members)}
        self.l2g: Tuple[int, ...] = tuple(members)

        edges: List[Tuple[int, int]] = []
        weights: Dict[Tuple[int, int], float] = {}
        for u in self.interior:
            lu = self.g2l[u]
            for v in graph.neighbors(u):
                lv = self.g2l[v]
                if v in self.interior_set and v < u:
                    continue  # interior-interior edges once
                key = (lu, lv) if lu < lv else (lv, lu)
                edges.append(key)
                weights[key] = graph.weight(u, v)
        # Virtual connectivity chain over the separator replica.  A chain
        # link may shadow a real separator-separator edge; that is fine —
        # real T-T edges are never mirrored, so no event ever collides
        # with a chain link.
        sep_local = [self.g2l[t] for t in self.separator]
        for a, b in zip(sep_local, sep_local[1:]):
            key = (a, b) if a < b else (b, a)
            if key not in weights:
                edges.append(key)
                weights[key] = 1.0

        mirror = DynamicGraph(Graph(len(members), edges), weights=weights)
        self.mirror = mirror
        self.engine = DynamicCFCM(
            mirror, seed=seed, config=config, pool_size=pool_size,
            refresh_interval=refresh_interval, cache_capacity=cache_capacity,
            ess_floor=ess_floor, adaptive_ess_floor=True,
            backend=backend, backend_options=backend_options,
        )

    @property
    def n_interior(self) -> int:
        return len(self.interior)

    def owns(self, node: int) -> bool:
        """Whether ``node`` is interior to this shard."""
        return int(node) in self.interior_set

    def local(self, node: int) -> int:
        """Mirror-local stable id of a global node in this shard's universe."""
        return self.g2l[int(node)]

    def forward(self, event: GraphUpdate) -> None:
        """Replay one global *edge* event onto the mirror.

        Only called for events with at least one interior endpoint; by the
        partition invariant both endpoints are then mirror members.  The
        mirror's own journal records the translated event, which is how
        the shard engine's trackers and pools pick it up lazily.
        """
        u = self.g2l[event.u]
        v = self.g2l[event.v]
        if event.kind == ADD:
            self.mirror.add_edge(u, v, event.weight)
        elif event.kind == REMOVE:
            self.mirror.remove_edge(u, v)
        elif event.kind == REWEIGHT:
            self.mirror.update_weight(u, v, event.weight)
        else:  # pragma: no cover - engine classifies node events as structural
            raise ValueError(f"cannot forward node event {event.kind!r}")

    def grounded_group(self, group: Sequence[int]) -> Tuple[int, ...]:
        """Mirror-local grounded set for global group ``group``.

        Every separator replica is grounded (its rows belong to the global
        Schur complement), plus any group member interior to this shard.
        """
        grounded = [self.g2l[t] for t in self.separator]
        grounded.extend(self.g2l[s] for s in group if s in self.interior_set)
        return tuple(sorted(grounded))

    def kept_rows(self, group: Sequence[int]) -> np.ndarray:
        """Mirror-local ids of the rows a tracker for ``group`` would keep."""
        grounded = set(self.grounded_group(group))
        return np.array([i for i in range(len(self.l2g))
                         if i not in grounded], dtype=np.int64)
