"""ShardedCFCM: per-shard trackers stitched by a global Schur complement.

Order the grounded global Laplacian ``L_{-S}`` as ``[U, T']`` where ``U``
concatenates the shard interiors (minus ``S``) and ``T' = T \\ S`` is the
live separator.  The partition invariant (:mod:`repro.distributed.partition`)
makes the interior block *block diagonal by shard*::

    L_{-S} = [[ A,  W  ],        A  = blockdiag(A_1 … A_p)
              [ Wᵀ, L_TT]]       W  = stacked interior–separator couplings

so with per-shard grounded inverses ``A_i⁻¹`` (each served by one
:class:`repro.dynamic.IncrementalResistance` inside a per-shard
:class:`repro.dynamic.DynamicCFCM` over the shard mirror) the whole global
inverse is reachable through one dense ``|T'| × |T'|`` Schur complement::

    S_c = L_TT − Σ_i W_iᵀ A_i⁻¹ W_i = L_TT − Σ_i C_i,      M = S_c⁻¹
    (L_{-S}⁻¹)_TT = M
    (L_{-S}⁻¹)_UU = A⁻¹ + (A⁻¹W) M (A⁻¹W)ᵀ

Traces add (``Tr = Σ_i Tr(A_i⁻¹) + Tr(M) + Σ_i Tr(M·W_iᵀA_i⁻²W_i)``), and a
single node's resistance to ``S`` is its tracker diagonal plus an ``xᵀMx``
correction with ``x = W_iᵀ A_i⁻¹ e_u`` — one per-shard column solve, exact on
every backend.

**Deferred stitching.**  Events are O(1) at update time: the engine
classifies each journal event and forwards it to the owning shard's mirror;
all Schur maintenance waits until a query folds the pending burst.  A fold
over ``k`` events on shard ``i`` syncs the tracker (``A_i,old → A_i,new``
with ``A_new = A_old + B D Bᵀ``), recovers the *pre*-burst inverse through
one Woodbury identity

    ``A_old⁻¹ = A_new⁻¹ + V H Vᵀ``, ``V = A_new⁻¹B``, ``H = (D⁻¹ − BᵀV)⁻¹``

(the sparse backend hands ``V`` over for free from its accumulated
correction columns — :meth:`ResistanceBackend.correction_columns`), and
updates the cached coupling block exactly::

    C_new = C_old − G H Gᵀ + (E + Eᵀ) − F,   G = W_oldᵀV,
    E = ΔWᵀA_new⁻¹W_new,  F = ΔWᵀA_new⁻¹ΔW

where ``ΔW`` collects the burst's interior–separator weight changes (a few
extra column solves at most).  Every term is low rank, so the Schur
complement moves by ``P Λ Pᵀ`` and ``M`` follows by one block Woodbury —
never a fresh ``|T'|³`` inversion on the hot path (a periodic refresh from
the exactly-maintained ``S_c`` keeps float drift bounded).

Separator–separator events never touch a shard: they fold into ``L_TT``
(rank one each).  Node events and cross-part interior edge insertions are
*structural*: the engine re-partitions from inherited homes and rebuilds the
shards (forest pools restart; everything exact is rebuilt from the graph).

Per-shard folds, traces and pool work fan out over a
:class:`repro.distributed.executor.ShardExecutor`; the serial default is
deterministic and, on a single core, fastest — the sharding win there comes
from solver locality (factor and solve costs scale superlinearly in n, so
four quarter-sized trackers beat one full-sized one even back to back).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.centrality.estimators import SamplingConfig
from repro.centrality.result import CFCMResult
from repro.distributed.executor import ShardExecutor, make_executor
from repro.distributed.partition import (
    Partition,
    assign_homes,
    partition_from_home,
    partition_graph,
)
from repro.distributed.shard import ShardState
from repro.dynamic.engine import EngineStats, _lru_store, _op_timer
from repro.dynamic.graph import REMOVE, DynamicGraph, GraphUpdate
from repro.exceptions import GraphError, InvalidParameterError
from repro.graph.graph import Graph
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import trace
from repro.utils.rng import RandomState, as_rng
from repro.utils.timer import clock
from repro.utils.validation import check_integer

# Sharded-engine metrics (no-ops until the default registry is enabled).
_SYNC_SECONDS = REGISTRY.histogram(
    "repro_shard_sync_seconds",
    "Wall time of one per-shard fold (tracker sync + coupling algebra)",
    labels=("shard",),
)
_STITCH_SECONDS = REGISTRY.histogram(
    "repro_shard_stitch_seconds",
    "Wall time of one full Schur stitch (all dirty shards + M update)",
)
_SHARD_COUNT = REGISTRY.gauge(
    "repro_shard_count", "Number of shards of the sharded engine",
)
_SEPARATOR_NODES = REGISTRY.gauge(
    "repro_shard_separator_nodes", "Current vertex-separator size |T|",
)
_INTERIOR_NODES = REGISTRY.gauge(
    "repro_shard_interior_nodes", "Interior nodes owned by one shard",
    labels=("shard",),
)
_EVENTS_TOTAL = REGISTRY.counter(
    "repro_shard_events_total",
    "Journal events routed to one shard ('separator' = T-T events)",
    labels=("shard",),
)
_REBUILDS_TOTAL = REGISTRY.counter(
    "repro_shard_rebuilds_total",
    "Structural re-partitions (node events, cross-part insertions)",
)
_SCHUR_REFRESHES_TOTAL = REGISTRY.counter(
    "repro_shard_schur_refreshes_total",
    "Full recomputations of M = inv(Schur) (rank budget or singular fold)",
)


class _StitchInvalid(Exception):
    """A fold could not be applied incrementally; rebuild the group state."""


class _GroupState:
    """Stitch state of one grounded group ``S``: couplings, Schur, inverse.

    All arrays are indexed by ``tprime`` position (the sorted live separator
    ``T \\ S``).  Per participating shard it holds the tracker handle, the
    kept-row order it was built against, the sparse coupling ``W_i`` as a
    ``{(row, tcol): -w}`` dict (with a cached CSR), and the dense coupling
    block ``C_i = W_iᵀA_i⁻¹W_i``.  ``cursor`` points into the engine's
    event log: everything before it is folded in.
    """

    def __init__(self, engine: "ShardedCFCM", key: Tuple[int, ...]):
        self.key = key
        self.sset = frozenset(key)
        graph = engine.graph
        part = engine.partition
        self.tprime: Tuple[int, ...] = tuple(
            t for t in part.separator if t not in self.sset
        )
        self.tpos: Dict[int, int] = {t: i for i, t in enumerate(self.tprime)}
        tp = len(self.tprime)

        # Grounded separator block of the *global* Laplacian: full weighted
        # degrees on the diagonal, -w couplings inside T'.
        ltt = np.zeros((tp, tp), dtype=np.float64)
        for t in self.tprime:
            a = self.tpos[t]
            for nb in graph.neighbors(t):
                w = graph.weight(t, nb)
                ltt[a, a] += w
                b = self.tpos.get(nb)
                if b is not None:
                    ltt[a, b] -= w

        self.trackers: Dict[int, object] = {}
        self.kept: Dict[int, np.ndarray] = {}
        self.rowpos: Dict[int, Dict[int, int]] = {}
        self.w_entries: Dict[int, Dict[Tuple[int, int], float]] = {}
        self._wcsr: Dict[int, Tuple[int, sp.csr_matrix]] = {}
        self._wepoch: Dict[int, int] = {}
        self.coupling: Dict[int, np.ndarray] = {}

        schur = ltt
        for si, shard in enumerate(engine._shards):
            if shard is None:
                continue
            grounded = shard.grounded_group(key)
            if len(grounded) >= shard.mirror.n:
                continue  # interior fully grounded: contributes nothing
            tracker = shard.engine.tracker(grounded)
            tracker.sync()
            kept = np.asarray(tracker.kept, dtype=np.int64).copy()
            rowpos = {int(x): r for r, x in enumerate(kept)}
            w: Dict[Tuple[int, int], float] = {}
            for t in self.tprime:
                a = self.tpos[t]
                for nbg in graph.neighbors(t):
                    if shard.owns(nbg) and nbg not in self.sset:
                        r = rowpos[shard.g2l[nbg]]
                        w[(r, a)] = -graph.weight(t, nbg)
            self.trackers[si] = tracker
            self.kept[si] = kept
            self.rowpos[si] = rowpos
            self.w_entries[si] = w
            if tp and w:
                block = self._exact_coupling(tracker, w, tp)
                self.coupling[si] = block
                schur = schur - block
            else:
                self.coupling[si] = np.zeros((tp, tp), dtype=np.float64)
        self.schur = schur
        self.M = (np.linalg.inv(schur) if tp
                  else np.zeros((0, 0), dtype=np.float64))
        self.cursor = engine._event_end
        self.version = graph.version
        self.rank_folded = 0

    @staticmethod
    def _exact_coupling(tracker, w: Dict[Tuple[int, int], float],
                        tp: int) -> np.ndarray:
        """Dense ``C = WᵀA⁻¹W`` over the active separator columns only.

        Columns of ``W`` with no incident interior edge are identically
        zero, so only the shard-adjacent separator columns are solved —
        on strip-like partitions that is a small fraction of ``|T'|``.
        """
        n = tracker.backend.n
        active = sorted({a for (_, a) in w})
        amap = {a: i for i, a in enumerate(active)}
        dense = np.zeros((n, len(active)), dtype=np.float64)
        for (r, a), val in w.items():
            dense[r, amap[a]] = val
        x = np.empty_like(dense)
        for lo in range(0, dense.shape[1], 256):
            hi = min(lo + 256, dense.shape[1])
            x[:, lo:hi] = tracker.backend.solve_many(dense[:, lo:hi])
        block = np.zeros((tp, tp), dtype=np.float64)
        block[np.ix_(active, active)] = dense.T @ x
        return block

    def wcsr(self, si: int) -> sp.csr_matrix:
        """CSR view of ``W_i`` (rows = kept order, cols = T' positions)."""
        epoch = self._wepoch.get(si, 0)
        cached = self._wcsr.get(si)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        w = self.w_entries[si]
        n = len(self.kept[si])
        tp = len(self.tprime)
        if w:
            rows, cols, vals = zip(*[(r, a, v) for (r, a), v in w.items()])
            csr = sp.csr_matrix((vals, (rows, cols)), shape=(n, tp))
        else:
            csr = sp.csr_matrix((n, tp), dtype=np.float64)
        self._wcsr[si] = (epoch, csr)
        return csr

    def touch_w(self, si: int) -> None:
        self._wepoch[si] = self._wepoch.get(si, 0) + 1


class ShardedCFCM:
    """Drop-in sharded counterpart of :class:`repro.dynamic.DynamicCFCM`.

    Parameters
    ----------
    graph:
        A :class:`DynamicGraph` (plain connected :class:`repro.Graph` is
        wrapped).  All mutations go through this graph; the engine classifies
        and forwards its journal.
    shards:
        Number of parts the node set is split into.
    seeds:
        Optional explicit BFS seed nodes for the first partition (one per
        shard) — lets topology-aware callers (lattice strips) pin the layout.
        Re-partitions after structural events fall back to automatic seeds.
    executor:
        ``"serial"`` (deterministic default), ``"thread"``, ``"process"`` or
        a ready :class:`ShardExecutor` — runs per-shard folds, traces and
        pool work.
    coupling:
        How trace queries evaluate ``Tr(M·W_iᵀA_i⁻²W_i)``: ``"exact"``
        (dense solves), ``"sketch"`` (Hutchinson probes from the backend's
        cached block) or ``"auto"`` (exact up to ``coupling_threshold`` kept
        rows per shard, sketched beyond — mirroring the sparse backend's own
        trace convention).  Per-node resistance queries are exact in every
        mode.
    schur_refresh:
        Accumulated fold rank after which ``M`` is recomputed from the
        exactly-maintained Schur complement (float hygiene).
    max_group_lag:
        Pending-event count beyond which a stale group state is rebuilt
        from scratch instead of folded forward.
    seed, config, pool_size, refresh_interval, cache_capacity, ess_floor,
    backend, backend_options:
        Forwarded to the per-shard :class:`DynamicCFCM` engines (pools run
        with adaptive ESS floors).
    """

    def __init__(self, graph: DynamicGraph | Graph, shards: int = 2,
                 seed: RandomState = None,
                 config: Optional[SamplingConfig] = None,
                 pool_size: int = 24, refresh_interval: int = 64,
                 cache_capacity: int = 16, ess_floor: float = 0.5,
                 backend: str = "auto",
                 backend_options: Optional[Dict[str, object]] = None,
                 executor: str | ShardExecutor = "serial", workers: int = 4,
                 seeds: Sequence[int] = (), coupling: str = "auto",
                 coupling_threshold: int = 2048, schur_refresh: int = 512,
                 max_group_lag: int = 4096):
        if isinstance(graph, Graph):
            graph = DynamicGraph(graph)
        self.graph = graph
        self.shards = check_integer("shards", shards, minimum=1)
        self.rng = as_rng(seed)
        self.config = config
        self.pool_size = check_integer("pool_size", pool_size, minimum=1)
        self.refresh_interval = check_integer(
            "refresh_interval", refresh_interval, minimum=1)
        self.cache_capacity = check_integer(
            "cache_capacity", cache_capacity, minimum=1)
        self.ess_floor = float(ess_floor)
        self.backend = backend
        self.backend_options = dict(backend_options) if backend_options else None
        self.executor = make_executor(executor, workers=workers)
        coupling = str(coupling).lower()
        if coupling not in ("auto", "exact", "sketch"):
            raise InvalidParameterError(
                f"coupling must be 'auto', 'exact' or 'sketch', got {coupling!r}"
            )
        self.coupling = coupling
        self.coupling_threshold = check_integer(
            "coupling_threshold", coupling_threshold, minimum=1)
        self.schur_refresh = check_integer(
            "schur_refresh", schur_refresh, minimum=1)
        self.max_group_lag = check_integer(
            "max_group_lag", max_group_lag, minimum=1)
        self.stats = EngineStats()
        self.rebuilds = 0
        self._groups: Dict[Tuple[int, ...], _GroupState] = {}
        self._query_cache: Dict[Tuple, Tuple[int, CFCMResult]] = {}
        self._eval_cache: Dict[Tuple, Tuple[int, float]] = {}
        self._event_log: List[GraphUpdate] = []
        self._event_base = 0
        self._synced_version = graph.version
        self._shards: List[Optional[ShardState]] = []
        self.partition: Optional[Partition] = None
        self._build(seeds)

    # ------------------------------------------------------------- lifecycle
    def _build(self, seeds: Sequence[int] = ()) -> None:
        """(Re)partition the current graph and stand up fresh shard states."""
        graph = self.graph
        if self.partition is None or seeds:
            partition = partition_graph(graph, self.shards, seeds)
        else:
            # Inherit homes across the structural event: surviving nodes keep
            # their part; new nodes adopt the home of an already-homed
            # neighbour (BFS order, so chains of new nodes resolve too).
            old_home = self.partition.home
            home = {int(x): old_home[int(x)] for x in graph.node_ids()
                    if int(x) in old_home}
            if not home:
                home = assign_homes(graph, self.shards)
            pending = [int(x) for x in graph.node_ids() if int(x) not in home]
            while pending:
                stuck = True
                rest = []
                for node in pending:
                    owner = next((home[nb] for nb in graph.neighbors(node)
                                  if nb in home), None)
                    if owner is None:
                        rest.append(node)
                    else:
                        home[node] = owner
                        stuck = False
                pending = rest
                if stuck and pending:
                    for node in pending:
                        home[node] = 0
                    pending = []
            partition = partition_from_home(graph, home, self.shards)
        self.partition = partition
        self._shards = []
        for si, interior in enumerate(partition.parts):
            if not interior:
                self._shards.append(None)
                _INTERIOR_NODES.set(0.0, shard=str(si))
                continue
            child_seed = int(self.rng.integers(0, 2**62))
            self._shards.append(ShardState(
                graph, si, interior, partition.separator, seed=child_seed,
                config=self.config, pool_size=self.pool_size,
                refresh_interval=self.refresh_interval,
                cache_capacity=self.cache_capacity, ess_floor=self.ess_floor,
                backend=self.backend, backend_options=self.backend_options,
            ))
            _INTERIOR_NODES.set(float(len(interior)), shard=str(si))
        _SHARD_COUNT.set(float(self.shards))
        _SEPARATOR_NODES.set(float(len(partition.separator)))
        self._groups.clear()
        self._eval_cache.clear()
        self._event_log = []
        self._event_base = 0
        self._synced_version = graph.version

    def _rebuild(self) -> None:
        """Structural event: re-partition and rebuild everything exact."""
        self.rebuilds += 1
        _REBUILDS_TOTAL.inc()
        self._build()

    def close(self) -> None:
        """Release executor workers (the engine stays usable serially)."""
        self.executor.shutdown()

    # ----------------------------------------------------------- composition
    @property
    def version(self) -> int:
        return self.graph.version

    @property
    def synced_version(self) -> int:
        """Graph version classified/forwarded into the shard mirrors."""
        return self._synced_version

    @property
    def pending_events(self) -> int:
        return self.graph.version - self._synced_version

    @property
    def _event_end(self) -> int:
        return self._event_base + len(self._event_log)

    def describe(self) -> Dict[str, object]:
        info = dict(self.partition.describe())
        info.update(executor=self.executor.name, backend=self.backend,
                    rebuilds=self.rebuilds)
        return info

    def sync(self) -> int:
        """Classify pending journal events and forward them to shard mirrors.

        O(1) per event: membership lookups plus one mirror mutation.  All
        Schur/coupling algebra is deferred to the next query's fold.  Node
        events and cross-part interior insertions trigger a structural
        rebuild that subsumes the rest of the suffix.
        """
        graph = self.graph
        if graph.version == self._synced_version:
            return self._synced_version
        try:
            events = graph.journal_since(self._synced_version)
        except GraphError:
            # Another consumer compacted past our cursor; rebuild from the
            # current state (same recovery the single engine performs).
            self._rebuild()
            return self._synced_version
        sep = self.partition._separator_set
        home = self.partition.home
        for event in events:
            if event.is_node_event:
                self._rebuild()
                return self._synced_version
            u_sep = event.u in sep
            v_sep = event.v in sep
            if u_sep and v_sep:
                _EVENTS_TOTAL.inc(shard="separator")
            else:
                if not u_sep and not v_sep and home[event.u] != home[event.v]:
                    # A cross-part interior edge breaks block diagonality;
                    # only insertions can create one (the invariant bars it
                    # from existing), and they force a re-partition.
                    self._rebuild()
                    return self._synced_version
                owner = home[event.v] if u_sep else home[event.u]
                shard = self._shards[owner]
                if shard is not None:
                    shard.forward(event)
                _EVENTS_TOTAL.inc(shard=str(owner))
            self._event_log.append(event)
        self._synced_version = graph.version
        self._trim_event_log()
        graph.compact(self._synced_version)
        return self._synced_version

    def _trim_event_log(self) -> None:
        if not self._groups:
            floor = self._event_end
        else:
            floor = min(gs.cursor for gs in self._groups.values())
        drop = floor - self._event_base
        if drop > 0:
            del self._event_log[:drop]
            self._event_base = floor

    # ----------------------------------------------------------- group state
    def _stitched(self, group: Sequence[int]) -> Tuple[Tuple[int, ...],
                                                       _GroupState]:
        """Sync, then return a fully folded group state for ``group``."""
        self.sync()
        key = self.graph.validate_group(group)
        gs = self._groups.get(key)
        if gs is not None and (gs.cursor < self._event_base
                               or self._event_end - gs.cursor
                               > self.max_group_lag):
            gs = None  # lagged past the log (or too far to fold profitably)
        if gs is None:
            self.stats.eval_misses += 1
            gs = _GroupState(self, key)
        else:
            self.stats.eval_hits += 1
            if gs.cursor < self._event_end:
                try:
                    self._fold(gs)
                except _StitchInvalid:
                    _SCHUR_REFRESHES_TOTAL.inc()
                    gs = _GroupState(self, key)
        _lru_store(self._groups, key, gs, self.cache_capacity)
        return key, gs

    def _fold(self, gs: _GroupState) -> None:
        """Fold the pending event suffix into ``gs`` (the Schur stitch)."""
        events = self._event_log[gs.cursor - self._event_base:]
        start = clock()
        with trace("schur_stitch", events=len(events),
                   group=len(gs.key)) as span:
            tp = len(gs.tprime)
            # --- classification against this group's T' and S -------------
            triples: Dict[int, List[Tuple[int, Optional[int], float]]] = {}
            dwsum: Dict[int, Dict[Tuple[int, int], float]] = {}
            diag: Dict[int, float] = {}
            tt_edges: List[Tuple[int, int, float]] = []
            sep = self.partition._separator_set
            home = self.partition.home
            for event in events:
                a = gs.tpos.get(event.u)
                b = gs.tpos.get(event.v)
                if a is not None and b is not None:
                    tt_edges.append((a, b, event.delta))
                    continue
                if a is not None or b is not None:
                    tcol = a if a is not None else b
                    diag[tcol] = diag.get(tcol, 0.0) + event.delta
                # Shard-side bookkeeping for any non-T'-T' event.
                si, i, j = self._tracker_rows(gs, event, sep, home)
                if si is None:
                    continue
                if i is not None:
                    triples.setdefault(si, []).append((i, j, event.delta))
                tcol = a if a is not None else b
                if tcol is not None:
                    interior = event.v if a is not None else event.u
                    row = self._kept_row(gs, si, interior, sep)
                    if row is not None:
                        self._apply_wdelta(gs, si, row, tcol, event,
                                           dwsum.setdefault(si, {}))
            dirty = sorted(set(triples) | set(dwsum))

            # --- per-shard folds (executor fan-out) -----------------------
            def shard_fold(si: int):
                fold_start = clock()
                with trace("shard_sync", shard=si,
                           events=len(triples.get(si, ()))):
                    result = self._fold_shard(gs, si, triples.get(si, []),
                                              dwsum.get(si, {}))
                if REGISTRY.enabled:
                    _SYNC_SECONDS.observe(clock() - fold_start, shard=str(si))
                return result

            results = self.executor.map(
                [(lambda s=si: shard_fold(s)) for si in dirty])

            # --- deterministic merge: C blocks, Schur, M ------------------
            cols: List[np.ndarray] = []
            lams: List[float] = []
            for si, (p_block, lam_block) in zip(dirty, results):
                if lam_block.size:
                    # The block is ΔSchur_i = −ΔC_i: subtract it from the
                    # coupling cache, add it to the Schur complement below.
                    delta_dense = (p_block * lam_block) @ p_block.T
                    gs.coupling[si] = gs.coupling[si] - delta_dense
                    cols.append(p_block)
                    lams.append(lam_block)
            for tcol, dsum in sorted(diag.items()):
                if dsum != 0.0:
                    e = np.zeros((tp, 1))
                    e[tcol, 0] = 1.0
                    cols.append(e)
                    lams.append(np.array([dsum]))
            for a, b, delta in tt_edges:
                e = np.zeros((tp, 1))
                e[a, 0] = 1.0
                e[b, 0] = -1.0
                cols.append(e)
                lams.append(np.array([delta]))
            if cols:
                p_all = np.concatenate(cols, axis=1)
                lam = np.concatenate([np.atleast_1d(l) for l in lams])
                keep = lam != 0.0
                p_all, lam = p_all[:, keep], lam[keep]
            else:
                lam = np.zeros(0)
            if lam.size:
                gs.schur = gs.schur + (p_all * lam) @ p_all.T
                mp = gs.M @ p_all
                core = np.diag(1.0 / lam) + p_all.T @ mp
                try:
                    gs.M = gs.M - mp @ np.linalg.solve(core, mp.T)
                except np.linalg.LinAlgError:
                    _SCHUR_REFRESHES_TOTAL.inc()
                    gs.M = np.linalg.inv(gs.schur)
                gs.M = (gs.M + gs.M.T) * 0.5
                gs.rank_folded += int(lam.size)
                if gs.rank_folded >= self.schur_refresh:
                    _SCHUR_REFRESHES_TOTAL.inc()
                    gs.M = np.linalg.inv(gs.schur)
                    gs.rank_folded = 0
            span.set(rank=int(lam.size), shards=len(dirty))
            gs.cursor = self._event_end
            gs.version = self.graph.version
        if REGISTRY.enabled:
            _STITCH_SECONDS.observe(clock() - start)

    def _tracker_rows(self, gs: _GroupState, event: GraphUpdate,
                      sep, home) -> Tuple[Optional[int], Optional[int],
                                          Optional[int]]:
        """Owning shard and tracker-row triple sides of one edge event.

        Returns ``(shard, i, j)`` with ``i`` ``None`` when neither endpoint
        is a kept row (the event is grounded-only for this group), matching
        the orientation rule of
        :meth:`IncrementalResistance._apply_edge_batch` so fold columns line
        up with the backend's accumulated correction columns.
        """
        u_sep = event.u in sep
        v_sep = event.v in sep
        if u_sep and v_sep:
            return None, None, None
        si = home[event.v] if u_sep else home[event.u]
        if si not in gs.trackers:
            return None, None, None
        i = self._kept_row(gs, si, event.u, sep)
        j = self._kept_row(gs, si, event.v, sep)
        if i is None and j is None:
            return si, None, None
        if i is None:
            i, j = j, None
        return si, i, j

    def _kept_row(self, gs: _GroupState, si: int, node: int,
                  sep) -> Optional[int]:
        if node in sep or node in gs.sset:
            return None
        shard = self._shards[si]
        if shard is None or not shard.owns(node):
            return None
        return gs.rowpos[si].get(shard.g2l[node])

    def _apply_wdelta(self, gs: _GroupState, si: int, row: int, tcol: int,
                      event: GraphUpdate,
                      dw: Dict[Tuple[int, int], float]) -> None:
        """Update ``W_i`` eagerly and record the fold's ΔW entry."""
        key = (row, tcol)
        delta_w = -event.delta  # W entries hold -w
        dw[key] = dw.get(key, 0.0) + delta_w
        w = gs.w_entries[si]
        if event.kind == REMOVE:
            w.pop(key, None)  # exact zero, no float residue
        else:
            w[key] = w.get(key, 0.0) + delta_w
        gs.touch_w(si)

    def _fold_shard(self, gs: _GroupState, si: int,
                    triples: List[Tuple[int, Optional[int], float]],
                    dwsum: Dict[Tuple[int, int], float]
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """One shard's fold: returns ``(P, Λ)`` with ``ΔSchur_i = P Λ Pᵀ``.

        Derivation in the module docstring; every piece is assembled as
        symmetric rank-one factors so the caller can apply one block
        Woodbury to ``M`` and exact dense updates to ``C_i``/``Schur``.
        """
        tracker = gs.trackers[si]
        tracker.sync()
        if not np.array_equal(np.asarray(tracker.kept, dtype=np.int64),
                              gs.kept[si]):
            raise _StitchInvalid("kept-row order moved under the coupling")
        backend = tracker.backend
        tp = len(gs.tprime)
        n = len(gs.kept[si])
        cols: List[np.ndarray] = []
        lams: List[np.ndarray] = []

        k = len(triples)
        if k:
            deltas = np.array([t[2] for t in triples], dtype=np.float64)
            rows_i = np.array([t[0] for t in triples], dtype=np.int64)
            rows_j = np.array([-1 if t[1] is None else t[1]
                               for t in triples], dtype=np.int64)
            v = None
            state = backend.correction_columns(k)
            if state is not None:
                ri, rj, dd, corrected = state
                if (np.array_equal(ri, rows_i) and np.array_equal(rj, rows_j)
                        and np.array_equal(dd, deltas)):
                    v = corrected
            if v is None:
                rhs = np.zeros((n, k), dtype=np.float64)
                rhs[rows_i, np.arange(k)] = 1.0
                mask = rows_j >= 0
                rhs[rows_j[mask], np.flatnonzero(mask)] = -1.0
                v = backend.solve_many(rhs)
            btv = v[rows_i]
            mask = rows_j >= 0
            if np.any(mask):
                btv = btv.copy()
                btv[mask] -= v[rows_j[mask]]
            core = np.diag(1.0 / deltas) - btv
            try:
                h = np.linalg.inv(core)
            except np.linalg.LinAlgError as exc:
                raise _StitchInvalid(f"singular fold core: {exc}") from exc
            h = (h + h.T) * 0.5
            csr = gs.wcsr(si)
            g = csr.T @ v  # W_newᵀ V
            for (row, tcol), dw_val in dwsum.items():
                g[tcol, :] -= dw_val * v[row, :]  # back out ΔW: G = W_oldᵀV
            hvals, q = np.linalg.eigh(h)
            cols.append(np.asarray(g @ q))
            lams.append(hvals)

        if dwsum:
            csr = gs.wcsr(si)
            entries = sorted(dwsum.items())
            s_cols = {row: np.asarray(backend.column(row), dtype=np.float64)
                      for row in sorted({r for (r, _), _ in entries})}
            # −(E + Eᵀ): two symmetric rank-ones per ΔW entry.
            for (row, tcol), dw_val in entries:
                g_m = csr.T @ s_cols[row]
                x = np.zeros(tp)
                x[tcol] = 1.0
                y = dw_val * np.asarray(g_m).ravel()
                cols.append(np.column_stack([x + y, x - y]))
                lams.append(np.array([-0.5, 0.5]))
            # +F = J Cw Jᵀ with Cw[m,m'] = dw_m dw_m' (A⁻¹)[r_m, r_m'].
            kw = len(entries)
            cw = np.empty((kw, kw), dtype=np.float64)
            for mi, ((ri_, _), dwi) in enumerate(entries):
                for mj, ((rj_, _), dwj) in enumerate(entries):
                    cw[mi, mj] = dwi * dwj * s_cols[rj_][ri_]
            cw = (cw + cw.T) * 0.5
            wvals, qw = np.linalg.eigh(cw)
            scatter = np.zeros((tp, kw), dtype=np.float64)
            for mi, ((_, tcol), _) in enumerate(entries):
                scatter[tcol, :] += qw[mi, :]
            cols.append(scatter)
            lams.append(wvals)

        if not cols:
            return (np.zeros((tp, 0)), np.zeros(0))
        return np.concatenate(cols, axis=1), np.concatenate(lams)

    # --------------------------------------------------------------- queries
    def evaluate(self, group: Sequence[int], mode: str = "exact") -> float:
        mode = str(mode).lower()
        if mode == "exact":
            return self.evaluate_exact(group)
        if mode == "forest":
            return self.evaluate_forest(group)
        raise InvalidParameterError(f"unknown evaluation mode {mode!r}")

    def evaluate_exact(self, group: Sequence[int]) -> float:
        """Group CFCC via the stitched per-shard inverses.

        Exactness matches the configured backends: dense backends give the
        reference value to float precision; sparse backends serve their
        (deterministic) Hutchinson trace for the interior terms, the same
        convention the single-tracker engine follows at that scale.
        """
        with trace("engine.evaluate_exact"), _op_timer("evaluate_exact"):
            key, gs = self._stitched(group)
            cache_key = ("exact", key)
            cached = self._eval_cache.get(cache_key)
            if cached is not None and cached[0] == self.graph.version:
                return cached[1]
            value = self.graph.n / self._stitched_trace(gs, forest=False)
            _lru_store(self._eval_cache, cache_key,
                       (self.graph.version, value), self.cache_capacity)
            return value

    def _stitched_trace(self, gs: _GroupState, forest: bool) -> float:
        """``Tr(L_{-S}⁻¹)`` = interior traces + ``Tr(M)`` + couplings."""
        items = sorted(gs.trackers)

        def shard_trace(si: int) -> float:
            if forest:
                shard = self._shards[si]
                grounded = shard.grounded_group(gs.key)
                value = shard.engine.evaluate_forest(grounded)
                interior = shard.mirror.n / value
            else:
                interior = gs.trackers[si].trace()
            return interior + self._coupling_term(gs, si)

        parts = self.executor.map([(lambda s=si: shard_trace(s))
                                   for si in items])
        return float(sum(parts) + np.trace(gs.M))

    def _coupling_term(self, gs: _GroupState, si: int) -> float:
        """``Tr(M · W_iᵀ A_i⁻² W_i)`` — the interior↔separator cross term."""
        if gs.M.size == 0 or not gs.w_entries[si]:
            return 0.0
        tracker = gs.trackers[si]
        backend = tracker.backend
        mode = self.coupling
        if mode == "auto":
            exact = (backend.name == "dense"
                     or backend.n <= self.coupling_threshold)
            mode = "exact" if exact else "sketch"
        if mode == "exact":
            w = gs.w_entries[si]
            active = sorted({a for (_, a) in w})
            amap = {a: i for i, a in enumerate(active)}
            dense = np.zeros((backend.n, len(active)), dtype=np.float64)
            for (r, a), val in w.items():
                dense[r, amap[a]] = val
            x = backend.solve_many(dense)
            msub = gs.M[np.ix_(active, active)]
            return float(np.sum(msub * (x.T @ x)))
        z, y = backend.probe_block()
        g = gs.wcsr(si).T @ y  # (tp, probes)
        return float(np.mean(np.sum(g * (gs.M @ g), axis=0)))

    def resistance_to_group(self, node: int, group: Sequence[int]) -> float:
        """Exact effective resistance ``R(u, S)`` through the stitch.

        Interior nodes pay one tracker column solve plus an ``xᵀMx`` with
        ``x = W_iᵀ A_i⁻¹ e_u``; separator nodes read ``M`` directly; group
        members are 0.  Exact on every backend (column solves are exact even
        when traces are sketched).
        """
        with trace("engine.resistance_to_group"), _op_timer("resistance"):
            key, gs = self._stitched(group)
            node = int(node)
            if node in gs.sset:
                return 0.0
            tcol = gs.tpos.get(node)
            if tcol is not None:
                return float(gs.M[tcol, tcol])
            si = self.partition.home[node]
            shard = self._shards[si]
            if shard is None or si not in gs.trackers:
                raise InvalidParameterError(
                    f"node {node} is not tracked by any shard"
                )
            tracker = gs.trackers[si]
            local = shard.g2l[node]
            base = tracker.resistance_to_group(local)
            if gs.M.size == 0:
                return float(base)
            column = tracker.resistance_column(local)
            x = gs.wcsr(si).T @ column
            return float(base + x @ (gs.M @ x))

    def evaluate_forest(self, group: Sequence[int]) -> float:
        """Pooled-forest estimate of the group CFCC, stitched across shards.

        Per-shard pools estimate the interior traces (weighted trace sums
        simply add); the separator terms ``Tr(M)`` + couplings come from the
        stitch.  The merged effective sample size composes as the ROADMAP
        predicts: per shard ``min(Kish, Σ_b min(w_b, 1))``, then one ``min``
        reduce across shards (the weakest pool governs the estimate); it is
        recorded under ``pool_ess["merged"]`` and in :meth:`pool_health`.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest evaluation assumes unit edge weights; use mode='exact'"
            )
        with trace("engine.evaluate_forest"), _op_timer("evaluate_forest"):
            key, gs = self._stitched(group)
            cache_key = ("forest", key)
            cached = self._eval_cache.get(cache_key)
            if cached is not None and cached[0] == self.graph.version:
                self.stats.eval_hits += 1
                return cached[1]
            value = self.graph.n / self._stitched_trace(gs, forest=True)
            self.stats.pool_ess["merged"] = self.merged_ess()
            _lru_store(self._eval_cache, cache_key,
                       (self.graph.version, value), self.cache_capacity)
            return value

    def merged_ess(self) -> float:
        """``min_i min(Kish_i, Σ_b min(w_b, 1))`` over all live shard pools."""
        merged = float("inf")
        for shard in self._shards:
            if shard is None:
                continue
            for pool in shard.engine._pools.values():
                if pool.size == 0:
                    continue
                weights = pool.weights()
                merged = min(merged, pool.ess(),
                             float(np.minimum(weights, 1.0).sum()))
        return merged if np.isfinite(merged) else 0.0

    def query(self, k: int, method: str = "schur", eps: float = 0.2,
              evaluate: bool | str = False) -> CFCMResult:
        """CFCM group selection on the current graph (version-cached).

        Selection itself runs the batch algorithm on the global snapshot —
        the sharded layer accelerates the *serving* surface (evaluation,
        resistance, estimator folds); see ``docs/distributed.md``.
        """
        from repro.centrality.api import maximize_cfcc, validate_cfcm_parameters

        k = validate_cfcm_parameters(self.graph.n, k, str(method).lower(),
                                     eps, self.config)
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "selection queries assume unit edge weights; reset weights "
                "to 1 (weighted graphs are supported for evaluation via "
                "evaluate_exact only)"
            )
        with trace("engine.query", k=k) as span, _op_timer("query"):
            self.sync()
            if evaluate is True:
                evaluate = "exact"
            key = (k, str(method).lower(), round(float(eps), 9),
                   str(evaluate) if evaluate else "")
            cached = self._query_cache.get(key)
            if cached is not None and cached[0] == self.graph.version:
                self.stats.query_hits += 1
                span.set(cache="hit")
                _lru_store(self._query_cache, key, cached,
                           self.cache_capacity)
                return cached[1]
            self.stats.query_misses += 1
            span.set(cache="miss")
            child_seed = int(self.rng.integers(0, 2**62))
            result = maximize_cfcc(self.graph.snapshot(), k, method=method,
                                   eps=eps, seed=child_seed,
                                   config=self.config, evaluate=evaluate)
            mapping = self.graph.snapshot_mapping()
            if int(mapping[-1]) != mapping.size - 1:
                result.group = [int(mapping[node]) for node in result.group]
                for entry in result.iteration_log:
                    if "node" in entry:
                        entry["node"] = int(mapping[entry["node"]])
            _lru_store(self._query_cache, key,
                       (self.graph.version, result), self.cache_capacity)
            return result

    # ---------------------------------------------------------------- health
    def pool_health(self) -> Dict[str, Dict[str, float]]:
        """Shard-prefixed pool health plus the merged-ESS pseudo entry."""
        health: Dict[str, Dict[str, float]] = {}
        total_size = 0.0
        total_capacity = 0.0
        for si, shard in enumerate(self._shards):
            if shard is None:
                continue
            for pool_key, entry in shard.engine.pool_health().items():
                health[f"s{si}:{pool_key}"] = entry
                total_size += entry.get("size", 0.0)
                total_capacity += entry.get("capacity", 0.0)
        if health:
            health["merged"] = {
                "ess": self.merged_ess(),
                "ess_floor": min(entry.get("ess_floor", 0.0)
                                 for k, entry in health.items()
                                 if k != "merged"),
                "size": total_size,
                "capacity": total_capacity,
                "stale_fraction": max(entry.get("stale_fraction", 0.0)
                                      for k, entry in health.items()
                                      if k != "merged"),
            }
        return health
