"""Worker-pool abstraction for per-shard maintenance tasks.

The sharded engine fans three kinds of work out over shards: journal
synchronisation of the per-shard trackers (Woodbury folds), forest-pool
top-ups and estimator folds.  All of them are *per-shard independent*, so
they go through one tiny interface — :meth:`ShardExecutor.map` over a list
of thunks — with three implementations:

* :class:`SerialExecutor` — runs the thunks in order, in process.  The
  deterministic default: identical float results on every run, no thread
  scheduling in the way of tests, and on single-core hosts (CI, this
  container) also the fastest option.
* :class:`ThreadExecutor` — a ``ThreadPoolExecutor``.  The per-shard hot
  loops spend their time inside NumPy/SciPy kernels that release the GIL
  (sparse LU solves, BLAS folds), so threads overlap genuinely on
  multi-core hosts while sharing the shard state in memory.
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor`` for the *stateless*
  work items (vectorised forest sampling on an immutable snapshot, which
  pickles cheaply).  Stateful tracker syncs never cross the process
  boundary — shipping a factorisation per event would cost more than it
  buys — so this executor applies to the sampling path and degrades to
  serial execution for closures that cannot be pickled.

``make_executor`` resolves the user-facing spec (``"serial" | "thread" |
"process"``) and is what the engine, CLI and worlds harness construct from.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.exceptions import InvalidParameterError

T = TypeVar("T")

_Thunk = Callable[[], T]


class ShardExecutor:
    """Protocol: run independent per-shard thunks, return results in order."""

    name = "abstract"

    def map(self, thunks: Sequence[_Thunk]) -> List[T]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (idempotent; serial is a no-op)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(ShardExecutor):
    """In-process, in-order execution — the deterministic default."""

    name = "serial"

    def map(self, thunks: Sequence[_Thunk]) -> List[T]:
        return [thunk() for thunk in thunks]


class ThreadExecutor(ShardExecutor):
    """Thread-pool execution for GIL-releasing NumPy/SciPy shard work."""

    name = "thread"

    def __init__(self, workers: int = 4):
        if int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _require_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def map(self, thunks: Sequence[_Thunk]) -> List[T]:
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        pool = self._require_pool()
        futures = [pool.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _call_payload(payload: bytes):
    """Process-pool trampoline: unpickle one thunk and run it."""
    return pickle.loads(payload)()


class ProcessExecutor(ShardExecutor):
    """Process-pool execution for stateless, picklable work items.

    Thunks are pickled eagerly; any thunk the pickler rejects (closures
    over live trackers, lambdas) makes the whole batch fall back to serial
    execution rather than half-distributing it — per-shard results must
    stay ordered and deterministic either way.
    """

    name = "process"

    def __init__(self, workers: int = 4):
        if int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def map(self, thunks: Sequence[_Thunk]) -> List[T]:
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        try:
            payloads = [pickle.dumps(thunk) for thunk in thunks]
        except Exception:
            return [thunk() for thunk in thunks]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            return list(self._pool.map(_call_payload, payloads))
        except Exception:
            # A broken pool (worker died, platform without fork support)
            # must not take the engine down: recompute serially.
            self.shutdown()
            return [thunk() for thunk in thunks]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(spec: str | ShardExecutor = "serial",
                  workers: int = 4) -> ShardExecutor:
    """Resolve an executor spec (``"serial" | "thread" | "process"``)."""
    if isinstance(spec, ShardExecutor):
        return spec
    name = str(spec).lower()
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers=workers)
    if name == "process":
        return ProcessExecutor(workers=workers)
    raise InvalidParameterError(
        f"unknown executor {spec!r} (expected 'serial', 'thread' or 'process')"
    )
