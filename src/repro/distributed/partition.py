"""Edge-cut partitioner with a vertex-separator promotion.

The sharded engine needs the node set split so that the grounded interior
block of the global Laplacian is *block diagonal* by shard.  That holds
exactly when no edge joins the interiors of two different parts, so the
partition is built in two deterministic stages:

1. **Homes** — balanced multi-source BFS over the current snapshot: ``p``
   evenly spread seed nodes grow their parts one node per round, the
   currently smallest part claiming first, so parts come out connected
   and within one node of each other in size.
2. **Separator** — every *cut* edge (endpoints homed to different parts)
   must lose at least one endpoint to the separator ``T``; a greedy vertex
   cover promotes the endpoint covering the most still-uncovered cut edges
   (ties by node id).  Promoted nodes belong to no part.  On mesh-like
   topologies this yields roughly half the nodes an edge-cut boundary
   would replicate, and the separator — not the edge cut — is what the
   dense Schur complement is sized by.

After promotion the defining invariant of the sharded algebra holds:

    every neighbour of an interior node is in the same part or in ``T``.

so the interior–interior coupling between different parts is identically
zero and per-part grounded inverses compose through a single ``|T| x |T|``
Schur complement (:mod:`repro.distributed.engine`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class Partition:
    """A home assignment plus the promoted vertex separator.

    Attributes
    ----------
    home:
        ``{stable node id: part index}`` for **every** active node,
        including separator nodes (their home records which part they were
        grown into before promotion; new nodes inherit a neighbour's home).
    parts:
        Per part, the sorted tuple of *interior* stable node ids (home in
        that part and not promoted).
    separator:
        Sorted tuple of the promoted separator node ids ``T``.
    """

    home: Dict[int, int]
    parts: Tuple[Tuple[int, ...], ...]
    separator: Tuple[int, ...]

    @property
    def shards(self) -> int:
        return len(self.parts)

    def part_of(self, node: int) -> int:
        """Home part of ``node`` (defined also for separator nodes)."""
        return self.home[int(node)]

    def is_separator(self, node: int) -> bool:
        return int(node) in self._separator_set

    @property
    def _separator_set(self) -> frozenset:
        cached = self.__dict__.get("_sep_cache")
        if cached is None:
            cached = frozenset(self.separator)
            self.__dict__["_sep_cache"] = cached
        return cached

    def describe(self) -> Dict[str, object]:
        """Summary dict for logs and bench artifacts."""
        return {
            "shards": self.shards,
            "interior_sizes": [len(part) for part in self.parts],
            "separator_nodes": len(self.separator),
        }


def partition_graph(graph: DynamicGraph, shards: int,
                    seeds: Sequence[int] = ()) -> Partition:
    """Partition the active node set of ``graph`` into ``shards`` parts.

    Deterministic for a fixed graph state: BFS seeds are evenly spaced over
    the sorted active ids unless ``seeds`` pins them explicitly (one per
    part, useful for topology-aware layouts such as lattice strips).
    """
    shards = check_integer("shards", shards, minimum=1)
    ids = [int(x) for x in graph.node_ids()]
    if shards > len(ids):
        raise InvalidParameterError(
            f"cannot split {len(ids)} nodes into {shards} shards"
        )
    home = assign_homes(graph, shards, seeds)
    return partition_from_home(graph, home, shards)


def assign_homes(graph: DynamicGraph, shards: int,
                 seeds: Sequence[int] = ()) -> Dict[int, int]:
    """Balanced multi-source BFS home assignment over the active nodes."""
    ids = [int(x) for x in graph.node_ids()]
    if seeds:
        chosen = [int(s) for s in seeds]
        if len(chosen) != shards:
            raise InvalidParameterError(
                f"expected {shards} seeds, got {len(chosen)}"
            )
        for seed in chosen:
            if not graph.has_node(seed):
                raise InvalidParameterError(f"seed node {seed} is not active")
        if len(set(chosen)) != shards:
            raise InvalidParameterError("seed nodes must be distinct")
    else:
        step = max(len(ids) // shards, 1)
        chosen = [ids[min(i * step, len(ids) - 1)] for i in range(shards)]
        # Evenly spaced picks can collide on tiny graphs; fall back to the
        # first unused id so every part gets a distinct seed.
        used = set()
        for i, seed in enumerate(chosen):
            if seed in used:
                seed = next(x for x in ids if x not in used)
            used.add(seed)
            chosen[i] = seed

    home: Dict[int, int] = {}
    frontiers: List[deque] = []
    for part, seed in enumerate(chosen):
        home[seed] = part
        frontiers.append(deque([seed]))
    sizes = [1] * shards
    assigned = shards
    while assigned < len(ids):
        # The currently smallest part (ties by index) claims exactly one
        # unassigned node off its BFS frontier, so parts stay within one
        # node of each other no matter how badly the seeds are spread.
        progressed = False
        for part in sorted(range(shards), key=lambda p: (sizes[p], p)):
            frontier = frontiers[part]
            claimed = None
            while frontier and claimed is None:
                node = frontier[0]
                claimed = next((nb for nb in graph.neighbors(node)
                                if nb not in home), None)
                if claimed is None:
                    frontier.popleft()  # exhausted; head rotates out
            if claimed is None:
                continue
            home[claimed] = part
            frontier.append(claimed)
            sizes[part] += 1
            assigned += 1
            progressed = True
            break
        if not progressed:
            # Exhausted frontiers with nodes left can only happen if the
            # graph were disconnected, which DynamicGraph guards against.
            for node in (x for x in ids if x not in home):
                home[node] = int(np.argmin(sizes))
                sizes[home[node]] += 1
            assigned = len(ids)
    return home


def partition_from_home(graph: DynamicGraph, home: Dict[int, int],
                        shards: int) -> Partition:
    """Promote a greedy vertex cover of the cut edges into the separator."""
    cut_edges = [(u, v) for u, v in graph.edges() if home[u] != home[v]]
    cross_count: Dict[int, int] = {}
    for u, v in cut_edges:
        cross_count[u] = cross_count.get(u, 0) + 1
        cross_count[v] = cross_count.get(v, 0) + 1
    separator = set()
    # Greedy cover: repeatedly promote the endpoint covering the most
    # still-uncovered cut edges (ties by id, for determinism).
    remaining = list(cut_edges)
    while remaining:
        best = None
        for node, count in sorted(cross_count.items()):
            if count > 0 and (best is None or count > cross_count[best]):
                best = node
        if best is None:
            break
        separator.add(best)
        still = []
        for u, v in remaining:
            if u == best or v == best:
                cross_count[u] -= 1
                cross_count[v] -= 1
            else:
                still.append((u, v))
        remaining = still

    parts: List[List[int]] = [[] for _ in range(shards)]
    for node, part in home.items():
        if node not in separator:
            parts[part].append(node)
    return Partition(
        home=dict(home),
        parts=tuple(tuple(sorted(part)) for part in parts),
        separator=tuple(sorted(separator)),
    )
