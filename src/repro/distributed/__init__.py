"""Sharded CFCM serving: per-shard trackers stitched by a global Schur complement.

The distributed layer splits one :class:`repro.dynamic.DynamicCFCM`-sized
problem into ``p`` shards.  :func:`partition_graph` assigns every node a
*home* part and promotes a small vertex separator ``T`` (a cover of the
cut edges) out of the parts; each shard then owns the interior of its part
plus a read-only replica of ``T``.  :class:`ShardedCFCM` runs one dynamic
engine (tracker + forest pool) per shard and answers global resistance /
CFCM queries by stitching the per-shard grounded inverses through a dense
Schur complement over the separator — see :mod:`repro.distributed.engine`
for the algebra and :doc:`docs/distributed.md <../../docs/distributed>`
for the full derivation.
"""

from repro.distributed.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.distributed.partition import Partition, partition_graph
from repro.distributed.shard import ShardState
from repro.distributed.engine import ShardedCFCM

__all__ = [
    "Partition",
    "partition_graph",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "ShardState",
    "ShardedCFCM",
]
