"""Deterministic, seedable fault injection for the serving stack.

A :class:`FaultPlan` is a declarative set of :class:`FaultRule`\\ s — one per
instrumented seam (*site*) — plus a seed.  A :class:`FaultInjector` compiles
the plan into a gate installed on :mod:`repro.utils.faultpoints` for the
duration of a ``with`` block; every ``fault_point(site, ...)`` call in the
library then rolls a per-site deterministic RNG and, when a rule fires,
raises the typed error that real failures at that seam produce (or, for the
drift site, corrupts the tracked inverse in place).

Determinism contract: the same plan (rules + seed) against the same
workload injects the same faults at the same call sites in the same order,
because each site draws from its own ``default_rng((seed, crc32(site)))``
stream and rules cap total injections with ``limit``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import (
    ConvergenceError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.obs.metrics import REGISTRY
from repro.utils import faultpoints

_INJECTED = REGISTRY.counter(
    "repro_fault_injected_total",
    "Faults injected by the resilience framework, by seam",
    labels=("site",),
)

#: Every instrumented seam and the failure it simulates.
FAULT_SITES: Dict[str, str] = {
    "backend.factorize": "factorization failure (splu/Cholesky breakdown)",
    "backend.solve": "solver failure during a diagonal/column evaluation",
    "backend.apply": "singular capacitance matrix in a Woodbury batch",
    "backend.drift": "numerical drift corrupting the tracked inverse",
    "solver.cg": "conjugate-gradient non-convergence",
    "service.worker": "unhandled exception in a service read worker",
    "service.stall": "update-queue stall (writer pauses before a batch)",
}


@dataclass(frozen=True)
class FaultRule:
    """One seam's injection rule.

    ``probability`` is the per-call firing chance, ``limit`` caps total
    injections at this site (``None`` = unbounded), and ``magnitude`` scales
    the effect for sites with one (drift perturbation size, stall seconds).
    """

    site: str
    probability: float = 1.0
    limit: Optional[int] = None
    magnitude: float = 1e-4

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise InvalidParameterError(
                f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidParameterError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.limit is not None and self.limit < 0:
            raise InvalidParameterError(
                f"fault limit must be non-negative, got {self.limit}"
            )
        if self.magnitude < 0:
            raise InvalidParameterError(
                f"fault magnitude must be non-negative, got {self.magnitude}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "probability": self.probability,
                "limit": self.limit, "magnitude": self.magnitude}


#: Named fault regimes for the worlds sweep's ``faults`` axis.  Each maps a
#: regime name to the rule set ``FaultPlan.for_regime`` builds from a rate
#: and a per-site limit.
FAULT_REGIMES: Tuple[str, ...] = (
    "none",
    "solver_flaky",
    "numerical_drift",
    "worker_crash",
    "queue_stall",
    "chaos",
)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos scenario: rules + the seed of the site streams."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        sites = [rule.site for rule in self.rules]
        if len(sites) != len(set(sites)):
            raise InvalidParameterError(
                f"fault plan has duplicate sites: {sorted(sites)}"
            )

    @classmethod
    def for_regime(cls, regime: str, rate: float = 0.25,
                   limit: Optional[int] = 4, magnitude: float = 1e-4,
                   seed: int = 0) -> "FaultPlan":
        """The canonical rule set of a named regime."""
        if regime not in FAULT_REGIMES:
            raise InvalidParameterError(
                f"unknown fault regime {regime!r}; known: {FAULT_REGIMES}"
            )
        def rule(site: str, **overrides: Any) -> FaultRule:
            base = {"probability": rate, "limit": limit,
                    "magnitude": magnitude}
            base.update(overrides)
            return FaultRule(site, **base)

        if regime == "none":
            rules: Tuple[FaultRule, ...] = ()
        elif regime == "solver_flaky":
            rules = (rule("backend.factorize"), rule("backend.solve"),
                     rule("solver.cg"), rule("backend.apply"))
        elif regime == "numerical_drift":
            rules = (rule("backend.drift", magnitude=max(magnitude, 1e-4)),)
        elif regime == "worker_crash":
            rules = (rule("service.worker"),)
        elif regime == "queue_stall":
            rules = (rule("service.stall", magnitude=min(magnitude, 0.05)
                          if magnitude else 0.02),)
        else:  # chaos: a bit of everything, each site bounded
            rules = (rule("backend.factorize"), rule("backend.solve"),
                     rule("backend.apply"),
                     rule("backend.drift", magnitude=max(magnitude, 1e-4)),
                     rule("service.worker"))
        return cls(rules=rules, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        rules = tuple(FaultRule(**rule) for rule in data.get("rules", ()))
        return cls(rules=rules, seed=int(data.get("seed", 0)))


class FaultInjector:
    """Context manager installing a :class:`FaultPlan` as the process gate.

    While entered, every ``fault_point`` call consults this injector; the
    ``injected`` dict records how many faults each site actually fired.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rules: Dict[str, FaultRule] = {r.site: r for r in plan.rules}
        self._rngs: Dict[str, np.random.Generator] = {}
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "FaultInjector":
        faultpoints.install_gate(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        faultpoints.clear_gate(self)

    # ------------------------------------------------------------------ gate
    @property
    def total_injected(self) -> int:
        """Total faults fired across every site."""
        return sum(self.injected.values())

    def _stream(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                (int(self.plan.seed), zlib.crc32(site.encode("utf-8")))
            )
            self._rngs[site] = rng
        return rng

    def check(self, site: str, subject: Any = None, **labels: Any) -> None:
        """Roll the site's stream; inject the seam's typed failure if it fires."""
        rule = self._rules.get(site)
        if rule is None:
            return
        if rule.limit is not None and self.injected.get(site, 0) >= rule.limit:
            return
        rng = self._stream(site)
        if rng.random() >= rule.probability:
            return
        if site == "backend.drift" and not self._can_drift(subject):
            return  # nothing materialised to corrupt (e.g. sparse backend)
        self.injected[site] = self.injected.get(site, 0) + 1
        if REGISTRY.enabled:
            _INJECTED.inc(site=site)
        self._fire(site, rule, subject, rng)

    @staticmethod
    def _can_drift(subject: Any) -> bool:
        inverse = getattr(subject, "inverse", None)
        return isinstance(inverse, np.ndarray) and inverse.ndim == 2

    def _fire(self, site: str, rule: FaultRule, subject: Any,
              rng: np.random.Generator) -> None:
        if site in ("backend.solve", "solver.cg"):
            raise ConvergenceError(
                f"injected non-convergence at {site}",
                iterations=0, residual=rule.magnitude, rtol=None,
            )
        if site == "backend.factorize":
            raise RuntimeError(f"injected factorization failure at {site}")
        if site == "backend.apply":
            raise InvalidParameterError(
                f"injected singular capacitance update at {site}"
            )
        if site == "backend.drift":
            inverse = subject.inverse
            direction = rng.standard_normal(inverse.shape[0])
            scale = rule.magnitude / max(1.0, float(inverse.shape[0]))
            inverse += scale * np.outer(direction, direction)
            return
        if site == "service.stall":
            time.sleep(min(float(rule.magnitude), 0.25))
            return
        raise InjectedFaultError(f"injected fault at {site}")
