"""Fault injection, graceful degradation and checkpoint/recovery.

Three cooperating pieces:

* :mod:`repro.resilience.faults` — a deterministic, seedable fault-injection
  framework (:class:`FaultPlan`/:class:`FaultInjector`) that fires typed
  failures at the ``fault_point`` seams woven through the solver, backend,
  engine and service layers.
* :mod:`repro.resilience.watchdog` / :mod:`repro.resilience.policy` — the
  degradation ladder: a numerical-health watchdog probing
  ``max|L_{-S}(B^{-1}e) - e|``, backend failover bookkeeping, a service
  retry/deadline policy and a circuit breaker that sheds relaxed-consistency
  reads first under overload.
* :mod:`repro.resilience.checkpoint` — engine checkpoint/restore with a
  bit-equal journal-replay recovery contract.

See ``docs/resilience.md`` for the fault taxonomy and checkpoint format.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_engine,
    restore_engine,
)
from repro.resilience.faults import (
    FAULT_REGIMES,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.resilience.policy import (
    CircuitBreaker,
    RetryPolicy,
    set_degraded,
)
from repro.resilience.watchdog import ResidualWatchdog

__all__ = [
    "CHECKPOINT_VERSION",
    "CircuitBreaker",
    "FAULT_REGIMES",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "ResidualWatchdog",
    "RetryPolicy",
    "checkpoint_engine",
    "restore_engine",
    "set_degraded",
]
