"""Service-level degradation policy: retries, deadlines, circuit breaking.

The :class:`RetryPolicy` decides whether a failed read is worth re-running
(typed, transient errors only, bounded by attempt count and a wall-clock
deadline).  The :class:`CircuitBreaker` keys off the same signals the
:mod:`repro.obs` layer exposes — update-queue depth against its limit and
consecutive worker failures — and sheds relaxed-consistency reads first:
fresh reads keep flowing (they are also how an open breaker observes
recovery), relaxed reads get a typed
:class:`repro.exceptions.ServiceDegradedError` instead of queueing behind a
backlog the caller said it did not need to wait for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Type

from repro.exceptions import (
    ConvergenceError,
    InjectedFaultError,
    InvalidParameterError,
    ServiceDegradedError,
)
from repro.obs.metrics import REGISTRY

_RETRIES = REGISTRY.counter(
    "repro_fault_retries_total",
    "Service read retries under the retry/deadline policy",
    labels=("kind",),
)
_SHED = REGISTRY.counter(
    "repro_fault_shed_total",
    "Reads shed by the circuit breaker, by consistency mode",
    labels=("consistency",),
)
_DEGRADED = REGISTRY.gauge(
    "repro_degraded_state",
    "1 while a component is in a degraded mode (failover, open breaker)",
    labels=("component",),
)
_FAILOVERS = REGISTRY.counter(
    "repro_fault_backend_failovers_total",
    "Resistance-backend failovers to the dense backend, by failed backend",
    labels=("backend",),
)


def set_degraded(component: str, value: float) -> None:
    """Publish the degraded-state gauge for ``component`` (1 = degraded)."""
    if REGISTRY.enabled:
        _DEGRADED.set(float(value), component=component)


def record_failover(backend: str) -> None:
    """Count one backend failover and mark the backend degraded."""
    if REGISTRY.enabled:
        _FAILOVERS.inc(backend=backend)
    set_degraded("backend", 1.0)


def record_retry(kind: str) -> None:
    """Count one policy-driven retry of a ``kind`` read."""
    if REGISTRY.enabled:
        _RETRIES.inc(kind=kind)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries for transient, typed read failures.

    ``attempts`` is the total tries (first call included), ``deadline`` an
    optional wall-clock budget in seconds across all tries, and ``retry_on``
    the exception types considered transient.
    """

    attempts: int = 3
    deadline: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (
        ConvergenceError,
        InjectedFaultError,
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise InvalidParameterError(
                f"retry attempts must be at least 1, got {self.attempts}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidParameterError(
                f"retry deadline must be positive, got {self.deadline}"
            )

    def should_retry(self, exc: BaseException, attempt: int,
                     elapsed: float) -> bool:
        """Whether try ``attempt`` (1-based) failing with ``exc`` may re-run."""
        if attempt >= self.attempts:
            return False
        if self.deadline is not None and elapsed >= self.deadline:
            return False
        return isinstance(exc, self.retry_on)


@dataclass
class CircuitBreaker:
    """Shed relaxed-consistency reads under overload or repeated failure.

    The breaker *opens* after ``failure_threshold`` consecutive read
    failures and *closes* after ``recovery_successes`` consecutive
    successes.  Independently of breaker state, relaxed reads are shed
    whenever the update queue is past ``shed_fraction`` of its limit.
    Fresh reads are always admitted — they are the probes through which an
    open breaker observes recovery.
    """

    shed_fraction: float = 0.9
    failure_threshold: int = 8
    recovery_successes: int = 3
    consecutive_failures: int = field(default=0, init=False)
    consecutive_successes: int = field(default=0, init=False)
    open: bool = field(default=False, init=False)
    shed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.shed_fraction <= 1.0:
            raise InvalidParameterError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction}"
            )
        if self.failure_threshold < 1 or self.recovery_successes < 1:
            raise InvalidParameterError(
                "failure_threshold and recovery_successes must be positive"
            )

    # -------------------------------------------------------------- admission
    def admit(self, consistency: str, queue_depth: int,
              queue_limit: int) -> None:
        """Raise :class:`ServiceDegradedError` when the read must be shed."""
        if consistency != "relaxed":
            return
        overloaded = (queue_limit > 0
                      and queue_depth >= self.shed_fraction * queue_limit)
        if not (self.open or overloaded):
            return
        self.shed += 1
        if REGISTRY.enabled:
            _SHED.inc(consistency=consistency)
        reason = "circuit breaker open" if self.open else (
            f"update queue at {queue_depth}/{queue_limit}"
        )
        raise ServiceDegradedError(
            f"relaxed-consistency read shed ({reason}); "
            "retry with consistency='fresh' or after the backlog drains"
        )

    # ------------------------------------------------------------- accounting
    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.open:
            self.consecutive_successes += 1
            if self.consecutive_successes >= self.recovery_successes:
                self.open = False
                self.consecutive_successes = 0
                set_degraded("service", 0.0)

    def record_failure(self) -> None:
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        if not self.open and self.consecutive_failures >= self.failure_threshold:
            self.open = True
            set_degraded("service", 1.0)
