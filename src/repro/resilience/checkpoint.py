"""Engine checkpoint/restore: durable snapshots of a :class:`DynamicCFCM`.

A checkpoint captures everything the engine needs to *continue bit-equal*
with a never-crashed twin: the journaled graph (edges in insertion order —
Laplacian assembly iterates the weight map, so order is numerically
significant), the engine's RNG state, every forest pool (parent matrices,
importance weights, trace caches), every cached path system and JL
projection, the memoised query/evaluation results, and every incremental
tracker's factor state.  Restoring and then replaying the same mutation and
query sequence therefore reproduces the exact floats the uninterrupted
engine would have produced.

Format: one ``.npz`` archive (``np.savez_compressed``) holding the bulk
arrays plus a single JSON document (``meta``) for the scalar state.  The
archive never needs pickling to load, so a checkpoint is safe to read from
an untrusted store.  Writes go to a temporary sibling and are renamed into
place, so a crash mid-checkpoint never leaves a truncated archive behind.

Quiescing: :func:`checkpoint_engine` first folds every pending journal
event into every cached consumer and refactorises solver-backed (sparse)
trackers, so their implicit low-rank correction is empty and the base
factor is fully determined by the (serialised) graph.  Dense trackers keep
their Woodbury-accumulated inverse verbatim — a refactorisation would *not*
be bit-equal to the drifted product the live engine continues from.  The
projected (JL-sketched) estimator caches are deliberately dropped: they are
deterministic functions of serialised state and are rebuilt on first use
without consuming randomness.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, Dict, List

import numpy as np

from repro.exceptions import InvalidParameterError

#: Bump when the archive layout changes; restore refuses unknown versions.
CHECKPOINT_VERSION = 1


# ------------------------------------------------------------------ helpers
def _event_to_dict(event) -> Dict[str, Any]:
    return {
        "kind": event.kind, "u": int(event.u), "v": int(event.v),
        "weight": float(event.weight), "delta": float(event.delta),
        "version": int(event.version),
        "node": None if event.node is None else int(event.node),
        "edges": [[int(nb), float(w)] for nb, w in event.edges],
    }


def _event_from_dict(entry: Dict[str, Any]):
    from repro.dynamic.graph import GraphUpdate

    return GraphUpdate(
        kind=str(entry["kind"]), u=int(entry["u"]), v=int(entry["v"]),
        weight=float(entry["weight"]), delta=float(entry["delta"]),
        version=int(entry["version"]),
        node=None if entry["node"] is None else int(entry["node"]),
        edges=tuple((int(nb), float(w)) for nb, w in entry["edges"]),
    )


def _stats_to_dict(stats) -> Dict[str, Any]:
    payload = stats.as_dict()
    payload.pop("hit_rate", None)  # derived, not a field
    return payload


def _restore_stats(stats, payload: Dict[str, Any]) -> None:
    for key, value in payload.items():
        if hasattr(stats, key):
            setattr(stats, key, value)


# -------------------------------------------------------------------- graph
def _serialize_graph(graph, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    m = len(graph._weights)
    edge_u = np.empty(m, dtype=np.int64)
    edge_v = np.empty(m, dtype=np.int64)
    edge_w = np.empty(m, dtype=np.float64)
    for k, ((u, v), w) in enumerate(graph._weights.items()):
        edge_u[k], edge_v[k], edge_w[k] = u, v, w
    arrays["graph_edge_u"] = edge_u
    arrays["graph_edge_v"] = edge_v
    arrays["graph_edge_w"] = edge_w
    arrays["graph_active"] = np.array(
        [adj is not None for adj in graph._adjacency], dtype=bool
    )
    return {
        "version": int(graph._version),
        "node_version": int(graph._node_version),
        "journal_floor": int(graph._journal_floor),
        "active_count": int(graph._active_count),
        "non_unit_count": int(graph._non_unit_count),
        "journal": [_event_to_dict(event) for event in graph._journal],
    }


def _restore_graph(meta: Dict[str, Any], data) -> "Any":
    from repro.dynamic.graph import DynamicGraph

    graph = DynamicGraph.__new__(DynamicGraph)
    edge_u = data["graph_edge_u"]
    edge_v = data["graph_edge_v"]
    edge_w = data["graph_edge_w"]
    # Rebuilt in serialisation order: the weight map's insertion order feeds
    # np.fromiter in the Laplacian assemblies, so it is bit-significant.
    graph._weights = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(edge_u, edge_v, edge_w)
    }
    active = data["graph_active"]
    graph._adjacency = [set() if flag else None for flag in active]
    for u, v in graph._weights:
        graph._adjacency[u].add(v)
        graph._adjacency[v].add(u)
    graph._active_count = int(meta["active_count"])
    graph._journal = [_event_from_dict(e) for e in meta["journal"]]
    graph._journal_floor = int(meta["journal_floor"])
    graph._version = int(meta["version"])
    graph._node_version = int(meta["node_version"])
    graph._snapshot = None
    graph._snapshot_version = -1
    graph._mapping = None
    graph._mapping_node_version = -1
    graph._non_unit_count = int(meta["non_unit_count"])
    return graph


# ------------------------------------------------------------------- engine
def checkpoint_engine(engine, path: str) -> str:
    """Serialise ``engine`` (quiesced) to ``path``; returns the path written.

    Quiesces first: pending journal events are folded into every pool and
    tracker, and sparse trackers refactorise so their base factor matches
    the serialised graph exactly.  The engine remains fully usable — the
    quiesce is the same maintenance any query would have performed.
    """
    from repro.linalg.backends import DenseResistanceBackend, SparseResistanceBackend

    engine._sync_pools()
    for tracker in engine._trackers.values():
        tracker.sync()
        if isinstance(tracker.backend, SparseResistanceBackend):
            # Fold the implicit low-rank correction into a fresh base factor:
            # the restored side rebuilds the identical factorisation from the
            # serialised graph (splu is deterministic on an identical matrix).
            tracker._factorize()

    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, Any] = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "graph": _serialize_graph(engine.graph, arrays),
        "engine": {
            "pool_size": int(engine.pool_size),
            "ess_floor": float(engine.ess_floor),
            "adaptive_ess_floor": bool(engine.adaptive_ess_floor),
            "refresh_interval": int(engine.refresh_interval),
            "cache_capacity": int(engine.cache_capacity),
            "backend": engine.backend,
            "backend_options": engine.backend_options,
            "watchdog_interval": int(getattr(engine, "watchdog_interval", 0)),
            "drift_threshold": float(getattr(engine, "drift_threshold", 1e-6)),
            "config": None if engine.config is None else asdict(engine.config),
            "pool_version": int(engine._pool_version),
            "rng_state": engine.rng.bit_generator.state,
            "stats": _stats_to_dict(engine.stats),
        },
    }

    pools: List[Dict[str, Any]] = []
    for i, (roots, pool) in enumerate(engine._pools.items()):
        entry: Dict[str, Any] = {
            "key": [int(r) for r in roots],
            "capacity": int(pool.capacity),
            "ess_floor": float(pool.ess_floor),
            "adaptive_floor": bool(pool.adaptive_floor),
            "churn_accum": float(pool._churn_accum),
            "churn_pressure": float(pool._churn_pressure),
            "dead_drops": int(pool._dead_drops),
            "size": int(pool.size),
            "has_path": roots in engine._paths,
            "has_jl": roots in engine._jl,
        }
        arrays[f"pool{i}_roots"] = np.asarray(pool.roots, dtype=np.int64)
        if pool.size:
            arrays[f"pool{i}_parent"] = np.asarray(pool._batch.parent,
                                                   dtype=np.int64)
            arrays[f"pool{i}_logw"] = pool._log_weights
            arrays[f"pool{i}_trace"] = pool._trace
            arrays[f"pool{i}_trace_valid"] = pool._trace_valid
        if entry["has_path"]:
            paths = engine._paths[roots]
            arrays[f"path{i}_parent"] = np.asarray(paths.parent,
                                                   dtype=np.int64)
            entry["path_roots"] = [int(r) for r in paths.roots]
        if entry["has_jl"]:
            arrays[f"jl{i}"] = engine._jl[roots]
        pools.append(entry)
    meta["pools"] = pools

    eval_cache: List[Dict[str, Any]] = []
    for (kind, roots), (version, value) in engine._eval_cache.items():
        if isinstance(value, dict):
            payload: Any = {str(k): float(v) for k, v in value.items()}
        else:
            payload = float(value)
        eval_cache.append({"kind": kind, "roots": [int(r) for r in roots],
                           "version": int(version), "value": payload})
    meta["eval_cache"] = eval_cache

    query_cache: List[Dict[str, Any]] = []
    for key, (version, result) in engine._query_cache.items():
        entry = {
            "key": list(key), "version": int(version),
            "result": {
                "method": result.method, "group": list(result.group),
                "runtime_seconds": result.runtime_seconds,
                "parameters": result.parameters,
                "iteration_log": result.iteration_log,
                "cfcc": result.cfcc,
            },
        }
        try:
            json.dumps(entry)
        except (TypeError, ValueError):
            continue  # non-JSON diagnostic payload: recomputable, drop it
        query_cache.append(entry)
    meta["query_cache"] = query_cache

    trackers: List[Dict[str, Any]] = []
    for j, (group, tracker) in enumerate(engine._trackers.items()):
        backend = tracker.backend
        dense = isinstance(backend, DenseResistanceBackend)
        entry = {
            "group": [int(g) for g in group],
            "kind": "dense" if dense else "sparse",
            "synced_version": int(tracker._synced_version),
            "updates_since_refresh": int(tracker._updates_since_refresh),
            "stats": _stats_to_dict(tracker.stats),
            "watchdog": (None if tracker.watchdog is None
                         else tracker.watchdog.state_dict()),
        }
        arrays[f"trk{j}_kept"] = np.asarray(tracker.kept, dtype=np.int64)
        if dense:
            arrays[f"trk{j}_inverse"] = np.asarray(backend.inverse,
                                                   dtype=np.float64)
        else:
            # The sketched-diagonal probe stream is seeded by the factor
            # counter; carrying it over keeps post-restore sketches bit-equal.
            entry["factor_count"] = int(backend._factor_count)
        trackers.append(entry)
    meta["trackers"] = trackers

    arrays["meta"] = np.array(json.dumps(meta))
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    os.replace(tmp, path)
    return path


def restore_engine(path: str):
    """Rebuild a :class:`repro.dynamic.DynamicCFCM` from a checkpoint.

    The restored engine continues bit-equal with the checkpointed one: same
    RNG stream, same cached state, same factor state (dense inverses are
    restored verbatim; sparse base factors are re-derived from the identical
    serialised graph).  Journal events recorded after the checkpoint can be
    replayed onto :attr:`DynamicCFCM.graph` to reconverge with a crashed
    primary.
    """
    from repro.centrality.estimators import PathSystem, SamplingConfig
    from repro.dynamic.engine import DynamicCFCM
    from repro.dynamic.resistance import IncrementalResistance
    from repro.linalg.backends import DenseResistanceBackend
    from repro.resilience.watchdog import ResidualWatchdog
    from repro.sampling.batch import ForestBatch
    from repro.sampling.pool import WeightedForestPool

    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"][()]))
        if int(meta.get("checkpoint_version", -1)) != CHECKPOINT_VERSION:
            raise InvalidParameterError(
                f"unsupported checkpoint version "
                f"{meta.get('checkpoint_version')!r} (expected "
                f"{CHECKPOINT_VERSION})"
            )
        graph = _restore_graph(meta["graph"], data)
        spec = meta["engine"]
        config = (None if spec["config"] is None
                  else SamplingConfig(**spec["config"]))
        engine = DynamicCFCM(
            graph, seed=0, config=config, pool_size=spec["pool_size"],
            refresh_interval=spec["refresh_interval"],
            cache_capacity=spec["cache_capacity"],
            ess_floor=spec["ess_floor"], backend=spec["backend"],
            backend_options=spec["backend_options"],
            watchdog_interval=spec.get("watchdog_interval", 0),
            drift_threshold=spec.get("drift_threshold", 1e-6),
            adaptive_ess_floor=spec.get("adaptive_ess_floor", False),
        )
        engine.rng = np.random.default_rng(0)
        engine.rng.bit_generator.state = spec["rng_state"]
        engine._pool_version = int(spec["pool_version"])
        _restore_stats(engine.stats, spec["stats"])
        engine.stats.pool_ess = dict(spec["stats"].get("pool_ess", {}))

        for i, entry in enumerate(meta["pools"]):
            roots = tuple(int(r) for r in entry["key"])
            pool = WeightedForestPool(
                data[f"pool{i}_roots"], capacity=entry["capacity"],
                ess_floor=entry["ess_floor"],
                adaptive_floor=bool(entry.get("adaptive_floor", False)),
            )
            pool._churn_accum = float(entry.get("churn_accum", 0.0))
            pool._churn_pressure = float(entry.get("churn_pressure", 0.0))
            pool._dead_drops = int(entry["dead_drops"])
            if entry["size"]:
                parent = np.asarray(data[f"pool{i}_parent"], dtype=np.int64)
                pool._batch = ForestBatch(parent=parent, roots=pool.roots)
                pool._log_weights = np.asarray(data[f"pool{i}_logw"],
                                               dtype=np.float64)
                pool._trace = np.asarray(data[f"pool{i}_trace"],
                                         dtype=np.float64)
                pool._trace_valid = np.asarray(data[f"pool{i}_trace_valid"],
                                               dtype=bool)
                pool._projected_valid = np.zeros(pool.size, dtype=bool)
            engine._pools[roots] = pool
            if entry["has_path"]:
                engine._paths[roots] = PathSystem(
                    data[f"path{i}_parent"], entry["path_roots"]
                )
            if entry["has_jl"]:
                engine._jl[roots] = np.asarray(data[f"jl{i}"],
                                               dtype=np.float64)

        for entry in meta["eval_cache"]:
            key = (entry["kind"], tuple(int(r) for r in entry["roots"]))
            value = entry["value"]
            if isinstance(value, dict):
                value = {int(k): float(v) for k, v in value.items()}
            engine._eval_cache[key] = (int(entry["version"]), value)

        from repro.centrality.result import CFCMResult

        for entry in meta["query_cache"]:
            key = tuple(entry["key"])
            engine._query_cache[key] = (
                int(entry["version"]), CFCMResult(**entry["result"])
            )

        for j, entry in enumerate(meta["trackers"]):
            group = tuple(int(g) for g in entry["group"])
            kind = entry["kind"]
            watchdog = (None if entry["watchdog"] is None
                        else ResidualWatchdog.from_state(entry["watchdog"]))
            options = spec["backend_options"] if kind == "sparse" else None
            tracker = IncrementalResistance(
                graph, group, refresh_interval=spec["refresh_interval"],
                backend=kind, backend_options=options, watchdog=watchdog,
            )
            tracker.kept = np.asarray(data[f"trk{j}_kept"], dtype=np.int64)
            tracker._local = {int(x): row for row, x in
                              enumerate(tracker.kept)}
            tracker._synced_version = int(entry["synced_version"])
            tracker._updates_since_refresh = int(
                entry["updates_since_refresh"]
            )
            _restore_stats(tracker.stats, entry["stats"])
            if kind == "dense":
                backend = tracker.backend
                assert isinstance(backend, DenseResistanceBackend)
                backend.inverse = np.asarray(data[f"trk{j}_inverse"],
                                             dtype=np.float64)
                backend._n = int(backend.inverse.shape[0])
                backend._invalidate()
            else:
                tracker.backend._factor_count = int(entry["factor_count"])
            engine._trackers[group] = tracker
    return engine
