"""Numerical-health watchdog for tracked grounded-inverse state.

The Woodbury update chain is exact in exact arithmetic but accumulates
floating-point error (and, under the chaos harness, injected drift).  The
watchdog schedules cheap probes of the backward residual
``max|L_{-S} (B^{-1} e_i) - e_i|`` for a sampled unit vector ``e_i``: when
the residual exceeds the threshold, the owning tracker refactorises from
scratch.  Scheduling and row choice are counter-seeded so a restored
checkpoint replays the identical probe sequence.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.obs.metrics import REGISTRY

_DRIFT_RESIDUAL = REGISTRY.gauge(
    "repro_fault_drift_residual",
    "Last watchdog probe residual max|L(B^-1 e) - e| per tracked group",
    labels=("group",),
)
_WATCHDOG_REFACTS = REGISTRY.counter(
    "repro_fault_watchdog_refactorizations_total",
    "Auto-refactorizations triggered by the drift watchdog",
)


class ResidualWatchdog:
    """Probe schedule + threshold for one tracked factorization.

    Parameters
    ----------
    threshold:
        Residual above which the tracker must refactorise.
    interval:
        Probe every this-many ``tick()`` calls; ``0`` disables the watchdog.
    seed:
        Seed of the probe-row streams (combined with the probe counter, so
        state is two integers and serialises trivially).
    """

    def __init__(self, threshold: float = 1e-6, interval: int = 16,
                 seed: int = 0):
        if threshold <= 0:
            raise InvalidParameterError(
                f"watchdog threshold must be positive, got {threshold}"
            )
        if interval < 0:
            raise InvalidParameterError(
                f"watchdog interval must be non-negative, got {interval}"
            )
        self.threshold = float(threshold)
        self.interval = int(interval)
        self.seed = int(seed)
        self.calls = 0
        self.probes = 0
        self.trips = 0
        self.last_residual = 0.0

    # ------------------------------------------------------------- scheduling
    def tick(self) -> bool:
        """Advance the schedule; ``True`` when a probe is due this call."""
        if self.interval <= 0:
            return False
        self.calls += 1
        return self.calls % self.interval == 0

    def pick_row(self, n: int) -> int:
        """Deterministically choose the probe row for the next probe."""
        rng = np.random.default_rng((self.seed, self.probes))
        return int(rng.integers(int(n)))

    # ------------------------------------------------------------- accounting
    def record(self, residual: float, group: str = "") -> bool:
        """Record a probe result; ``True`` when it trips the threshold."""
        self.probes += 1
        self.last_residual = float(residual)
        if REGISTRY.enabled:
            _DRIFT_RESIDUAL.set(self.last_residual, group=group)
        return self.last_residual > self.threshold

    def count_trip(self) -> None:
        """Account one threshold trip that led to an auto-refactorisation."""
        self.trips += 1
        if REGISTRY.enabled:
            _WATCHDOG_REFACTS.inc()

    # ---------------------------------------------------------- serialisation
    def state_dict(self) -> Dict[str, Any]:
        return {"threshold": self.threshold, "interval": self.interval,
                "seed": self.seed, "calls": self.calls,
                "probes": self.probes, "trips": self.trips,
                "last_residual": self.last_residual}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ResidualWatchdog":
        watchdog = cls(threshold=state["threshold"],
                       interval=state["interval"], seed=state["seed"])
        watchdog.calls = int(state.get("calls", 0))
        watchdog.probes = int(state.get("probes", 0))
        watchdog.trips = int(state.get("trips", 0))
        watchdog.last_residual = float(state.get("last_residual", 0.0))
        return watchdog
