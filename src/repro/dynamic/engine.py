"""Dynamic CFCM query engine: cached queries with importance-weighted pools.

:class:`DynamicCFCM` fronts the batch CFCM algorithms with three layers of
state that survive across graph mutations:

1. **Query cache** — ``query(k, method, eps)`` results are memoised per graph
   version, so repeated queries on an unchanged graph are O(1) hits; any
   mutation invalidates them wholesale (the optimal group can move
   arbitrarily far under a single edge edit).
2. **Forest pools** — :meth:`evaluate_forest` estimates the group CFCC of a
   root set from a pool of sampled spanning forests, held as one
   :class:`repro.sampling.WeightedForestPool` per root set: a ``(B, n)``
   parent matrix plus per-forest importance weights.  Mutations *reweight*
   instead of flushing: a deleted edge drops exactly the forests whose
   parent pointers use it (the survivors are exact samples of the shrunk
   graph), a reweighted edge multiplies its users by the exact density
   ratio ``w'/w``, an inserted edge down-weights every stored forest by a
   cheap inclusion prior, and an inserted *node* extends every stored
   forest with a leaf attachment — insertions never force a flush.  Once
   the pool's effective sample size falls below ``ess_floor * pool_size``
   the next evaluation tops it up with a vectorised lockstep draw, evicting
   the lowest-weight forests.  Node removals remain structural (compact ids
   shift), so they still evict/flush.
3. **Incremental inverses** — :meth:`evaluate_exact` delegates to a cached
   :class:`repro.dynamic.IncrementalResistance` per group, which folds each
   pending journal suffix in as a single rank-``t`` Woodbury batch (O(n²t),
   one BLAS-3 pass) instead of O(n³) inversions, growing/downdating rows on
   node events.

The engine also *bounds the journal*: after each synchronisation it asks the
graph to :meth:`~repro.dynamic.DynamicGraph.compact` the prefix every cached
consumer has already seen, so a long-running service's journal stays flat.
(External consumers of the same graph that fall behind a compaction rebuild
from the snapshot — see :meth:`DynamicGraph.journal_since`.)

Hit/miss, reweighting/top-up counters and per-pool ESS are exposed via
:attr:`stats` so operators can see whether the caches earn their memory.
"""

from __future__ import annotations

import copy
import warnings
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, InvalidParameterError
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS
from repro.obs.tracing import trace
from repro.centrality.estimators import (
    PathSystem,
    SamplingConfig,
    batched_diag_estimates,
    batched_projected_estimates,
    rademacher_weights,
)
from repro.linalg.backends import ResistanceBackend, make_resistance_backend
from repro.centrality.result import CFCMResult
from repro.dynamic.graph import ADD, ADD_NODE, REMOVE, REMOVE_NODE, DynamicGraph
from repro.dynamic.resistance import IncrementalResistance
from repro.graph.graph import Graph
from repro.sampling.batch import ForestBatch, sample_forest_batch_vectorized
from repro.sampling.pool import (
    WeightedForestPool,
    edge_inclusion_prior,
    node_internal_prior,
)
from repro.utils.rng import RandomState, as_rng
from repro.utils.timer import clock
from repro.utils.validation import check_integer

# Hot-path metrics (no-ops until the default registry is enabled).
_OP_SECONDS = REGISTRY.histogram(
    "repro_engine_op_seconds", "Wall time of one engine operation",
    labels=("op",),
)
_TOPUP_FORESTS = REGISTRY.histogram(
    "repro_engine_topup_forests", "Fresh forests drawn per pool top-up",
    buckets=SIZE_BUCKETS,
)
_FOLD_FORESTS = REGISTRY.histogram(
    "repro_engine_fold_forests", "Stale forests folded per estimator fold",
    buckets=SIZE_BUCKETS,
)


@contextmanager
def _op_timer(op: str):
    """Record one engine operation's wall time onto the op histogram."""
    if not REGISTRY.enabled:
        yield
        return
    start = clock()
    try:
        yield
    finally:
        _OP_SECONDS.observe(clock() - start, op=op)


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one :class:`DynamicCFCM` instance.

    ``pools_flushed`` is retained for compatibility: with importance
    weighting it only counts the structural flushes that remain (node
    removals, journal-loss recovery), never edge churn.  ``pool_ess`` maps
    each live pool's root set (as a comma-joined key) to its current
    effective sample size.
    """

    query_hits: int = 0
    query_misses: int = 0
    eval_hits: int = 0
    eval_misses: int = 0
    forests_kept: int = 0
    forests_resampled: int = 0
    forests_reweighted: int = 0
    forests_dropped: int = 0
    forests_folded: int = 0
    pools_flushed: int = 0
    pools_evicted: int = 0
    ess_topups: int = 0
    batch_updates: int = 0
    batched_events: int = 0
    node_evictions: int = 0
    pool_ess: Dict[str, float] = field(default_factory=dict)

    def hit_rate(self) -> float:
        """Fraction of ``query`` calls answered from cache."""
        total = self.query_hits + self.query_misses
        return self.query_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "eval_hits": self.eval_hits,
            "eval_misses": self.eval_misses,
            "forests_kept": self.forests_kept,
            "forests_resampled": self.forests_resampled,
            "forests_reweighted": self.forests_reweighted,
            "forests_dropped": self.forests_dropped,
            "forests_folded": self.forests_folded,
            "pools_flushed": self.pools_flushed,
            "pools_evicted": self.pools_evicted,
            "ess_topups": self.ess_topups,
            "batch_updates": self.batch_updates,
            "batched_events": self.batched_events,
            "node_evictions": self.node_evictions,
            "hit_rate": self.hit_rate(),
            # Deep-copied so a snapshot attached to a response cannot mutate
            # under later engine activity (pool_ess nests per-pool state).
            "pool_ess": copy.deepcopy(self.pool_ess),
        }


def _pool_key(roots: Tuple[int, ...]) -> str:
    return ",".join(str(r) for r in roots)


class DynamicCFCM:
    """Query engine maintaining CFCM state across edge and node updates.

    Parameters
    ----------
    graph:
        A :class:`DynamicGraph` (a plain connected :class:`repro.Graph` is
        wrapped automatically).  Groups and query results use the dynamic
        graph's *stable* node ids throughout, also after node churn.
    seed:
        Master seed; every cache miss derives an independent child seed so
        results are reproducible for a fixed call sequence.
    config:
        Optional :class:`SamplingConfig` forwarded to the sampling methods.
    pool_size:
        Number of forests kept per evaluation root set.
    max_drift:
        Deprecated and ignored.  Forest pools no longer flush on drift:
        they importance-weight stored forests and top up on the ESS floor
        (``ess_floor``).  Passing a value emits a :class:`DeprecationWarning`.
    refresh_interval:
        Staleness budget of the per-group incremental inverses.
    cache_capacity:
        Maximum entries per cache (query results, forest pools, incremental
        inverses); least-recently-used entries are evicted beyond it so a
        long-running engine's memory stays bounded.
    ess_floor:
        Fraction of ``pool_size``: when a pool's effective sample size falls
        below ``ess_floor * pool_size``, the next evaluation replaces its
        stale mass with fresh lockstep draws.
    adaptive_ess_floor:
        Let every pool tune its live ESS floor from observed churn
        (:meth:`WeightedForestPool.effective_floor`): sustained churn
        relaxes the floor towards ``min(0.25, ess_floor)`` — halving redraw
        volume at negligible accuracy cost — and quiet periods restore the
        configured floor.  Off by default for parity with historical
        behaviour; the sharded engine enables it.
    backend:
        Resistance backend spec for the exact evaluation path: ``"dense"``
        (explicit inverse, the default), ``"sparse"`` (solver-backed, never
        materialises the inverse) or ``"auto"`` (picks by graph
        size/sparsity); forwarded to every
        :class:`~repro.dynamic.IncrementalResistance` this engine creates.
    backend_options:
        Keyword arguments for the backend constructor (sparse backend only).
    watchdog_interval:
        Probe the numerical health of every cached incremental inverse once
        per this-many synchronisations (the backward residual
        ``max|L_{-S}(B⁻¹e) − e|`` of a sampled unit solve); drift past
        ``drift_threshold`` triggers an automatic refactorisation.  ``0``
        (the default) disables the watchdog.
    drift_threshold:
        Residual above which a watchdog probe refactorises the tracker.
    """

    def __init__(self, graph: DynamicGraph | Graph, seed: RandomState = None,
                 config: Optional[SamplingConfig] = None, pool_size: int = 24,
                 max_drift: Optional[int] = None, refresh_interval: int = 64,
                 cache_capacity: int = 64, ess_floor: float = 0.5,
                 adaptive_ess_floor: bool = False,
                 backend: str | ResistanceBackend = "dense",
                 backend_options: Optional[Dict[str, object]] = None,
                 watchdog_interval: int = 0,
                 drift_threshold: float = 1e-6):
        if isinstance(graph, Graph):
            graph = DynamicGraph(graph)
        self.graph = graph
        if isinstance(backend, ResistanceBackend):
            # One backend instance holds the factorisation of exactly one
            # grounded matrix; the engine keeps a tracker per *group*, so a
            # shared instance would corrupt state across groups.
            raise InvalidParameterError(
                "DynamicCFCM takes a backend spec string ('dense', 'sparse' "
                "or 'auto'), not a backend instance — each cached group "
                "tracker needs its own"
            )
        backend = str(backend).lower()
        if backend not in ("dense", "sparse", "auto"):
            raise InvalidParameterError(
                f"unknown resistance backend {backend!r} (expected "
                f"'dense', 'sparse' or 'auto')"
            )
        self.backend = backend
        self.backend_options = dict(backend_options) if backend_options else None
        self.rng = as_rng(seed)
        self.config = config
        self.pool_size = check_integer("pool_size", pool_size, minimum=1)
        if max_drift is not None:
            warnings.warn(
                "max_drift is deprecated and ignored: forest pools now "
                "importance-weight stored forests and top up on the ESS "
                "floor (see the ess_floor parameter)",
                DeprecationWarning, stacklevel=2,
            )
            check_integer("max_drift", max_drift, minimum=0)
        self.max_drift = max_drift  # retained for introspection only
        self.ess_floor = float(ess_floor)
        if not 0.0 <= self.ess_floor <= 1.0:
            raise InvalidParameterError(
                f"ess_floor must lie in [0, 1], got {ess_floor}"
            )
        self.adaptive_ess_floor = bool(adaptive_ess_floor)
        self.refresh_interval = check_integer("refresh_interval", refresh_interval,
                                              minimum=1)
        self.cache_capacity = check_integer("cache_capacity", cache_capacity,
                                            minimum=1)
        self.watchdog_interval = check_integer("watchdog_interval",
                                               watchdog_interval, minimum=0)
        self.drift_threshold = float(drift_threshold)
        if self.drift_threshold <= 0.0:
            raise InvalidParameterError(
                f"drift_threshold must be positive, got {drift_threshold}"
            )
        self.stats = EngineStats()
        self._query_cache: Dict[Tuple, Tuple[int, CFCMResult]] = {}
        self._eval_cache: Dict[Tuple, Tuple[int, float]] = {}
        self._pools: Dict[Tuple[int, ...], WeightedForestPool] = {}
        # Per-pool fixed path system (Lemma 3.3's P_{u,S}); each stored
        # forest's trace contribution is cached against it, so evaluations
        # only fold freshly drawn forests.
        self._paths: Dict[Tuple[int, ...], PathSystem] = {}
        # Per-pool JL weight matrix of the projected-gain evaluation; its
        # lifetime tracks the path system's (same id space, same roots).
        self._jl: Dict[Tuple[int, ...], np.ndarray] = {}
        self._trackers: Dict[Tuple[int, ...], IncrementalResistance] = {}
        self._pool_version = graph.version

    # ---------------------------------------------------------------- queries
    @property
    def version(self) -> int:
        """Current version of the underlying dynamic graph."""
        return self.graph.version

    @property
    def synced_version(self) -> int:
        """Graph version the cached pools and journal cursor have folded in."""
        return self._pool_version

    @property
    def pending_events(self) -> int:
        """Journal events applied to the graph but not yet seen by the caches."""
        return self.graph.version - self._pool_version

    def sync(self) -> int:
        """Fold pending journal events into every cached consumer *now*.

        This is the maintenance half of every query, exposed as a
        non-blocking hook so a front end (e.g. the asyncio service in
        :mod:`repro.service`) can pump pool reweighting and journal
        compaction off the query hot path — between traffic bursts, from a
        worker thread, without answering anything.  Returns the version the
        caches now reflect, which callers can use as a consistency token.
        """
        self._sync_pools()
        return self._pool_version

    def query(self, k: int, method: str = "schur", eps: float = 0.2,
              evaluate: bool | str = False) -> CFCMResult:
        """Solve CFCM on the current graph, reusing the cache when unchanged.

        Parameters mirror :func:`repro.maximize_cfcc`; the result of a miss
        is computed by the corresponding batch algorithm on the current
        snapshot and memoised until the next mutation.  ``result.group``
        holds stable node ids (snapshot ids are translated back after node
        churn).
        """
        from repro.centrality.api import maximize_cfcc, validate_cfcm_parameters

        k = validate_cfcm_parameters(self.graph.n, k, str(method).lower(), eps,
                                     self.config)
        if not self.graph.is_unit_weighted:
            # snapshot() exposes only the topology, so every batch method
            # (including exact greedy) would silently optimise the wrong
            # objective on a weighted graph.
            raise InvalidParameterError(
                "selection queries assume unit edge weights; reset weights "
                "to 1 (weighted graphs are supported for evaluation via "
                "evaluate_exact only)"
            )
        with trace("engine.query", k=k, method=str(method).lower()) as span, \
                _op_timer("query"):
            # Keep the pool/tracker state machine and journal compaction
            # moving under query-only traffic too, or the journal would grow
            # unboundedly in a service that never calls the evaluate paths.
            self._sync_pools()
            # True and "exact" request the same evaluation; normalising the
            # key keeps them from occupying two cache slots for one result.
            if evaluate is True:
                evaluate = "exact"
            key = (k, str(method).lower(), round(float(eps), 9),
                   str(evaluate) if evaluate else "")
            cached = self._query_cache.get(key)
            if cached is not None and cached[0] == self.graph.version:
                self.stats.query_hits += 1
                span.set(cache="hit")
                _lru_store(self._query_cache, key, cached, self.cache_capacity)
                return cached[1]
            self.stats.query_misses += 1
            span.set(cache="miss")
            child_seed = int(self.rng.integers(0, 2**62))
            result = maximize_cfcc(self.graph.snapshot(), k, method=method,
                                   eps=eps, seed=child_seed, config=self.config,
                                   evaluate=evaluate)
            mapping = self.graph.snapshot_mapping()
            if int(mapping[-1]) != mapping.size - 1:
                # Node churn left holes in the id space: translate the
                # snapshot's compact ids back to the stable ids callers
                # reason in — in the group and in the per-iteration
                # diagnostics alike.
                result.group = [int(mapping[node]) for node in result.group]
                for entry in result.iteration_log:
                    if "node" in entry:
                        entry["node"] = int(mapping[entry["node"]])
            _lru_store(self._query_cache, key, (self.graph.version, result),
                       self.cache_capacity)
            return result

    def evaluate(self, group: Sequence[int], mode: str = "exact") -> float:
        """Group CFCC of ``group`` on the current graph.

        ``mode="exact"`` uses the incremental grounded inverse (one rank-``t``
        Woodbury batch per pending journal suffix); ``mode="forest"`` uses the
        importance-weighted forest pool (estimator accuracy grows with
        ``pool_size``).
        """
        mode = str(mode).lower()
        if mode == "exact":
            return self.evaluate_exact(group)
        if mode == "forest":
            return self.evaluate_forest(group)
        raise InvalidParameterError(f"unknown evaluation mode {mode!r}")

    def tracker(self, group: Sequence[int]) -> IncrementalResistance:
        """The cached per-group incremental inverse, created on first use.

        The maintenance entry point behind :meth:`evaluate_exact`, exposed
        so compositional front ends (the sharded engine's per-shard Schur
        stitch) can reach the tracker's solve surface
        (:meth:`~repro.dynamic.IncrementalResistance.resistance_column`,
        :attr:`~repro.dynamic.IncrementalResistance.kept`) without going
        through a scalar evaluation.  The tracker is LRU-cached under the
        validated group key exactly like an evaluation would cache it.
        """
        self._sync_pools()
        key = self.graph.validate_group(group)
        tracker = self._trackers.get(key)
        if tracker is None:
            self.stats.eval_misses += 1
            tracker = IncrementalResistance(
                self.graph, key, refresh_interval=self.refresh_interval,
                backend=self.backend,
                backend_options=self.backend_options,
                watchdog=self._make_watchdog(key))
        else:
            self.stats.eval_hits += 1
        _lru_store(self._trackers, key, tracker, self.cache_capacity)
        return tracker

    def evaluate_exact(self, group: Sequence[int]) -> float:
        """Exact group CFCC via the per-group incremental inverse."""
        with trace("engine.evaluate_exact") as span, _op_timer("evaluate_exact"):
            key = self.graph.validate_group(group)
            span.set(group=_pool_key(key))
            cached = key in self._trackers
            span.set(cache="hit" if cached else "miss")
            tracker = self.tracker(key)
            batches = tracker.stats.batch_updates
            events = tracker.stats.batched_events
            value = tracker.group_cfcc()
            self.stats.batch_updates += tracker.stats.batch_updates - batches
            self.stats.batched_events += tracker.stats.batched_events - events
            return value

    def evaluate_forest(self, group: Sequence[int]) -> float:
        """Estimated group CFCC from the importance-weighted forest pool.

        ``Tr(inv(L_{-S}))`` is the sum of the per-node diagonal estimators of
        Lemma 3.3, evaluated as a *weighted* mean over the pooled forests
        rooted at ``S`` (one batched ``(B, n)`` fold, shared with the static
        estimators).  Stale forests contribute with their importance weight;
        the pool is topped up with fresh lockstep draws whenever its
        effective sample size falls below the ESS floor.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest evaluation assumes unit edge weights; use mode='exact'"
            )
        roots = self.graph.validate_group(group)
        with trace("engine.evaluate_forest", roots=_pool_key(roots)) as span, \
                _op_timer("evaluate_forest"):
            self._sync_pools()
            cache_key = ("forest", roots)
            cached = self._eval_cache.get(cache_key)
            if cached is not None and cached[0] == self.graph.version:
                self.stats.eval_hits += 1
                span.set(cache="hit")
                _lru_store(self._eval_cache, cache_key, cached,
                           self.cache_capacity)
                return cached[1]
            self.stats.eval_misses += 1
            span.set(cache="miss")

            snapshot = self.graph.snapshot()
            compact_roots = self.graph.compact_nodes(roots)
            pool = self._require_pool(roots, compact_roots)
            self.stats.forests_kept += pool.size
            self._top_up(pool, snapshot, compact_roots)

            # One weight-aware batched fold — and only over the forests whose
            # trace contribution is not already cached against the pool's
            # path system (fresh draws, or everything after a path
            # invalidation).
            path = self._require_path(roots, snapshot, compact_roots, pool)
            stale = np.flatnonzero(~pool.trace_valid)
            if stale.size:
                with trace("estimator.fold", forests=int(stale.size)):
                    diag = batched_diag_estimates(pool.batch().parent[stale],
                                                  path)
                    pool.set_traces(stale, diag.sum(axis=1))
                _FOLD_FORESTS.observe(int(stale.size))
                self.stats.forests_folded += int(stale.size)
            weights = pool.weights()
            pooled = float(weights @ pool.traces) / float(weights.sum())
            value = self.graph.n / pooled
            _lru_store(self._eval_cache, cache_key,
                       (self.graph.version, value), self.cache_capacity)
            self._record_pool_health(roots, pool)
            return value

    def evaluate_forest_delta(self, group: Sequence[int]) -> Dict[int, float]:
        """ForestDelta gains ``Δ(u, S)`` for every ``u ∉ S``, from the pool.

        The pooled counterpart of
        :func:`repro.centrality.estimators.estimate_forest_delta`:
        ``gains[u] ≈ (inv(L_{-S})²)_uu / (inv(L_{-S}))_uu``, with the
        numerator JL-sketched through ``config.jl_rows(n)`` Rademacher
        weight rows.  Per-forest projected and diagonal estimator rows are
        cached against the pool's path system and JL projection, so a churn
        evaluation folds only the freshly drawn forests — the same
        incremental contract :meth:`evaluate_forest` has for traces.  Keys
        are stable node ids.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest evaluation assumes unit edge weights; use mode='exact'"
            )
        roots = self.graph.validate_group(group)
        with trace("engine.evaluate_forest_delta", roots=_pool_key(roots)) \
                as span, _op_timer("evaluate_forest_delta"):
            self._sync_pools()
            cache_key = ("forest_delta", roots)
            cached = self._eval_cache.get(cache_key)
            if cached is not None and cached[0] == self.graph.version:
                self.stats.eval_hits += 1
                span.set(cache="hit")
                _lru_store(self._eval_cache, cache_key, cached,
                           self.cache_capacity)
                return dict(cached[1])
            self.stats.eval_misses += 1
            span.set(cache="miss")

            snapshot = self.graph.snapshot()
            compact_roots = self.graph.compact_nodes(roots)
            pool = self._require_pool(roots, compact_roots)
            self.stats.forests_kept += pool.size
            self._top_up(pool, snapshot, compact_roots)
            path = self._require_path(roots, snapshot, compact_roots, pool)

            rows = (self.config or SamplingConfig()).jl_rows(snapshot.n)
            jl = self._jl.get(roots)
            if jl is None or jl.shape != (rows, snapshot.n):
                jl = rademacher_weights(rows, snapshot.n, compact_roots,
                                        self.rng)
                self._jl[roots] = jl
                pool.invalidate_projected()
            stale = np.flatnonzero(~pool.projected_valid)
            if stale.size:
                with trace("estimator.fold_projected", forests=int(stale.size)):
                    mask = np.zeros(pool.size, dtype=bool)
                    mask[stale] = True
                    sub = pool.batch().select(mask)
                    projected = batched_projected_estimates(sub, path, jl)
                    diag = batched_diag_estimates(sub.parent, path)
                    pool.set_projected(stale, projected, diag)
                _FOLD_FORESTS.observe(int(stale.size))
                self.stats.forests_folded += int(stale.size)
            weights = pool.weights()
            total = float(weights.sum())
            mean_projected = np.einsum("b,bwn->wn", weights,
                                       pool.projected) / total
            mean_diag = (weights @ pool.projected_diag) / total
            numerators = np.sum(mean_projected * mean_projected, axis=0)

            mapping = self.graph.snapshot_mapping()
            degrees = snapshot.degrees
            compact_set = set(int(r) for r in compact_roots)
            gains: Dict[int, float] = {}
            for u in range(snapshot.n):
                if u in compact_set:
                    continue
                # Same denominator floor as the batch estimator:
                # (inv(L_{-S}))_uu >= 1/d_u by the Neumann series.
                floor = 1.0 / max(int(degrees[u]), 1)
                denominator = max(float(mean_diag[u]), floor)
                gains[int(mapping[u])] = float(numerators[u]) / denominator
            _lru_store(self._eval_cache, cache_key,
                       (self.graph.version, gains), self.cache_capacity)
            self._record_pool_health(roots, pool)
            return dict(gains)

    def refill_pool(self, group: Sequence[int], sampler=None) -> int:
        """Top the forest pool of ``group`` up; returns the number drawn.

        The sampling half of :meth:`evaluate_forest`, exposed so a front end
        can refresh pools ahead of query traffic (prefetching).  ``sampler``
        optionally overrides how the missing forests are drawn: a callable
        ``sampler(snapshot, compact_roots, count, seed)`` returning that many
        forests — either a :class:`~repro.sampling.batch.ForestBatch` or a
        list of :class:`repro.sampling.forest.Forest` objects — the asyncio
        service passes its worker pool's sampler here, which defaults to the
        lockstep vectorised kernel and falls back to a process pool only for
        batches too large for it.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest pools assume unit edge weights; use mode='exact'"
            )
        roots = self.graph.validate_group(group)
        self._sync_pools()
        compact_roots = self.graph.compact_nodes(roots)
        pool = self._require_pool(roots, compact_roots)
        drawn = self._top_up(pool, self.graph.snapshot(), compact_roots,
                             sampler=sampler)
        self._record_pool_health(roots, pool)
        return drawn

    def pool_health(self) -> Dict[str, Dict[str, float]]:
        """Per-pool health snapshots (size, capacity, ESS, stale fraction)."""
        return {
            _pool_key(roots): pool.health()
            for roots, pool in self._pools.items()
        }

    # ----------------------------------------------------- durability hooks
    def checkpoint(self, path: str) -> str:
        """Serialise the full engine state to ``path`` (see
        :mod:`repro.resilience.checkpoint` for the format).  The engine is
        quiesced first (pending journal events folded in) and remains fully
        usable afterwards.  Returns the path written."""
        from repro.resilience.checkpoint import checkpoint_engine

        return checkpoint_engine(self, path)

    @classmethod
    def restore(cls, path: str) -> "DynamicCFCM":
        """Rebuild an engine from a :meth:`checkpoint` archive.

        The restored engine continues *bit-equal* with the checkpointed one:
        identical RNG stream, caches, pools and factor state.  To recover a
        crashed primary, replay its post-checkpoint mutations onto
        :attr:`graph` — the journal-replayed engine reconverges exactly.
        """
        from repro.resilience.checkpoint import restore_engine

        return restore_engine(path)

    def _make_watchdog(self, key: Tuple[int, ...]):
        """A per-tracker drift watchdog, or ``None`` when disabled.

        Seeded from the group key so every tracker probes an independent,
        deterministic row stream (and a restored checkpoint replays it).
        """
        if self.watchdog_interval <= 0:
            return None
        from repro.resilience.watchdog import ResidualWatchdog

        return ResidualWatchdog(
            threshold=self.drift_threshold, interval=self.watchdog_interval,
            seed=zlib.crc32(_pool_key(key).encode("utf-8")),
        )

    # ------------------------------------------------------------ maintenance
    def _require_pool(self, roots: Tuple[int, ...],
                      compact_roots: Sequence[int]) -> WeightedForestPool:
        """The pool for ``roots``, recreated when empty (fresh compact ids)."""
        pool = self._pools.get(roots)
        if pool is None or pool.size == 0:
            # An empty pool is rebuilt entirely from the current snapshot, so
            # it restarts with the mapping (and weights) in force right now;
            # its old path system (if any) is for a dead id space.
            pool = WeightedForestPool(compact_roots, capacity=self.pool_size,
                                      ess_floor=self.ess_floor,
                                      adaptive_floor=self.adaptive_ess_floor)
            self._paths.pop(roots, None)
            self._jl.pop(roots, None)
        _lru_store(self._pools, roots, pool, self.cache_capacity,
                   on_evict=self._on_pool_evicted)
        return pool

    def _require_path(self, roots: Tuple[int, ...], snapshot: Graph,
                      compact_roots: Sequence[int],
                      pool: WeightedForestPool) -> PathSystem:
        """The pool's path system, rebuilt when the id space moved on.

        A rebuild invalidates every cached per-forest estimator row (traces
        and projected rows alike): they were computed against paths that no
        longer exist.
        """
        path = self._paths.get(roots)
        if path is None or path.n != snapshot.n:
            path = PathSystem.from_graph(snapshot, compact_roots)
            self._paths[roots] = path
            pool.invalidate_traces()
            pool.invalidate_projected()
        return path

    def _top_up(self, pool: WeightedForestPool, snapshot: Graph,
                compact_roots: Sequence[int], sampler=None) -> int:
        """Draw the fresh forests the pool's refresh plan asks for.

        Covers both the size deficit (forests killed by deletions) and the
        ESS floor (stale mass from insertions/reweights); fresh forests are
        drawn as one lockstep vectorised batch and admitted at weight 1,
        evicting the lowest-weight forests beyond capacity.
        """
        missing = pool.plan_refresh()
        if missing <= 0:
            return 0
        if missing > self.pool_size - pool.size:
            self.stats.ess_topups += 1
        with trace("pool.topup", missing=missing):
            if sampler is None:
                fresh: ForestBatch | list = sample_forest_batch_vectorized(
                    snapshot, compact_roots, missing, seed=self.rng
                )
                drawn = fresh.batch_size
            else:
                child_seed = int(self.rng.integers(0, 2**62))
                fresh = sampler(snapshot, compact_roots, missing, child_seed)
                if not isinstance(fresh, ForestBatch):
                    fresh = list(fresh)  # materialise once: counted, then admitted
                drawn = (fresh.batch_size if isinstance(fresh, ForestBatch)
                         else len(fresh))
            if drawn != missing:
                raise InvalidParameterError(
                    f"sampler returned {drawn} forests, expected {missing}"
                )
            pool.admit(fresh)
        _TOPUP_FORESTS.observe(missing)
        self.stats.forests_resampled += missing
        return missing

    def _sync_pools(self) -> None:
        """Replay pending journal events onto every cached consumer.

        Edge events reweight forest pools (removals kill exactly the using
        forests, reweights apply exact density ratios, insertions decay by an
        inclusion prior); node insertions extend every stored forest with a
        leaf attachment.  Only node *removals* remain structural: compact
        snapshot ids shift, so dependent pools/trackers are evicted and the
        survivors flushed.  Afterwards the journal prefix every cached
        consumer has seen is compacted away.
        """
        if self.graph.version == self._pool_version:
            # Nothing pending: skip the replay (and the span) entirely.
            self._compact_journal()
            return
        with trace("engine.sync_pools",
                   pending=self.graph.version - self._pool_version):
            dirty = True
            try:
                events = self.graph.journal_since(self._pool_version)
                dirty = bool(events)
            except GraphError:
                # Another consumer compacted the journal past our cursor; the
                # replay is lost, so conservatively flush every pool and
                # resume from the current version (trackers recover the same
                # way).
                for roots, pool in self._pools.items():
                    self._flush_pool(roots, pool)
                self._pool_version = self.graph.version
                events = []
            removals = [event for event in events if event.kind == REMOVE_NODE]
            if removals:
                # Structural: process the node removals (evicting dependent
                # state, flushing survivors).  Every pool ends up empty, so
                # the edge/insertion events of the same suffix are no-ops for
                # pools — which also means the per-event replay below may
                # safely use the *current* id mapping.
                for event in removals:
                    self._evict_node(int(event.node))
            elif events:
                with trace("pool.reweight", events=len(events)):
                    for event in events:
                        if event.kind == ADD_NODE:
                            self._extend_pools(event)
                        elif event.kind == ADD:
                            self._decay_pools(event)
                        elif event.kind == REMOVE:
                            self._invalidate_pools(event)
                        else:  # reweight: exact density-ratio update
                            self._reweight_pools(event)
            if events:
                self._pool_version = self.graph.version
            if dirty:
                # Only re-snapshot pool health when something actually
                # changed: ess() is O(B) per pool, and _sync_pools runs on
                # every request.
                for roots, pool in self._pools.items():
                    self._record_pool_health(roots, pool)
            self._compact_journal()

    def _extend_pools(self, event) -> None:
        """Attach an inserted node to every stored forest as a leaf.

        With no node removal in the replayed suffix, the inserted node's
        compact id is exactly the next column of every pool's parent matrix
        (fresh stable ids sort last), and the attachment neighbours keep
        their compact ids — so the extension is a pure column append.
        """
        neighbours = [int(nb) for nb, _ in event.edges]
        attachment = [float(w) for _, w in event.edges]
        if not all(self.graph.has_node(nb) for nb in neighbours):
            for roots, pool in self._pools.items():
                self._flush_pool(roots, pool)
            return
        compact = self.graph.compact_nodes(neighbours)
        stale = node_internal_prior(
            [self.graph.degree(nb) for nb in neighbours]
        )
        new_column = self.graph.compact_index(int(event.node))
        for roots, pool in self._pools.items():
            if pool.size == 0:
                # Nothing to extend — and any cached path system is now one
                # node behind the id space, so it must not survive either
                # (nor the JL projection, drawn for the old node count).
                self._paths.pop(roots, None)
                self._jl.pop(roots, None)
                continue
            if pool.n != new_column:
                self._flush_pool(roots, pool)  # id-space mismatch: rebuild lazily
                continue
            extended = pool.extend_leaf(compact, attachment, stale, self.rng)
            self.stats.forests_reweighted += extended
            self.stats.forests_dropped += pool.take_dead_drops()
            path = self._paths.get(roots)
            if path is None:
                continue
            # The path system gains the same leaf (fixed first attachment),
            # leaving every existing path — and every cached trace row —
            # intact; cached rows only gain the new node's column, priced by
            # a single-column walk instead of a full refold.
            path = path.extended(compact[0])
            self._paths[roots] = path
            cached = np.flatnonzero(pool.trace_valid)
            if cached.size:
                column = batched_diag_estimates(
                    pool.batch().parent[cached], path, columns=[new_column]
                )
                pool.add_to_traces(cached, column[:, 0])

    def _decay_pools(self, event) -> None:
        """Down-weight every pool after an edge insertion (stale stratum).

        The decay is the exact balance-heuristic importance ratio wherever
        the pool can price it: a stored forest avoids the new edge ``e``,
        so its density under the new distribution is ``Z/Z' = 1 - p`` with
        ``p = Pr_new[e ∈ F] = w_e R'(u, v)`` (matrix-forest theorem, ``R'``
        the grounded effective resistance *after* the insertion).  ``R'``
        follows from the pre-insertion resistance ``R`` via the rank-one
        identity ``R' = R / (1 + w_e R)``, and ``R`` is estimated from the
        pool's own draws with the projected forest estimator
        ``(e_u - e_v)^T inv(L_{-S}) (e_u - e_v)``.  Pools that cannot price
        the edge (empty, no path system yet, non-unit weights, degenerate
        estimate) fall back to the conservative degree prior
        (:func:`edge_inclusion_prior`).
        """
        if not (self.graph.has_node(event.u) and self.graph.has_node(event.v)):
            return
        prior = edge_inclusion_prior(self.graph.degree(event.u),
                                     self.graph.degree(event.v))
        cu = cv = None
        if self.graph.is_unit_weighted:
            cu, cv = self._compact_endpoints(event.u, event.v)
        for roots, pool in self._pools.items():
            stale = prior
            if cu is not None:
                stale = self._balance_decay(roots, pool, cu, cv, prior)
            self.stats.forests_reweighted += pool.apply_addition(stale)
            self.stats.forests_dropped += pool.take_dead_drops()
            if pool.size == 0:
                self._paths.pop(roots, None)
                self._jl.pop(roots, None)

    def _balance_decay(self, roots: Tuple[int, ...],
                       pool: WeightedForestPool, cu: int, cv: int,
                       prior: float) -> float:
        """Balance-heuristic decay for one pool, or ``prior`` when unpriceable.

        One projected-estimator fold with the single probe row
        ``e_u - e_v`` prices the inserted unit edge's grounded effective
        resistance from the pooled draws (self-normalised over the
        importance weights); see :meth:`_decay_pools` for the algebra.
        """
        if pool.size == 0:
            return prior
        path = self._paths.get(roots)
        if path is None or pool.n != path.n or max(cu, cv) >= path.n:
            return prior
        probe = np.zeros((1, path.n))
        probe[0, cu] = 1.0
        probe[0, cv] = -1.0
        projected = batched_projected_estimates(pool.batch(), path, probe)
        samples = projected[:, 0, cu] - projected[:, 0, cv]
        weights = pool.weights()
        total = float(weights.sum())
        if not np.isfinite(total) or total <= 0.0:
            return prior
        resistance = float(weights @ samples) / total
        if not np.isfinite(resistance) or resistance <= 0.0:
            return prior
        # Unit insertion: p = R' = R / (1 + R), capped away from certainty.
        stale = resistance / (1.0 + resistance)
        return min(stale, 0.95)

    def _invalidate_pools(self, event) -> None:
        """Drop exactly the forests whose parent pointers use a deleted edge."""
        cu, cv = self._compact_endpoints(event.u, event.v)
        if cu is None:
            return
        for roots, pool in self._pools.items():
            self.stats.forests_dropped += pool.apply_removal(cu, cv)
            path = self._paths.get(roots)
            if path is None:
                continue
            if pool.size == 0:
                self._paths.pop(roots, None)
                self._jl.pop(roots, None)
            elif path.uses_edge(cu, cv):
                # The deleted edge was on the fixed path system: cached
                # trace and projected contributions are for paths that no
                # longer exist.
                del self._paths[roots]
                pool.invalidate_traces()
                pool.invalidate_projected()

    def _reweight_pools(self, event) -> None:
        """Apply the exact density ratio ``w'/w`` to an edge's using forests."""
        cu, cv = self._compact_endpoints(event.u, event.v)
        if cu is None:
            return
        old_weight = event.weight - event.delta
        if old_weight <= 0.0:
            # The journal stores (new weight, delta); reconstructing the old
            # weight cancels catastrophically for extreme ratios (e.g.
            # 1e-25 -> 1).  An unrecoverable ratio means unknowable
            # importance weights, so fall back to the conservative flush.
            for roots, pool in self._pools.items():
                self._flush_pool(roots, pool)
            return
        ratio = event.weight / old_weight
        for roots, pool in self._pools.items():
            self.stats.forests_reweighted += pool.apply_reweight(cu, cv, ratio)
            self.stats.forests_dropped += pool.take_dead_drops()
            if pool.size == 0:
                self._paths.pop(roots, None)
                self._jl.pop(roots, None)

    def _flush_pool(self, roots: Tuple[int, ...],
                    pool: WeightedForestPool) -> None:
        """Flush a pool and retire its path system (kept in lockstep:
        a path entry must never outlive the forests it was built for)."""
        self._paths.pop(roots, None)
        self._jl.pop(roots, None)
        if pool.size:
            pool.flush()
            self.stats.pools_flushed += 1

    def _evict_node(self, node: int) -> None:
        """Drop cached state referencing a removed node."""
        for roots in [r for r in self._pools if node in r]:
            del self._pools[roots]
            self.stats.pool_ess.pop(_pool_key(roots), None)
            self.stats.node_evictions += 1
        for group in [g for g in self._trackers if node in g]:
            del self._trackers[group]
            self.stats.node_evictions += 1
        # Surviving pools' forests no longer span a valid snapshot id space,
        # and neither does any path system or JL projection.
        self._paths.clear()
        self._jl.clear()
        for roots, pool in self._pools.items():
            self._flush_pool(roots, pool)

    def _on_pool_evicted(self, roots: Tuple[int, ...],
                         pool: WeightedForestPool) -> None:
        """LRU-eviction hook: record the event and drop the pool's state.

        The pool's health entry and path system go with it, so
        :attr:`EngineStats.pool_ess` only ever lists live pools and nothing
        is left behind for a silently vanished pool.
        """
        self.stats.pools_evicted += 1
        self.stats.pool_ess.pop(_pool_key(roots), None)
        self._paths.pop(roots, None)
        self._jl.pop(roots, None)

    def _record_pool_health(self, roots: Tuple[int, ...],
                            pool: WeightedForestPool) -> None:
        self.stats.pool_ess[_pool_key(roots)] = pool.ess()

    def _compact_endpoints(self, u: int, v: int) -> Tuple[Optional[int], Optional[int]]:
        if not (self.graph.has_node(u) and self.graph.has_node(v)):
            return None, None
        return self.graph.compact_index(u), self.graph.compact_index(v)

    def _compact_journal(self) -> None:
        """Ask the graph to drop the journal prefix all consumers have seen.

        A cached tracker lagging more than ``refresh_interval`` events will
        refresh from the snapshot rather than replay on its next sync, so it
        never needs the old suffix — don't let it pin the floor (and the
        journal's memory) at its stale version forever.
        """
        lag_floor = self.graph.version - self.refresh_interval
        floor = self._pool_version
        for tracker in self._trackers.values():
            floor = min(floor, max(tracker.synced_version, lag_floor))
        self.graph.compact(floor)


def _lru_store(cache: Dict, key, value, capacity: int,
               on_evict: Optional[Callable] = None) -> None:
    """Insert ``key`` as the most-recent entry, evicting down to ``capacity``.

    Called on every hit and miss alike, so dict insertion order doubles as
    LRU order; the caches hold dense inverses / forest pools, so bounding
    them is what keeps a long-running engine's memory flat.  ``on_evict``
    receives ``(key, value)`` for every entry dropped, so owners can record
    the eviction and release any per-entry bookkeeping (a silently vanishing
    pool used to leave its health/cursor state behind).
    """
    cache.pop(key, None)
    cache[key] = value
    while len(cache) > capacity:
        old_key = next(iter(cache))
        old_value = cache.pop(old_key)
        if on_evict is not None:
            on_evict(old_key, old_value)
