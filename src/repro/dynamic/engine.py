"""Dynamic CFCM query engine: cached queries with selective invalidation.

:class:`DynamicCFCM` fronts the batch CFCM algorithms with three layers of
state that survive across graph mutations:

1. **Query cache** — ``query(k, method, eps)`` results are memoised per graph
   version, so repeated queries on an unchanged graph are O(1) hits; any
   mutation invalidates them wholesale (the optimal group can move
   arbitrarily far under a single edge edit).
2. **Forest pools** — :meth:`evaluate_forest` estimates the group CFCC of a
   root set from a pool of sampled spanning forests.  On mutations the pool
   is invalidated *selectively*: a deleted edge only invalidates the forests
   whose parent pointers actually use it, an insertion leaves every stored
   forest structurally valid and instead bumps a drift counter (the stored
   forests remain spanning forests of the new graph but their distribution is
   slightly stale); once drift exceeds ``max_drift`` the pool is flushed.
   Reweighting flushes immediately — the samplers are unit-resistor.  Node
   events are structural: an inserted node flushes every pool (stored forests
   no longer span the graph) and a removed node evicts the pools and trackers
   whose root set contained it.
3. **Incremental inverses** — :meth:`evaluate_exact` delegates to a cached
   :class:`repro.dynamic.IncrementalResistance` per group, which folds each
   pending journal suffix in as a single rank-``t`` Woodbury batch (O(n²t),
   one BLAS-3 pass) instead of O(n³) inversions, growing/downdating rows on
   node events.

The engine also *bounds the journal*: after each synchronisation it asks the
graph to :meth:`~repro.dynamic.DynamicGraph.compact` the prefix every cached
consumer has already seen, so a long-running service's journal stays flat.
(External consumers of the same graph that fall behind a compaction rebuild
from the snapshot — see :meth:`DynamicGraph.journal_since`.)

Hit/miss, kept/resampled and batching counters are exposed via :attr:`stats`
so operators can see whether the caches earn their memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, InvalidParameterError
from repro.centrality.estimators import ForestAccumulator, SamplingConfig
from repro.centrality.result import CFCMResult
from repro.dynamic.graph import ADD, ADD_NODE, REMOVE, REMOVE_NODE, DynamicGraph
from repro.dynamic.resistance import IncrementalResistance
from repro.graph.graph import Graph
from repro.sampling.forest import Forest
from repro.sampling.parallel import sample_forest_batch
from repro.sampling.wilson import sample_rooted_forest
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_integer


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one :class:`DynamicCFCM` instance."""

    query_hits: int = 0
    query_misses: int = 0
    eval_hits: int = 0
    eval_misses: int = 0
    forests_kept: int = 0
    forests_resampled: int = 0
    pools_flushed: int = 0
    batch_updates: int = 0
    batched_events: int = 0
    node_evictions: int = 0

    def hit_rate(self) -> float:
        """Fraction of ``query`` calls answered from cache."""
        total = self.query_hits + self.query_misses
        return self.query_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "eval_hits": self.eval_hits,
            "eval_misses": self.eval_misses,
            "forests_kept": self.forests_kept,
            "forests_resampled": self.forests_resampled,
            "pools_flushed": self.pools_flushed,
            "batch_updates": self.batch_updates,
            "batched_events": self.batched_events,
            "node_evictions": self.node_evictions,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class _ForestPool:
    """Sampled forests for one root set, plus the drift bookkeeping."""

    roots: Tuple[int, ...]
    forests: List[Forest] = field(default_factory=list)
    drift: int = 0


class DynamicCFCM:
    """Query engine maintaining CFCM state across edge and node updates.

    Parameters
    ----------
    graph:
        A :class:`DynamicGraph` (a plain connected :class:`repro.Graph` is
        wrapped automatically).  Groups and query results use the dynamic
        graph's *stable* node ids throughout, also after node churn.
    seed:
        Master seed; every cache miss derives an independent child seed so
        results are reproducible for a fixed call sequence.
    config:
        Optional :class:`SamplingConfig` forwarded to the sampling methods.
    pool_size:
        Number of forests kept per evaluation root set.
    max_drift:
        How many edge insertions a forest pool tolerates before it is
        considered too stale and flushed.
    refresh_interval:
        Staleness budget of the per-group incremental inverses.
    cache_capacity:
        Maximum entries per cache (query results, forest pools, incremental
        inverses); least-recently-used entries are evicted beyond it so a
        long-running engine's memory stays bounded.
    """

    def __init__(self, graph: DynamicGraph | Graph, seed: RandomState = None,
                 config: Optional[SamplingConfig] = None, pool_size: int = 24,
                 max_drift: int = 8, refresh_interval: int = 64,
                 cache_capacity: int = 64):
        if isinstance(graph, Graph):
            graph = DynamicGraph(graph)
        self.graph = graph
        self.rng = as_rng(seed)
        self.config = config
        self.pool_size = check_integer("pool_size", pool_size, minimum=1)
        self.max_drift = check_integer("max_drift", max_drift, minimum=0)
        self.refresh_interval = check_integer("refresh_interval", refresh_interval,
                                              minimum=1)
        self.cache_capacity = check_integer("cache_capacity", cache_capacity,
                                            minimum=1)
        self.stats = EngineStats()
        self._query_cache: Dict[Tuple, Tuple[int, CFCMResult]] = {}
        self._eval_cache: Dict[Tuple, Tuple[int, float]] = {}
        self._pools: Dict[Tuple[int, ...], _ForestPool] = {}
        self._trackers: Dict[Tuple[int, ...], IncrementalResistance] = {}
        self._pool_version = graph.version

    # ---------------------------------------------------------------- queries
    @property
    def version(self) -> int:
        """Current version of the underlying dynamic graph."""
        return self.graph.version

    @property
    def synced_version(self) -> int:
        """Graph version the cached pools and journal cursor have folded in."""
        return self._pool_version

    @property
    def pending_events(self) -> int:
        """Journal events applied to the graph but not yet seen by the caches."""
        return self.graph.version - self._pool_version

    def sync(self) -> int:
        """Fold pending journal events into every cached consumer *now*.

        This is the maintenance half of every query, exposed as a
        non-blocking hook so a front end (e.g. the asyncio service in
        :mod:`repro.service`) can pump pool invalidation and journal
        compaction off the query hot path — between traffic bursts, from a
        worker thread, without answering anything.  Returns the version the
        caches now reflect, which callers can use as a consistency token.
        """
        self._sync_pools()
        return self._pool_version

    def query(self, k: int, method: str = "schur", eps: float = 0.2,
              evaluate: bool | str = False) -> CFCMResult:
        """Solve CFCM on the current graph, reusing the cache when unchanged.

        Parameters mirror :func:`repro.maximize_cfcc`; the result of a miss
        is computed by the corresponding batch algorithm on the current
        snapshot and memoised until the next mutation.  ``result.group``
        holds stable node ids (snapshot ids are translated back after node
        churn).
        """
        from repro.centrality.api import maximize_cfcc, validate_cfcm_parameters

        k = validate_cfcm_parameters(self.graph.n, k, str(method).lower(), eps,
                                     self.config)
        if not self.graph.is_unit_weighted:
            # snapshot() exposes only the topology, so every batch method
            # (including exact greedy) would silently optimise the wrong
            # objective on a weighted graph.
            raise InvalidParameterError(
                "selection queries assume unit edge weights; reset weights "
                "to 1 (weighted graphs are supported for evaluation via "
                "evaluate_exact only)"
            )
        # Keep the pool/tracker state machine and journal compaction moving
        # under query-only traffic too, or the journal would grow unboundedly
        # in a service that never calls the evaluate paths.
        self._sync_pools()
        # True and "exact" request the same evaluation; normalising the key
        # keeps them from occupying two cache slots for one result.
        if evaluate is True:
            evaluate = "exact"
        key = (k, str(method).lower(), round(float(eps), 9),
               str(evaluate) if evaluate else "")
        cached = self._query_cache.get(key)
        if cached is not None and cached[0] == self.graph.version:
            self.stats.query_hits += 1
            _lru_store(self._query_cache, key, cached, self.cache_capacity)
            return cached[1]
        self.stats.query_misses += 1
        child_seed = int(self.rng.integers(0, 2**62))
        result = maximize_cfcc(self.graph.snapshot(), k, method=method, eps=eps,
                               seed=child_seed, config=self.config,
                               evaluate=evaluate)
        mapping = self.graph.snapshot_mapping()
        if int(mapping[-1]) != mapping.size - 1:
            # Node churn left holes in the id space: translate the snapshot's
            # compact ids back to the stable ids callers reason in — in the
            # group and in the per-iteration diagnostics alike.
            result.group = [int(mapping[node]) for node in result.group]
            for entry in result.iteration_log:
                if "node" in entry:
                    entry["node"] = int(mapping[entry["node"]])
        _lru_store(self._query_cache, key, (self.graph.version, result),
                   self.cache_capacity)
        return result

    def evaluate(self, group: Sequence[int], mode: str = "exact") -> float:
        """Group CFCC of ``group`` on the current graph.

        ``mode="exact"`` uses the incremental grounded inverse (one rank-``t``
        Woodbury batch per pending journal suffix); ``mode="forest"`` uses the
        selectively invalidated forest pool (estimator accuracy grows with
        ``pool_size``).
        """
        mode = str(mode).lower()
        if mode == "exact":
            return self.evaluate_exact(group)
        if mode == "forest":
            return self.evaluate_forest(group)
        raise InvalidParameterError(f"unknown evaluation mode {mode!r}")

    def evaluate_exact(self, group: Sequence[int]) -> float:
        """Exact group CFCC via the per-group incremental inverse."""
        self._sync_pools()
        key = self.graph.validate_group(group)
        tracker = self._trackers.get(key)
        if tracker is None:
            self.stats.eval_misses += 1
            tracker = IncrementalResistance(self.graph, key,
                                            refresh_interval=self.refresh_interval)
        else:
            self.stats.eval_hits += 1
        _lru_store(self._trackers, key, tracker, self.cache_capacity)
        batches = tracker.stats.batch_updates
        events = tracker.stats.batched_events
        value = tracker.group_cfcc()
        self.stats.batch_updates += tracker.stats.batch_updates - batches
        self.stats.batched_events += tracker.stats.batched_events - events
        return value

    def evaluate_forest(self, group: Sequence[int]) -> float:
        """Estimated group CFCC from the (selectively invalidated) forest pool.

        ``Tr(inv(L_{-S}))`` is the sum of the per-node diagonal estimators of
        Lemma 3.3, evaluated over the pooled forests rooted at ``S``.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest evaluation assumes unit edge weights; use mode='exact'"
            )
        roots = self.graph.validate_group(group)
        self._sync_pools()
        cache_key = ("forest", roots)
        cached = self._eval_cache.get(cache_key)
        if cached is not None and cached[0] == self.graph.version:
            self.stats.eval_hits += 1
            _lru_store(self._eval_cache, cache_key, cached, self.cache_capacity)
            return cached[1]
        self.stats.eval_misses += 1

        pool = self._pools.get(roots)
        if pool is None:
            pool = _ForestPool(roots=roots)
        _lru_store(self._pools, roots, pool, self.cache_capacity)
        snapshot = self.graph.snapshot()
        # Forests are stored in the snapshot's compact id space; pools only
        # survive edge events (node events flush them), so the mapping in
        # force when a forest was sampled is the mapping in force now.
        compact_roots = self.graph.compact_nodes(roots)
        if not pool.forests:
            # An empty pool is refilled entirely from the current snapshot
            # below, so whatever drift the old samples had accumulated is gone.
            pool.drift = 0
        self.stats.forests_kept += len(pool.forests)
        self._refill(pool, snapshot, compact_roots)

        accumulator = ForestAccumulator(snapshot, compact_roots, seed=self.rng)
        for forest in pool.forests:
            accumulator.add_forest(forest)
        trace = float(np.sum(accumulator.diag_estimates()))
        value = self.graph.n / trace
        _lru_store(self._eval_cache, cache_key, (self.graph.version, value),
                   self.cache_capacity)
        return value

    def refill_pool(self, group: Sequence[int], sampler=None) -> int:
        """Top the forest pool of ``group`` up to ``pool_size``; returns the count.

        The sampling half of :meth:`evaluate_forest`, exposed so a front end
        can refresh pools ahead of query traffic (prefetching).  ``sampler``
        optionally overrides how the missing forests are drawn: a callable
        ``sampler(snapshot, compact_roots, count, seed)`` returning that many
        :class:`repro.sampling.forest.Forest` objects — the asyncio service
        passes its worker pool's sampler here, which defaults to the
        lockstep vectorised kernel and falls back to a process pool only
        for batches too large for it.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest pools assume unit edge weights; use mode='exact'"
            )
        roots = self.graph.validate_group(group)
        self._sync_pools()
        pool = self._pools.get(roots)
        if pool is None:
            pool = _ForestPool(roots=roots)
        _lru_store(self._pools, roots, pool, self.cache_capacity)
        if not pool.forests:
            pool.drift = 0
        return self._refill(pool, self.graph.snapshot(),
                            self.graph.compact_nodes(roots), sampler=sampler)

    # ------------------------------------------------------------ maintenance
    def _refill(self, pool: _ForestPool, snapshot: Graph,
                compact_roots: Sequence[int], sampler=None) -> int:
        """Sample forests until ``pool`` holds ``pool_size`` of them.

        Missing forests are drawn as one lockstep vectorised batch
        (:func:`repro.sampling.sample_forest_batch`); a single missing
        forest uses the scalar sampler directly.
        """
        missing = self.pool_size - len(pool.forests)
        if missing <= 0:
            return 0
        if sampler is None:
            if missing == 1:
                pool.forests.append(
                    sample_rooted_forest(snapshot, compact_roots, seed=self.rng)
                )
            else:
                pool.forests.extend(
                    sample_forest_batch(snapshot, compact_roots, missing,
                                        seed=self.rng)
                )
        else:
            child_seed = int(self.rng.integers(0, 2**62))
            forests = list(sampler(snapshot, compact_roots, missing, child_seed))
            if len(forests) != missing:
                raise InvalidParameterError(
                    f"sampler returned {len(forests)} forests, expected {missing}"
                )
            pool.forests.extend(forests)
        self.stats.forests_resampled += missing
        return missing

    def _sync_pools(self) -> None:
        """Replay pending journal events onto every cached consumer.

        Edge events invalidate forest pools selectively; node events are
        structural (flush pools wholesale, evict pools/trackers whose root
        set lost a node).  Afterwards the journal prefix every cached
        consumer has seen is compacted away.
        """
        try:
            events = self.graph.journal_since(self._pool_version)
        except GraphError:
            # Another consumer compacted the journal past our cursor; the
            # replay is lost, so conservatively flush every pool and resume
            # from the current version (trackers recover the same way).
            for pool in self._pools.values():
                self._flush_pool(pool)
            self._pool_version = self.graph.version
            events = []
        for event in events:
            if event.kind == ADD_NODE:
                for pool in self._pools.values():
                    self._flush_pool(pool)
            elif event.kind == REMOVE_NODE:
                self._evict_node(int(event.node))
            elif event.kind == ADD:
                for pool in self._pools.values():
                    if pool.forests or pool.drift:
                        pool.drift += 1
            elif event.kind == REMOVE:
                cu, cv = self._compact_endpoints(event.u, event.v)
                if cu is None:
                    continue  # an endpoint is gone; a later node event flushes
                for pool in self._pools.values():
                    pool.forests = [f for f in pool.forests
                                    if not _forest_uses_edge(f, cu, cv)]
            else:  # reweight: unit-resistor samples are no longer valid
                for pool in self._pools.values():
                    self._flush_pool(pool)
        for pool in self._pools.values():
            if pool.drift > self.max_drift:
                self._flush_pool(pool)
        if events:
            self._pool_version = self.graph.version
        self._compact_journal()

    def _flush_pool(self, pool: _ForestPool) -> None:
        if pool.forests or pool.drift:
            pool.forests = []
            pool.drift = 0
            self.stats.pools_flushed += 1

    def _evict_node(self, node: int) -> None:
        """Drop cached state referencing a removed node."""
        for roots in [r for r in self._pools if node in r]:
            del self._pools[roots]
            self.stats.node_evictions += 1
        for group in [g for g in self._trackers if node in g]:
            del self._trackers[group]
            self.stats.node_evictions += 1
        # Surviving pools' forests no longer span a valid snapshot id space.
        for pool in self._pools.values():
            self._flush_pool(pool)

    def _compact_endpoints(self, u: int, v: int) -> Tuple[Optional[int], Optional[int]]:
        if not (self.graph.has_node(u) and self.graph.has_node(v)):
            return None, None
        return self.graph.compact_index(u), self.graph.compact_index(v)

    def _compact_journal(self) -> None:
        """Ask the graph to drop the journal prefix all consumers have seen.

        A cached tracker lagging more than ``refresh_interval`` events will
        refresh from the snapshot rather than replay on its next sync, so it
        never needs the old suffix — don't let it pin the floor (and the
        journal's memory) at its stale version forever.
        """
        lag_floor = self.graph.version - self.refresh_interval
        floor = self._pool_version
        for tracker in self._trackers.values():
            floor = min(floor, max(tracker.synced_version, lag_floor))
        self.graph.compact(floor)


def _forest_uses_edge(forest: Forest, u: int, v: int) -> bool:
    """Whether a forest's parent pointers traverse the undirected edge (u, v)."""
    return bool(forest.parent[u] == v or forest.parent[v] == u)


def _lru_store(cache: Dict, key, value, capacity: int) -> None:
    """Insert ``key`` as the most-recent entry, evicting down to ``capacity``.

    Called on every hit and miss alike, so dict insertion order doubles as
    LRU order; the caches hold dense inverses / forest pools, so bounding
    them is what keeps a long-running engine's memory flat.
    """
    cache.pop(key, None)
    cache[key] = value
    while len(cache) > capacity:
        cache.pop(next(iter(cache)))
