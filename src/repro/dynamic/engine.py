"""Dynamic CFCM query engine: cached queries with selective invalidation.

:class:`DynamicCFCM` fronts the batch CFCM algorithms with three layers of
state that survive across graph mutations:

1. **Query cache** — ``query(k, method, eps)`` results are memoised per graph
   version, so repeated queries on an unchanged graph are O(1) hits; any
   mutation invalidates them wholesale (the optimal group can move
   arbitrarily far under a single edge edit).
2. **Forest pools** — :meth:`evaluate_forest` estimates the group CFCC of a
   root set from a pool of sampled spanning forests.  On mutations the pool
   is invalidated *selectively*: a deleted edge only invalidates the forests
   whose parent pointers actually use it, an insertion leaves every stored
   forest structurally valid and instead bumps a drift counter (the stored
   forests remain spanning forests of the new graph but their distribution is
   slightly stale); once drift exceeds ``max_drift`` the pool is flushed.
   Reweighting flushes immediately — the samplers are unit-resistor.
3. **Incremental inverses** — :meth:`evaluate_exact` delegates to a cached
   :class:`repro.dynamic.IncrementalResistance` per group, which follows the
   journal with O(n²) Sherman–Morrison steps instead of O(n³) inversions.

Hit/miss and kept/resampled counters are exposed via :attr:`stats` so
operators can see whether the caches earn their memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.centrality.estimators import ForestAccumulator, SamplingConfig
from repro.centrality.result import CFCMResult
from repro.dynamic.graph import ADD, REMOVE, DynamicGraph
from repro.dynamic.resistance import IncrementalResistance
from repro.graph.graph import Graph
from repro.sampling.forest import Forest
from repro.sampling.wilson import sample_rooted_forest
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_group, check_integer


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one :class:`DynamicCFCM` instance."""

    query_hits: int = 0
    query_misses: int = 0
    eval_hits: int = 0
    eval_misses: int = 0
    forests_kept: int = 0
    forests_resampled: int = 0
    pools_flushed: int = 0

    def hit_rate(self) -> float:
        """Fraction of ``query`` calls answered from cache."""
        total = self.query_hits + self.query_misses
        return self.query_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "eval_hits": self.eval_hits,
            "eval_misses": self.eval_misses,
            "forests_kept": self.forests_kept,
            "forests_resampled": self.forests_resampled,
            "pools_flushed": self.pools_flushed,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class _ForestPool:
    """Sampled forests for one root set, plus the drift bookkeeping."""

    roots: Tuple[int, ...]
    forests: List[Forest] = field(default_factory=list)
    drift: int = 0


class DynamicCFCM:
    """Query engine maintaining CFCM state across edge updates.

    Parameters
    ----------
    graph:
        A :class:`DynamicGraph` (a plain connected :class:`repro.Graph` is
        wrapped automatically).
    seed:
        Master seed; every cache miss derives an independent child seed so
        results are reproducible for a fixed call sequence.
    config:
        Optional :class:`SamplingConfig` forwarded to the sampling methods.
    pool_size:
        Number of forests kept per evaluation root set.
    max_drift:
        How many edge insertions a forest pool tolerates before it is
        considered too stale and flushed.
    refresh_interval:
        Staleness budget of the per-group incremental inverses.
    cache_capacity:
        Maximum entries per cache (query results, forest pools, incremental
        inverses); least-recently-used entries are evicted beyond it so a
        long-running engine's memory stays bounded.
    """

    def __init__(self, graph: DynamicGraph | Graph, seed: RandomState = None,
                 config: Optional[SamplingConfig] = None, pool_size: int = 24,
                 max_drift: int = 8, refresh_interval: int = 64,
                 cache_capacity: int = 64):
        if isinstance(graph, Graph):
            graph = DynamicGraph(graph)
        self.graph = graph
        self.rng = as_rng(seed)
        self.config = config
        self.pool_size = check_integer("pool_size", pool_size, minimum=1)
        self.max_drift = check_integer("max_drift", max_drift, minimum=0)
        self.refresh_interval = check_integer("refresh_interval", refresh_interval,
                                              minimum=1)
        self.cache_capacity = check_integer("cache_capacity", cache_capacity,
                                            minimum=1)
        self.stats = EngineStats()
        self._query_cache: Dict[Tuple, Tuple[int, CFCMResult]] = {}
        self._eval_cache: Dict[Tuple, Tuple[int, float]] = {}
        self._pools: Dict[Tuple[int, ...], _ForestPool] = {}
        self._trackers: Dict[Tuple[int, ...], IncrementalResistance] = {}
        self._pool_version = graph.version

    # ---------------------------------------------------------------- queries
    @property
    def version(self) -> int:
        """Current version of the underlying dynamic graph."""
        return self.graph.version

    def query(self, k: int, method: str = "schur", eps: float = 0.2,
              evaluate: bool | str = False) -> CFCMResult:
        """Solve CFCM on the current graph, reusing the cache when unchanged.

        Parameters mirror :func:`repro.maximize_cfcc`; the result of a miss
        is computed by the corresponding batch algorithm on the current
        snapshot and memoised until the next mutation.
        """
        from repro.centrality.api import maximize_cfcc, validate_cfcm_parameters

        k = validate_cfcm_parameters(self.graph.n, k, str(method).lower(), eps,
                                     self.config)
        if not self.graph.is_unit_weighted:
            # snapshot() exposes only the topology, so every batch method
            # (including exact greedy) would silently optimise the wrong
            # objective on a weighted graph.
            raise InvalidParameterError(
                "selection queries assume unit edge weights; reset weights "
                "to 1 (weighted graphs are supported for evaluation via "
                "evaluate_exact only)"
            )
        key = (k, str(method).lower(), round(float(eps), 9), str(evaluate))
        cached = self._query_cache.get(key)
        if cached is not None and cached[0] == self.graph.version:
            self.stats.query_hits += 1
            _lru_store(self._query_cache, key, cached, self.cache_capacity)
            return cached[1]
        self.stats.query_misses += 1
        child_seed = int(self.rng.integers(0, 2**62))
        result = maximize_cfcc(self.graph.snapshot(), k, method=method, eps=eps,
                               seed=child_seed, config=self.config,
                               evaluate=evaluate)
        _lru_store(self._query_cache, key, (self.graph.version, result),
                   self.cache_capacity)
        return result

    def evaluate(self, group: Sequence[int], mode: str = "exact") -> float:
        """Group CFCC of ``group`` on the current graph.

        ``mode="exact"`` uses the incremental grounded inverse (O(n²) per
        pending update); ``mode="forest"`` uses the selectively invalidated
        forest pool (estimator accuracy grows with ``pool_size``).
        """
        mode = str(mode).lower()
        if mode == "exact":
            return self.evaluate_exact(group)
        if mode == "forest":
            return self.evaluate_forest(group)
        raise InvalidParameterError(f"unknown evaluation mode {mode!r}")

    def evaluate_exact(self, group: Sequence[int]) -> float:
        """Exact group CFCC via the per-group incremental inverse."""
        key = tuple(check_group(group, self.graph.n))
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = IncrementalResistance(self.graph, key,
                                            refresh_interval=self.refresh_interval)
        _lru_store(self._trackers, key, tracker, self.cache_capacity)
        return tracker.group_cfcc()

    def evaluate_forest(self, group: Sequence[int]) -> float:
        """Estimated group CFCC from the (selectively invalidated) forest pool.

        ``Tr(inv(L_{-S}))`` is the sum of the per-node diagonal estimators of
        Lemma 3.3, evaluated over the pooled forests rooted at ``S``.
        """
        if not self.graph.is_unit_weighted:
            raise InvalidParameterError(
                "forest evaluation assumes unit edge weights; use mode='exact'"
            )
        roots = tuple(check_group(group, self.graph.n))
        self._sync_pools()
        cache_key = ("forest", roots)
        cached = self._eval_cache.get(cache_key)
        if cached is not None and cached[0] == self.graph.version:
            self.stats.eval_hits += 1
            _lru_store(self._eval_cache, cache_key, cached, self.cache_capacity)
            return cached[1]
        self.stats.eval_misses += 1

        pool = self._pools.get(roots)
        if pool is None:
            pool = _ForestPool(roots=roots)
        _lru_store(self._pools, roots, pool, self.cache_capacity)
        snapshot = self.graph.snapshot()
        if not pool.forests:
            # An empty pool is refilled entirely from the current snapshot
            # below, so whatever drift the old samples had accumulated is gone.
            pool.drift = 0
        self.stats.forests_kept += len(pool.forests)
        while len(pool.forests) < self.pool_size:
            pool.forests.append(
                sample_rooted_forest(snapshot, list(roots), seed=self.rng)
            )
            self.stats.forests_resampled += 1

        accumulator = ForestAccumulator(snapshot, list(roots), seed=self.rng)
        for forest in pool.forests:
            accumulator.add_forest(forest)
        trace = float(np.sum(accumulator.diag_estimates()))
        value = self.graph.n / trace
        _lru_store(self._eval_cache, cache_key, (self.graph.version, value),
                   self.cache_capacity)
        return value

    # ------------------------------------------------------------ maintenance
    def _sync_pools(self) -> None:
        """Replay pending journal events onto every forest pool."""
        events = self.graph.journal_since(self._pool_version)
        if not events:
            return
        for pool in self._pools.values():
            for event in events:
                if not pool.forests and pool.drift == 0:
                    break
                if event.kind == REMOVE:
                    survivors = [f for f in pool.forests
                                 if not _forest_uses_edge(f, event.u, event.v)]
                    pool.forests = survivors
                elif event.kind == ADD:
                    pool.drift += 1
                else:  # reweight: unit-resistor samples are no longer valid
                    pool.forests = []
                    pool.drift = 0
                    self.stats.pools_flushed += 1
            if pool.drift > self.max_drift:
                pool.forests = []
                pool.drift = 0
                self.stats.pools_flushed += 1
        self._pool_version = self.graph.version


def _forest_uses_edge(forest: Forest, u: int, v: int) -> bool:
    """Whether a forest's parent pointers traverse the undirected edge (u, v)."""
    return bool(forest.parent[u] == v or forest.parent[v] == u)


def _lru_store(cache: Dict, key, value, capacity: int) -> None:
    """Insert ``key`` as the most-recent entry, evicting down to ``capacity``.

    Called on every hit and miss alike, so dict insertion order doubles as
    LRU order; the caches hold dense inverses / forest pools, so bounding
    them is what keeps a long-running engine's memory flat.
    """
    cache.pop(key, None)
    cache[key] = value
    while len(cache) > capacity:
        cache.pop(next(iter(cache)))
