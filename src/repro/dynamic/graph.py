"""Mutable dynamic-graph layer: an edge journal over immutable CSR snapshots.

:class:`repro.Graph` is deliberately immutable — every batch algorithm in the
library assumes a frozen CSR layout.  A production query service, however,
faces graphs that change between queries (road closures, link failures,
topology rollouts).  :class:`DynamicGraph` bridges the two worlds:

* it keeps the *current* edge set (with positive weights) in hash maps that
  support O(1) ``add_edge`` / ``remove_edge`` / ``update_weight``;
* every mutation is appended to a monotonically versioned **journal**, so any
  number of downstream consumers (incremental inverses, forest caches) can
  catch up independently via :meth:`journal_since` without callbacks;
* :meth:`snapshot` materialises an immutable :class:`repro.Graph` of the
  current topology, cached per version, so the existing batch algorithms run
  unmodified on the latest state;
* **connectivity guards**: CFCC is only defined on connected graphs, so edge
  removals that would disconnect the graph are rejected up front with
  :class:`repro.exceptions.DisconnectedGraphError` instead of surfacing as
  singular matrices deep inside a solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.utils.validation import check_node, check_positive

ADD = "add"
REMOVE = "remove"
REWEIGHT = "reweight"


@dataclass(frozen=True)
class EdgeUpdate:
    """One journal entry: an applied mutation of the dynamic graph.

    Attributes
    ----------
    kind:
        ``"add"``, ``"remove"`` or ``"reweight"``.
    u, v:
        Edge endpoints with ``u < v``.
    weight:
        Weight after the event (for removals: the weight that was removed).
    delta:
        Signed Laplacian weight change (``+w`` add, ``-w`` remove,
        ``w' - w`` reweight) — exactly the rank-1 coefficient consumed by
        :func:`repro.linalg.grounded_inverse_edge_update`.
    version:
        Graph version *after* this event (versions start at 0 and increase by
        one per mutation).
    """

    kind: str
    u: int
    v: int
    weight: float
    delta: float
    version: int


class DynamicGraph:
    """A journaled, mutable view over a connected :class:`repro.Graph`.

    Parameters
    ----------
    graph:
        Connected seed topology; its edges start with weight 1.
    weights:
        Optional ``{(u, v): w}`` mapping overriding initial edge weights
        (``w > 0``; keys must be existing edges in either orientation).

    Notes
    -----
    Node set is fixed at construction (``0 .. n - 1``); only edges mutate.
    Weights affect the Laplacian consumers (:class:`repro.dynamic.
    IncrementalResistance`); the topology :meth:`snapshot` feeding the
    unit-resistor forest samplers requires :attr:`is_unit_weighted`.
    """

    def __init__(self, graph: Graph, weights: Optional[Dict[Tuple[int, int], float]] = None):
        require_connected(graph)
        self._n = graph.n
        self._weights: Dict[Tuple[int, int], float] = {
            (int(u), int(v)): 1.0 for u, v in zip(graph.edge_u, graph.edge_v)
        }
        self._adjacency: List[Set[int]] = [set() for _ in range(self._n)]
        for u, v in self._weights:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
        if weights:
            for key, value in weights.items():
                u, v = self._key(*key)
                if (u, v) not in self._weights:
                    raise GraphError(f"initial weight given for missing edge ({u}, {v})")
                self._weights[(u, v)] = check_positive(f"weight of ({u}, {v})", value)

        self._journal: List[EdgeUpdate] = []
        self._version = 0
        self._snapshot: Optional[Graph] = graph
        self._snapshot_version = 0
        # Count of edges with weight != 1, so is_unit_weighted is O(1) on the
        # engine's per-query fast path instead of an O(m) scan.
        self._non_unit_count = sum(1 for w in self._weights.values() if w != 1.0)

    # ------------------------------------------------------------------ basic
    @property
    def n(self) -> int:
        """Number of nodes (fixed for the lifetime of the dynamic graph)."""
        return self._n

    @property
    def m(self) -> int:
        """Current number of undirected edges."""
        return len(self._weights)

    @property
    def version(self) -> int:
        """Monotonic version counter; bumped by one per applied mutation."""
        return self._version

    @property
    def is_unit_weighted(self) -> bool:
        """Whether every current edge has weight exactly 1 (O(1))."""
        return self._non_unit_count == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicGraph(n={self._n}, m={self.m}, version={self._version})"

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over current undirected edges as ``(u, v)`` with ``u < v``."""
        return iter(sorted(self._weights))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` currently exists."""
        return self._key(u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        """Current weight of edge ``(u, v)``; raises if the edge is absent."""
        key = self._key(u, v)
        if key not in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) does not exist")
        return self._weights[key]

    def degree(self, node: int) -> int:
        """Current (unweighted) degree of ``node``."""
        check_node(node, self._n)
        return len(self._adjacency[int(node)])

    # -------------------------------------------------------------- mutations
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> EdgeUpdate:
        """Insert edge ``(u, v)`` with the given positive weight."""
        key = self._key(u, v)
        if key in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) already exists")
        weight = check_positive("weight", weight)
        self._weights[key] = weight
        self._adjacency[key[0]].add(key[1])
        self._adjacency[key[1]].add(key[0])
        if weight != 1.0:
            self._non_unit_count += 1
        return self._record(ADD, key, weight=weight, delta=weight)

    def remove_edge(self, u: int, v: int) -> EdgeUpdate:
        """Delete edge ``(u, v)``; rejected when it would disconnect the graph."""
        key = self._key(u, v)
        if key not in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) does not exist")
        if self._would_disconnect(key):
            raise DisconnectedGraphError(
                f"removing edge ({key[0]}, {key[1]}) would disconnect the "
                "graph; CFCC is undefined on disconnected graphs"
            )
        weight = self._weights.pop(key)
        self._adjacency[key[0]].discard(key[1])
        self._adjacency[key[1]].discard(key[0])
        if weight != 1.0:
            self._non_unit_count -= 1
        return self._record(REMOVE, key, weight=weight, delta=-weight)

    def update_weight(self, u: int, v: int, weight: float) -> Optional[EdgeUpdate]:
        """Set the weight of existing edge ``(u, v)``; no-op when unchanged."""
        key = self._key(u, v)
        if key not in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) does not exist")
        weight = check_positive("weight", weight)
        old = self._weights[key]
        if weight == old:
            return None
        self._weights[key] = weight
        self._non_unit_count += (weight != 1.0) - (old != 1.0)
        return self._record(REWEIGHT, key, weight=weight, delta=weight - old)

    # ---------------------------------------------------------------- journal
    def journal(self) -> Tuple[EdgeUpdate, ...]:
        """The full mutation history (oldest first)."""
        return tuple(self._journal)

    def journal_since(self, version: int) -> List[EdgeUpdate]:
        """Events applied after ``version`` (i.e. with ``event.version > version``).

        This is the consumer-side synchronisation primitive: each downstream
        state (incremental inverse, forest cache) remembers the version it
        last saw and replays only the suffix.
        """
        version = int(version)
        if version >= self._version:
            return []
        # Versions are dense (event i has version i + 1), so the suffix of
        # events newer than `version` is exactly journal[version:].
        return self._journal[max(version, 0):]

    # --------------------------------------------------------------- exports
    def snapshot(self) -> Graph:
        """Immutable :class:`repro.Graph` of the current topology (cached)."""
        if self._snapshot is None or self._snapshot_version != self._version:
            self._snapshot = Graph(self._n, list(self._weights))
            self._snapshot_version = self._version
        return self._snapshot

    def laplacian_dense(self) -> np.ndarray:
        """Dense weighted Laplacian ``L = D_w - A_w`` of the current state."""
        matrix = np.zeros((self._n, self._n), dtype=np.float64)
        for (u, v), w in self._weights.items():
            matrix[u, v] -= w
            matrix[v, u] -= w
            matrix[u, u] += w
            matrix[v, v] += w
        return matrix

    # ------------------------------------------------------------- internals
    def _key(self, u: int, v: int) -> Tuple[int, int]:
        u = check_node(u, self._n)
        v = check_node(v, self._n)
        if u == v:
            raise GraphError("self-loops are not supported")
        return (u, v) if u < v else (v, u)

    def _record(self, kind: str, key: Tuple[int, int], weight: float,
                delta: float) -> EdgeUpdate:
        self._version += 1
        event = EdgeUpdate(kind=kind, u=key[0], v=key[1], weight=float(weight),
                           delta=float(delta), version=self._version)
        self._journal.append(event)
        return event

    def _would_disconnect(self, key: Tuple[int, int]) -> bool:
        """BFS over the current adjacency with ``key`` masked out."""
        u, v = key
        if len(self._adjacency[u]) == 1 or len(self._adjacency[v]) == 1:
            return True
        seen = [False] * self._n
        seen[u] = True
        frontier = [u]
        while frontier:
            node = frontier.pop()
            for neighbour in self._adjacency[node]:
                if node == u and neighbour == v:
                    continue
                if node == v and neighbour == u:
                    continue
                if not seen[neighbour]:
                    seen[neighbour] = True
                    frontier.append(neighbour)
        return not all(seen)
