"""Mutable dynamic-graph layer: an event journal over immutable CSR snapshots.

:class:`repro.Graph` is deliberately immutable — every batch algorithm in the
library assumes a frozen CSR layout.  A production query service, however,
faces graphs that change between queries (road closures, link failures, peers
joining and leaving an overlay).  :class:`DynamicGraph` bridges the two
worlds:

* it keeps the *current* edge set (with positive weights) in hash maps that
  support O(1) ``add_edge`` / ``remove_edge`` / ``update_weight``, and a
  mutable node set with **stable ids**: :meth:`add_node` mints a fresh id
  (ids are never reused), :meth:`remove_node` retires one together with its
  incident edges;
* every mutation is appended to a monotonically versioned **journal** of
  :class:`GraphUpdate` events (edge and node events share one type), so any
  number of downstream consumers (incremental inverses, forest caches) can
  catch up independently via :meth:`journal_since` without callbacks;
  :meth:`compact` truncates the prefix no consumer can still request so the
  journal stays bounded in a long-running service;
* :meth:`snapshot` materialises an immutable :class:`repro.Graph` of the
  current topology, cached per version, so the existing batch algorithms run
  unmodified on the latest state.  Because snapshot node ids must be the
  dense range ``0 .. n - 1``, stable ids are remapped; the (sorted) id table
  is exposed via :meth:`snapshot_mapping`;
* **connectivity guards**: CFCC is only defined on connected graphs, so edge
  and node removals that would disconnect the graph are rejected up front
  with :class:`repro.exceptions.DisconnectedGraphError` instead of surfacing
  as singular matrices deep inside a solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import (
    DisconnectedGraphError,
    GraphError,
    InvalidNodeError,
    InvalidParameterError,
)
from repro.graph.graph import Graph
from repro.graph.traversal import require_connected
from repro.utils.validation import check_positive

ADD = "add"
REMOVE = "remove"
REWEIGHT = "reweight"
ADD_NODE = "add_node"
REMOVE_NODE = "remove_node"

EDGE_KINDS = (ADD, REMOVE, REWEIGHT)
NODE_KINDS = (ADD_NODE, REMOVE_NODE)


@dataclass(frozen=True)
class GraphUpdate:
    """One journal entry: an applied mutation of the dynamic graph.

    Attributes
    ----------
    kind:
        ``"add"``, ``"remove"`` or ``"reweight"`` for edge events;
        ``"add_node"`` or ``"remove_node"`` for node events.
    u, v:
        Edge endpoints with ``u < v``.  For node events both equal the node.
    weight:
        Weight after the event (for removals: the weight that was removed);
        0 for node events, whose weights live in :attr:`edges`.
    delta:
        Signed Laplacian weight change (``+w`` add, ``-w`` remove,
        ``w' - w`` reweight) — exactly the rank-1 coefficient consumed by
        :func:`repro.linalg.grounded_inverse_edge_update`; 0 for node events.
    version:
        Graph version *after* this event (versions start at 0 and increase by
        one per mutation).
    node:
        The affected node for node events, ``None`` for edge events.
    edges:
        For node events, the incident ``(neighbour, weight)`` pairs attached
        (``add_node``) or removed alongside the node (``remove_node``);
        empty for edge events.
    """

    kind: str
    u: int
    v: int
    weight: float
    delta: float
    version: int
    node: Optional[int] = None
    edges: Tuple[Tuple[int, float], ...] = ()

    @property
    def is_node_event(self) -> bool:
        """Whether this entry mutates the node set rather than one edge."""
        return self.kind in NODE_KINDS


# Backwards-compatible alias from the edge-only journal era.
EdgeUpdate = GraphUpdate

NodeEdges = Union[Dict[int, float], Iterable[Union[int, Tuple[int, float]]]]


class DynamicGraph:
    """A journaled, mutable view over a connected :class:`repro.Graph`.

    Parameters
    ----------
    graph:
        Connected seed topology; its edges start with weight 1.
    weights:
        Optional ``{(u, v): w}`` mapping overriding initial edge weights
        (``w > 0``; keys must be existing edges in either orientation).

    Notes
    -----
    Node ids are **stable**: the seed graph contributes ids ``0 .. n - 1``,
    :meth:`add_node` mints the next unused id and ids of removed nodes are
    never reused.  :attr:`n` counts the currently *active* nodes;
    :meth:`node_ids` lists them.  Weights affect the Laplacian consumers
    (:class:`repro.dynamic.IncrementalResistance`); the topology
    :meth:`snapshot` feeding the unit-resistor forest samplers requires
    :attr:`is_unit_weighted`.
    """

    def __init__(self, graph: Graph, weights: Optional[Dict[Tuple[int, int], float]] = None):
        require_connected(graph)
        self._weights: Dict[Tuple[int, int], float] = {
            (int(u), int(v)): 1.0 for u, v in zip(graph.edge_u, graph.edge_v)
        }
        # _adjacency is indexed by stable id and grows with add_node; removed
        # slots are tombstoned with None so live ids never shift.
        self._adjacency: List[Optional[Set[int]]] = [set() for _ in range(graph.n)]
        self._active_count = graph.n
        for u, v in self._weights:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
        if weights:
            for key, value in weights.items():
                u, v = self._key(*key)
                if (u, v) not in self._weights:
                    raise GraphError(f"initial weight given for missing edge ({u}, {v})")
                self._weights[(u, v)] = check_positive(f"weight of ({u}, {v})", value)

        self._journal: List[GraphUpdate] = []
        self._journal_floor = 0
        self._version = 0
        self._node_version = 0
        self._snapshot: Optional[Graph] = graph
        self._snapshot_version = 0
        self._mapping: Optional[np.ndarray] = np.arange(graph.n, dtype=np.int64)
        self._mapping.flags.writeable = False
        self._mapping_node_version = 0
        # Count of edges with weight != 1, so is_unit_weighted is O(1) on the
        # engine's per-query fast path instead of an O(m) scan.
        self._non_unit_count = sum(1 for w in self._weights.values() if w != 1.0)

    # ------------------------------------------------------------------ basic
    @property
    def n(self) -> int:
        """Number of currently active nodes."""
        return self._active_count

    @property
    def m(self) -> int:
        """Current number of undirected edges."""
        return len(self._weights)

    @property
    def version(self) -> int:
        """Monotonic version counter; bumped by one per applied mutation."""
        return self._version

    @property
    def is_unit_weighted(self) -> bool:
        """Whether every current edge has weight exactly 1 (O(1))."""
        return self._non_unit_count == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicGraph(n={self.n}, m={self.m}, version={self._version})"

    def has_node(self, node: int) -> bool:
        """Whether ``node`` is a currently active (stable) node id."""
        if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
            return False
        node = int(node)
        return 0 <= node < len(self._adjacency) and self._adjacency[node] is not None

    def node_ids(self) -> np.ndarray:
        """Sorted array of the active stable node ids."""
        return self.snapshot_mapping()

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over current undirected edges as ``(u, v)`` with ``u < v``."""
        return iter(sorted(self._weights))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` currently exists."""
        return self._key(u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        """Current weight of edge ``(u, v)``; raises if the edge is absent."""
        key = self._key(u, v)
        if key not in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) does not exist")
        return self._weights[key]

    def degree(self, node: int) -> int:
        """Current (unweighted) degree of ``node``."""
        return len(self._adjacency[self._check_active(node)])

    def neighbors(self, node: int) -> List[int]:
        """Sorted current neighbours of ``node`` (by stable id)."""
        return sorted(self._adjacency[self._check_active(node)])

    def validate_group(self, group: Iterable[int]) -> Tuple[int, ...]:
        """Validate a node group against the *active* node set; returns it sorted.

        The dynamic analogue of :func:`repro.utils.validation.check_group`:
        node ids are stable, so membership is checked against the active set
        rather than a dense ``[0, n)`` range.
        """
        nodes = [self._check_active(v) for v in group]
        if not nodes:
            raise InvalidParameterError("node group must be non-empty")
        if len(set(nodes)) != len(nodes):
            raise InvalidParameterError(
                f"node group contains duplicates: {sorted(nodes)}"
            )
        if len(nodes) >= self._active_count:
            raise InvalidParameterError(
                f"node group of size {len(nodes)} must be a strict subset of "
                f"{self._active_count} nodes"
            )
        return tuple(sorted(nodes))

    # -------------------------------------------------------------- mutations
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> GraphUpdate:
        """Insert edge ``(u, v)`` with the given positive weight."""
        key = self._key(u, v)
        if key in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) already exists")
        weight = check_positive("weight", weight)
        self._weights[key] = weight
        self._adjacency[key[0]].add(key[1])
        self._adjacency[key[1]].add(key[0])
        if weight != 1.0:
            self._non_unit_count += 1
        return self._record(ADD, key, weight=weight, delta=weight)

    def remove_edge(self, u: int, v: int) -> GraphUpdate:
        """Delete edge ``(u, v)``; rejected when it would disconnect the graph."""
        key = self._key(u, v)
        if key not in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) does not exist")
        if self._would_disconnect(key):
            raise DisconnectedGraphError(
                f"removing edge ({key[0]}, {key[1]}) would disconnect the "
                "graph; CFCC is undefined on disconnected graphs"
            )
        weight = self._weights.pop(key)
        self._adjacency[key[0]].discard(key[1])
        self._adjacency[key[1]].discard(key[0])
        if weight != 1.0:
            self._non_unit_count -= 1
        return self._record(REMOVE, key, weight=weight, delta=-weight)

    def update_weight(self, u: int, v: int, weight: float) -> Optional[GraphUpdate]:
        """Set the weight of existing edge ``(u, v)``; no-op when unchanged."""
        key = self._key(u, v)
        if key not in self._weights:
            raise GraphError(f"edge ({key[0]}, {key[1]}) does not exist")
        weight = check_positive("weight", weight)
        old = self._weights[key]
        if weight == old:
            return None
        self._weights[key] = weight
        self._non_unit_count += (weight != 1.0) - (old != 1.0)
        return self._record(REWEIGHT, key, weight=weight, delta=weight - old)

    def add_node(self, edges: NodeEdges) -> GraphUpdate:
        """Insert a new node attached to ``edges``; returns the journal event.

        Parameters
        ----------
        edges:
            The initial incident edges, as ``{neighbour: weight}``, or an
            iterable of neighbours and/or ``(neighbour, weight)`` pairs
            (bare neighbours get weight 1).  At least one edge is required —
            an isolated node would disconnect the graph.

        Returns
        -------
        The recorded ``"add_node"`` :class:`GraphUpdate`; the new stable id
        is its :attr:`GraphUpdate.node`.
        """
        attachments = self._normalise_node_edges(edges)
        if not attachments:
            raise DisconnectedGraphError(
                "add_node requires at least one incident edge; an isolated "
                "node would disconnect the graph"
            )
        node = len(self._adjacency)
        self._adjacency.append(set())
        self._active_count += 1
        self._node_version += 1
        for neighbour, weight in attachments:
            key = (neighbour, node) if neighbour < node else (node, neighbour)
            self._weights[key] = weight
            self._adjacency[node].add(neighbour)
            self._adjacency[neighbour].add(node)
            if weight != 1.0:
                self._non_unit_count += 1
        return self._record(ADD_NODE, (node, node), weight=0.0, delta=0.0,
                            node=node, edges=attachments)

    def remove_node(self, node: int) -> GraphUpdate:
        """Retire ``node`` and its incident edges; guarded against disconnects.

        The removed id is never reused.  The event's :attr:`GraphUpdate.edges`
        records the incident edges that disappeared with the node, which is
        exactly what incremental-inverse consumers need to downdate.
        """
        node = self._check_active(node)
        if self._active_count <= 2:
            raise GraphError(
                "cannot remove a node from a graph with fewer than 3 nodes"
            )
        if self._node_removal_disconnects(node):
            raise DisconnectedGraphError(
                f"removing node {node} would disconnect the graph; CFCC is "
                "undefined on disconnected graphs"
            )
        dropped: List[Tuple[int, float]] = []
        for neighbour in sorted(self._adjacency[node]):
            key = (node, neighbour) if node < neighbour else (neighbour, node)
            weight = self._weights.pop(key)
            dropped.append((neighbour, weight))
            self._adjacency[neighbour].discard(node)
            if weight != 1.0:
                self._non_unit_count -= 1
        self._adjacency[node] = None
        self._active_count -= 1
        self._node_version += 1
        return self._record(REMOVE_NODE, (node, node), weight=0.0, delta=0.0,
                            node=node, edges=tuple(dropped))

    # ---------------------------------------------------------------- journal
    def journal(self) -> Tuple[GraphUpdate, ...]:
        """The retained mutation history (oldest first; see :meth:`compact`)."""
        return tuple(self._journal)

    @property
    def journal_floor(self) -> int:
        """Oldest version consumers may still sync from (see :meth:`compact`)."""
        return self._journal_floor

    def journal_since(self, version: int) -> List[GraphUpdate]:
        """Events applied after ``version`` (i.e. with ``event.version > version``).

        This is the consumer-side synchronisation primitive: each downstream
        state (incremental inverse, forest cache) remembers the version it
        last saw and replays only the suffix.

        Raises
        ------
        GraphError
            When ``version < journal_floor`` — the requested suffix was
            discarded by :meth:`compact`; the consumer must rebuild from the
            current state instead of replaying.
        """
        version = max(int(version), 0)
        if version >= self._version:
            return []
        if version < self._journal_floor:
            raise GraphError(
                f"journal events after version {version} were compacted away "
                f"(floor is {self._journal_floor}); rebuild from the current "
                "snapshot instead of replaying"
            )
        # Versions are dense, so the suffix of events newer than `version`
        # starts at index version - floor of the retained list.
        return self._journal[version - self._journal_floor:]

    def compact(self, floor_version: int) -> int:
        """Discard journal entries with ``version <= floor_version``.

        Bounds the journal in a long-running service: once every consumer has
        synced past ``floor_version`` the prefix can never be requested again.
        Consumers that fall behind a later compaction are told so by
        :meth:`journal_since` (it raises) and must rebuild from the snapshot.

        Returns the number of entries dropped.
        """
        floor_version = min(int(floor_version), self._version)
        drop = floor_version - self._journal_floor
        if drop <= 0:
            return 0
        del self._journal[:drop]
        self._journal_floor = floor_version
        return drop

    # --------------------------------------------------------------- exports
    def snapshot(self) -> Graph:
        """Immutable :class:`repro.Graph` of the current topology (cached).

        Snapshot node ids are the dense range ``0 .. n - 1``; when nodes have
        been removed, stable ids are remapped and :meth:`snapshot_mapping`
        translates snapshot ids back to stable ids.
        """
        if self._snapshot is None or self._snapshot_version != self._version:
            mapping = self.snapshot_mapping()
            if mapping.size and int(mapping[-1]) == mapping.size - 1:
                edges: Iterable[Tuple[int, int]] = list(self._weights)
            else:
                compact = np.full(len(self._adjacency), -1, dtype=np.int64)
                compact[mapping] = np.arange(mapping.size)
                edges = [(int(compact[u]), int(compact[v]))
                         for u, v in self._weights]
            self._snapshot = Graph(self._active_count, edges)
            self._snapshot_version = self._version
        return self._snapshot

    def snapshot_mapping(self) -> np.ndarray:
        """``mapping[i]`` = stable id of snapshot (compact) node ``i``.

        The identity permutation until the first node removal.  The returned
        array is the cache (marked read-only, rebuilt only when the node set
        changes — pure edge churn reuses it).
        """
        if self._mapping is None or self._mapping_node_version != self._node_version:
            self._mapping = np.array(
                [i for i, adj in enumerate(self._adjacency) if adj is not None],
                dtype=np.int64,
            )
            self._mapping.flags.writeable = False
            self._mapping_node_version = self._node_version
        return self._mapping

    def compact_index(self, node: int) -> int:
        """Snapshot (compact) index of the active stable id ``node``."""
        node = self._check_active(node)
        mapping = self.snapshot_mapping()
        return int(np.searchsorted(mapping, node))

    def compact_nodes(self, nodes: Iterable[int]) -> List[int]:
        """Snapshot (compact) indices of the given active stable ids."""
        return [self.compact_index(node) for node in nodes]

    def laplacian_dense(self) -> np.ndarray:
        """Dense weighted Laplacian ``L = D_w - A_w`` of the current state.

        Rows/columns follow :meth:`snapshot_mapping` (i.e. snapshot ids), so
        the matrix always matches :meth:`snapshot` and stays dense-indexed
        under node churn.  Assembled with vectorised scatter-adds — this sits
        on every refresh/refactorise hot path.
        """
        n = self._active_count
        matrix = np.zeros((n, n), dtype=np.float64)
        if not self._weights:
            return matrix
        keys = np.fromiter(
            (x for key in self._weights for x in key),
            dtype=np.int64, count=2 * len(self._weights),
        ).reshape(-1, 2)
        weights = np.fromiter(self._weights.values(), dtype=np.float64,
                              count=len(self._weights))
        mapping = self.snapshot_mapping()
        if int(mapping[-1]) == n - 1:
            u, v = keys[:, 0], keys[:, 1]
        else:
            u = np.searchsorted(mapping, keys[:, 0])
            v = np.searchsorted(mapping, keys[:, 1])
        np.add.at(matrix, (u, u), weights)
        np.add.at(matrix, (v, v), weights)
        np.add.at(matrix, (u, v), -weights)
        np.add.at(matrix, (v, u), -weights)
        return matrix

    def laplacian_sparse(self) -> sp.csr_matrix:
        """Sparse (CSR) weighted Laplacian of the current state.

        Same snapshot-id row/column convention as :meth:`laplacian_dense`,
        assembled in O(m) without the dense ``(n, n)`` buffer — this is what
        the sparse resistance backend factorises, so it must stay cheap on
        graphs where the dense form no longer fits the n² budget.
        """
        n = self._active_count
        if not self._weights:
            return sp.csr_matrix((n, n), dtype=np.float64)
        keys = np.fromiter(
            (x for key in self._weights for x in key),
            dtype=np.int64, count=2 * len(self._weights),
        ).reshape(-1, 2)
        weights = np.fromiter(self._weights.values(), dtype=np.float64,
                              count=len(self._weights))
        mapping = self.snapshot_mapping()
        if int(mapping[-1]) == n - 1:
            u, v = keys[:, 0], keys[:, 1]
        else:
            u = np.searchsorted(mapping, keys[:, 0])
            v = np.searchsorted(mapping, keys[:, 1])
        data = np.concatenate([weights, weights, -weights, -weights])
        rows = np.concatenate([u, v, u, v])
        cols = np.concatenate([u, v, v, u])
        matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n),
                               dtype=np.float64)
        return matrix.tocsr()

    # ------------------------------------------------------------- internals
    def _check_active(self, node: int) -> int:
        if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
            raise InvalidNodeError(f"node must be an integer, got {node!r}")
        node = int(node)
        if not 0 <= node < len(self._adjacency):
            raise InvalidNodeError(
                f"node {node} outside valid range [0, {len(self._adjacency) - 1}]"
            )
        if self._adjacency[node] is None:
            raise InvalidNodeError(f"node {node} was removed")
        return node

    def _key(self, u: int, v: int) -> Tuple[int, int]:
        u = self._check_active(u)
        v = self._check_active(v)
        if u == v:
            raise GraphError("self-loops are not supported")
        return (u, v) if u < v else (v, u)

    def _normalise_node_edges(self, edges: NodeEdges) -> Tuple[Tuple[int, float], ...]:
        if isinstance(edges, dict):
            items: List[Tuple[int, float]] = [(k, w) for k, w in edges.items()]
        else:
            items = []
            for entry in edges:
                if isinstance(entry, tuple):
                    neighbour, weight = entry
                else:
                    neighbour, weight = entry, 1.0
                items.append((neighbour, weight))
        seen: Set[int] = set()
        attachments: List[Tuple[int, float]] = []
        for neighbour, weight in items:
            neighbour = self._check_active(neighbour)
            if neighbour in seen:
                raise GraphError(
                    f"duplicate neighbour {neighbour} in add_node edges"
                )
            seen.add(neighbour)
            attachments.append(
                (neighbour, check_positive(f"weight of edge to {neighbour}", weight))
            )
        return tuple(sorted(attachments))

    def _record(self, kind: str, key: Tuple[int, int], weight: float,
                delta: float, node: Optional[int] = None,
                edges: Tuple[Tuple[int, float], ...] = ()) -> GraphUpdate:
        self._version += 1
        event = GraphUpdate(kind=kind, u=key[0], v=key[1], weight=float(weight),
                            delta=float(delta), version=self._version,
                            node=node, edges=edges)
        self._journal.append(event)
        return event

    def _reachable_count(self, start: int, skip_edge: Optional[Tuple[int, int]] = None,
                         skip_node: Optional[int] = None) -> int:
        """Nodes reachable from ``start``, optionally masking an edge or node."""
        seen: Set[int] = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in self._adjacency[current]:
                if neighbour == skip_node:
                    continue
                if skip_edge is not None and {current, neighbour} == set(skip_edge):
                    continue
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen)

    def _would_disconnect(self, key: Tuple[int, int]) -> bool:
        """BFS over the current adjacency with edge ``key`` masked out."""
        u, v = key
        if len(self._adjacency[u]) == 1 or len(self._adjacency[v]) == 1:
            return True
        return self._reachable_count(u, skip_edge=key) != self._active_count

    def _node_removal_disconnects(self, node: int) -> bool:
        """BFS over the current adjacency with ``node`` masked out."""
        neighbours = self._adjacency[node]
        if not neighbours:
            return False
        start = next(iter(neighbours))
        return self._reachable_count(start, skip_node=node) != self._active_count - 1
