"""Incremental effective-resistance state under batched edge and node updates.

:class:`IncrementalResistance` maintains the dense grounded-Laplacian inverse
``inv(L_{-S})`` of a :class:`repro.dynamic.DynamicGraph` for a fixed grounded
group ``S``.  A pending journal suffix of ``t`` edge events is one rank-``t``
Laplacian perturbation ``B D Bᵀ``, folded in with a single Woodbury solve
(:func:`repro.linalg.grounded_inverse_block_update`) at O(n²t) in one BLAS-3
pass — cheaper and numerically tighter than ``t`` chained Sherman–Morrison
steps, which remain the ``t = 1`` fast path.  Node events bracket the edge
batches:

* ``add_node`` *grows* the inverse by one row/column
  (:func:`repro.linalg.grounded_inverse_grow`) after a batched diagonal
  correction for the kept neighbours' new degrees;
* ``remove_node`` *downdates* the removed row
  (:func:`repro.linalg.grounded_inverse_downdate`) and then batch-corrects
  the neighbours' diagonals — removing a node deletes its edges, which
  grounding alone would not reflect.

Staleness policy
----------------
Low-rank updates are exact in exact arithmetic but accumulate floating-point
drift, and long journals eventually cost more than one clean factorisation.
The tracker therefore refreshes (re-inverts from the current graph state)

* when the pending suffix would push the low-rank updates since the last
  factorisation past ``refresh_interval``,
* whenever a batch is singular (its capacitance matrix is not invertible),
  which for deletions means the grounded graph lost its last path to ground —
  the connectivity guards of :class:`DynamicGraph` make this rare, but
  grounded *sub*-graphs can still degenerate numerically,
* when the graph compacted its journal past this tracker's synced version
  (the suffix can no longer be replayed).

All query methods synchronise lazily: mutate the graph freely, then call
:meth:`trace` / :meth:`resistance_to_group` and the journal suffix is folded
in on demand.  Removing a *grounded* node invalidates the tracker (its group
no longer exists) and raises :class:`repro.exceptions.GraphError`;
:class:`repro.dynamic.DynamicCFCM` evicts such trackers before they sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, InvalidParameterError
from repro.dynamic.graph import ADD_NODE, DynamicGraph, GraphUpdate
from repro.linalg.updates import (
    grounded_inverse_block_update,
    grounded_inverse_downdate,
    grounded_inverse_edge_update,
    grounded_inverse_grow,
)
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS
from repro.obs.tracing import trace
from repro.utils.timer import clock
from repro.utils.validation import check_integer

_SYNC_SECONDS = REGISTRY.histogram(
    "repro_resistance_sync_seconds",
    "Wall time of one IncrementalResistance journal synchronisation",
)
_SYNC_EVENTS = REGISTRY.histogram(
    "repro_resistance_sync_events",
    "Pending journal events folded per synchronisation",
    buckets=SIZE_BUCKETS,
)

# (i, j, delta) in local row indices; j is None for a grounded endpoint.
_Triple = Tuple[int, Optional[int], float]


@dataclass
class ResistanceStats:
    """Counters describing how the incremental state was maintained."""

    rank1_updates: int = 0
    batch_updates: int = 0
    batched_events: int = 0
    node_grows: int = 0
    node_downdates: int = 0
    refreshes: int = 0
    singular_refreshes: int = 0
    events_seen: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rank1_updates": self.rank1_updates,
            "batch_updates": self.batch_updates,
            "batched_events": self.batched_events,
            "node_grows": self.node_grows,
            "node_downdates": self.node_downdates,
            "refreshes": self.refreshes,
            "singular_refreshes": self.singular_refreshes,
            "events_seen": self.events_seen,
        }


class IncrementalResistance:
    """Maintains ``inv(L_{-S})`` of a dynamic graph across edge/node updates.

    Parameters
    ----------
    graph:
        The dynamic graph to track.
    group:
        Grounded node group ``S`` (non-empty strict subset of the active
        nodes, by stable id).
    refresh_interval:
        Staleness budget ``r``: when the pending journal suffix would push
        the number of low-rank updates since the last factorisation past
        ``r``, the synchronisation re-factorises from scratch instead.

    Attributes
    ----------
    kept:
        Stable node ids of the tracked (non-grounded) rows, in row order.
        Sorted after a factorisation; rows appended by ``add_node`` events
        keep arrival order until the next refresh.
    """

    def __init__(self, graph: DynamicGraph, group: Sequence[int],
                 refresh_interval: int = 64):
        self.graph = graph
        self.group = list(graph.validate_group(group))
        self.refresh_interval = check_integer("refresh_interval", refresh_interval,
                                              minimum=1)
        self.stats = ResistanceStats()
        self._updates_since_refresh = 0
        self._synced_version = -1
        self._factorize()

    # ---------------------------------------------------------------- syncing
    def sync(self) -> "IncrementalResistance":
        """Fold any pending journal events into the inverse; returns ``self``.

        Consecutive edge events are applied as one rank-``t`` Woodbury batch;
        node events split the suffix into segments (each grows or downdates a
        row between batches).  Any singular update falls back to a fresh
        factorisation of the current state.
        """
        graph = self.graph
        if self._synced_version >= graph.version:
            return self
        pending = graph.version - self._synced_version
        start = clock()
        with trace("resistance.sync", pending=pending):
            try:
                return self._sync_pending(graph)
            finally:
                if REGISTRY.enabled:
                    _SYNC_SECONDS.observe(clock() - start)
                    _SYNC_EVENTS.observe(pending)

    def _sync_pending(self, graph: DynamicGraph) -> "IncrementalResistance":
        """The replay half of :meth:`sync` (pending events guaranteed)."""
        if self._synced_version < graph.journal_floor:
            # The suffix we need was compacted away; rebuild from scratch.
            self._factorize()
            self.stats.refreshes += 1
            return self
        events = graph.journal_since(self._synced_version)
        self.stats.events_seen += len(events)

        # Relevant low-rank work in the suffix: edge events touching at least
        # one kept row (grounded–grounded edges never enter L_{-S}) count 1;
        # node events count their true cost — one grow/downdate plus one
        # diagonal correction per kept neighbour.  Group membership is fixed,
        # so relevance is decided up front; local row indices are resolved
        # batch by batch because node events reshape the row set mid-suffix.
        grounded = set(self.group)
        relevant: List[GraphUpdate] = []
        cost = 0
        for event in events:
            if event.is_node_event:
                relevant.append(event)
                cost += 1 + sum(neighbour not in grounded
                                for neighbour, _ in event.edges)
            elif event.u not in grounded or event.v not in grounded:
                relevant.append(event)
                cost += 1
        if self._updates_since_refresh + cost > self.refresh_interval:
            self._factorize()
            self.stats.refreshes += 1
            return self

        try:
            batch: List[GraphUpdate] = []
            for event in relevant:
                if not event.is_node_event:
                    batch.append(event)
                    continue
                self._apply_edge_batch(batch)
                batch = []
                if event.kind == ADD_NODE:
                    self._apply_node_add(event)
                else:
                    self._apply_node_remove(event)
            self._apply_edge_batch(batch)
        except InvalidParameterError:
            self._factorize()
            self.stats.refreshes += 1
            self.stats.singular_refreshes += 1
            return self
        self._synced_version = graph.version
        return self

    # ---------------------------------------------------------------- queries
    def trace(self) -> float:
        """Current ``Tr(inv(L_{-S})) = Σ_u R(u, S)`` (synchronises first)."""
        self.sync()
        return float(np.trace(self.inverse))

    def group_cfcc(self) -> float:
        """Current group CFCC ``C(S) = n / Tr(inv(L_{-S}))``."""
        return self.graph.n / self.trace()

    def diagonal(self) -> np.ndarray:
        """Diagonal of the current inverse, indexed by :attr:`kept`."""
        self.sync()
        return np.diag(self.inverse).copy()

    def resistance_to_group(self, node: int) -> float:
        """Effective resistance ``R(u, S)`` of one node to the grounded group."""
        node = self.graph._check_active(node)
        self.sync()
        local = self._local.get(node)
        if local is None:
            return 0.0
        return float(self.inverse[local, local])

    @property
    def synced_version(self) -> int:
        """Graph version the inverse currently reflects."""
        return self._synced_version

    # -------------------------------------------------------------- internals
    def _apply_edge_batch(self, batch: List[GraphUpdate]) -> None:
        """Fold one run of (relevant) edge events in as a rank-``t`` update."""
        triples: List[_Triple] = []
        for event in batch:
            i = self._local.get(event.u, -1)
            j = self._local.get(event.v, -1)
            if i < 0:
                i, j = j, -1
            triples.append((i, None if j < 0 else j, event.delta))
        self._apply_triples(triples)

    def _apply_triples(self, triples: List[_Triple]) -> None:
        if not triples:
            return
        if len(triples) == 1:
            self.inverse = grounded_inverse_edge_update(self.inverse, *triples[0])
            self.stats.rank1_updates += 1
        else:
            self.inverse = grounded_inverse_block_update(self.inverse, triples)
            self.stats.batch_updates += 1
            self.stats.batched_events += len(triples)
        self._updates_since_refresh += len(triples)

    def _apply_node_add(self, event: GraphUpdate) -> None:
        """Grow one row for the new node, after fixing its neighbours' degrees.

        The grown grounded Laplacian is ``[[M + ΔD, c], [cᵀ, d]]``: the kept
        neighbours' diagonals gain the new edge weights (``ΔD``, applied as a
        Woodbury batch of ``e_y e_yᵀ`` terms), the coupling column ``c`` holds
        ``-w`` at kept neighbours, and ``d`` is the node's weighted degree
        (edges to grounded nodes contribute to ``d`` only).
        """
        self._apply_triples([
            (self._local[neighbour], None, weight)
            for neighbour, weight in event.edges
            if neighbour in self._local
        ])
        rows = self.inverse.shape[0]
        column = np.zeros(rows, dtype=np.float64)
        for neighbour, weight in event.edges:
            local = self._local.get(neighbour)
            if local is not None:
                column[local] = -weight
        degree = sum(weight for _, weight in event.edges)
        self.inverse = grounded_inverse_grow(self.inverse, column, degree)
        self._local[int(event.node)] = rows
        self.kept = np.append(self.kept, int(event.node))
        self.stats.node_grows += 1
        self._updates_since_refresh += 1

    def _apply_node_remove(self, event: GraphUpdate) -> None:
        """Downdate the removed node's row, then fix its neighbours' degrees."""
        node = int(event.node)
        if node in self.group:
            raise GraphError(
                f"grounded node {node} was removed from the graph; the "
                f"tracked group {self.group} no longer exists"
            )
        local = self._local.pop(node)
        self.inverse = grounded_inverse_downdate(self.inverse, local)
        self.kept = np.delete(self.kept, local)
        for other, row in self._local.items():
            if row > local:
                self._local[other] = row - 1
        self.stats.node_downdates += 1
        self._updates_since_refresh += 1
        self._apply_triples([
            (self._local[neighbour], None, -weight)
            for neighbour, weight in event.edges
            if neighbour in self._local
        ])

    def _factorize(self) -> None:
        graph = self.graph
        mapping = graph.snapshot_mapping()
        missing = [node for node in self.group if not graph.has_node(node)]
        if missing:
            raise GraphError(
                f"grounded node(s) {missing} were removed from the graph; the "
                f"tracked group {self.group} no longer exists"
            )
        grounded = set(self.group)
        keep_mask = np.array([int(x) not in grounded for x in mapping])
        full = graph.laplacian_dense()
        positions = np.flatnonzero(keep_mask)
        self.inverse = np.linalg.inv(full[np.ix_(positions, positions)])
        self.kept = mapping[keep_mask].copy()
        self._local = {int(x): row for row, x in enumerate(self.kept)}
        self._updates_since_refresh = 0
        self._synced_version = graph.version
