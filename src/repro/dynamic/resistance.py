"""Incremental effective-resistance state under single-edge updates.

:class:`IncrementalResistance` maintains the dense grounded-Laplacian inverse
``inv(L_{-S})`` of a :class:`repro.dynamic.DynamicGraph` for a fixed grounded
group ``S``.  Every journal event is a rank-1 Laplacian perturbation
``δ b bᵀ`` (``b = e_u - e_v``), so the inverse follows by Sherman–Morrison in
O(n²) (:func:`repro.linalg.grounded_inverse_edge_update`) instead of a fresh
O(n³) factorisation — the asymptotic win the dynamic engine is built on.

Staleness policy
----------------
Rank-1 updates are exact in exact arithmetic but accumulate floating-point
drift, and long journals eventually cost more than one clean factorisation.
The tracker therefore refreshes (re-inverts from the current graph state)

* after ``refresh_interval`` rank-1 updates since the last factorisation,
* whenever a single event is singular (``1 + δ bᵀ inv b ≈ 0``), which for a
  deletion means the grounded graph lost its last path to ground — the
  connectivity guard of :class:`DynamicGraph` makes this rare, but grounded
  *sub*-graphs can still degenerate numerically.

All query methods synchronise lazily: mutate the graph freely, then call
:meth:`trace` / :meth:`resistance_to_group` and the journal suffix is folded
in on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.dynamic.graph import DynamicGraph
from repro.linalg.laplacian import complement_indices
from repro.linalg.updates import grounded_inverse_edge_update
from repro.utils.validation import check_group, check_integer, check_node


@dataclass
class ResistanceStats:
    """Counters describing how the incremental state was maintained."""

    rank1_updates: int = 0
    refreshes: int = 0
    singular_refreshes: int = 0
    events_seen: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rank1_updates": self.rank1_updates,
            "refreshes": self.refreshes,
            "singular_refreshes": self.singular_refreshes,
            "events_seen": self.events_seen,
        }


class IncrementalResistance:
    """Maintains ``inv(L_{-S})`` of a dynamic graph across edge updates.

    Parameters
    ----------
    graph:
        The dynamic graph to track.
    group:
        Grounded node group ``S`` (non-empty strict subset of the nodes).
    refresh_interval:
        Staleness budget ``r``: after ``r`` rank-1 updates the next
        synchronisation re-factorises from scratch instead of chaining more
        Sherman–Morrison steps.
    """

    def __init__(self, graph: DynamicGraph, group: Sequence[int],
                 refresh_interval: int = 64):
        self.graph = graph
        self.group = list(check_group(group, graph.n))
        self.refresh_interval = check_integer("refresh_interval", refresh_interval,
                                              minimum=1)
        self.stats = ResistanceStats()
        kept = complement_indices(graph.n, self.group)
        self.kept = kept
        self._local = -np.ones(graph.n, dtype=np.int64)
        self._local[kept] = np.arange(kept.size)
        self._updates_since_refresh = 0
        self._synced_version = -1
        self._factorize()

    # ---------------------------------------------------------------- syncing
    def sync(self) -> "IncrementalResistance":
        """Fold any pending journal events into the inverse; returns ``self``."""
        events = self.graph.journal_since(self._synced_version)
        if not events:
            return self
        self.stats.events_seen += len(events)
        # Edges with both endpoints grounded never enter L_{-S}; they must
        # not count against the staleness budget either.
        relevant = [e for e in events
                    if self._local[e.u] >= 0 or self._local[e.v] >= 0]
        if self._updates_since_refresh + len(relevant) > self.refresh_interval:
            self._factorize()
            self.stats.refreshes += 1
            return self
        for event in relevant:
            i = int(self._local[event.u])
            j = int(self._local[event.v])
            if i < 0:
                i, j = j, -1
            try:
                self.inverse = grounded_inverse_edge_update(
                    self.inverse, i, None if j < 0 else j, event.delta
                )
                self._updates_since_refresh += 1
                self.stats.rank1_updates += 1
            except InvalidParameterError:
                self._factorize()
                self.stats.refreshes += 1
                self.stats.singular_refreshes += 1
                return self
        self._synced_version = self.graph.version
        return self

    # ---------------------------------------------------------------- queries
    def trace(self) -> float:
        """Current ``Tr(inv(L_{-S})) = Σ_u R(u, S)`` (synchronises first)."""
        self.sync()
        return float(np.trace(self.inverse))

    def group_cfcc(self) -> float:
        """Current group CFCC ``C(S) = n / Tr(inv(L_{-S}))``."""
        return self.graph.n / self.trace()

    def diagonal(self) -> np.ndarray:
        """Diagonal of the current inverse, indexed by :attr:`kept`."""
        self.sync()
        return np.diag(self.inverse).copy()

    def resistance_to_group(self, node: int) -> float:
        """Effective resistance ``R(u, S)`` of one node to the grounded group."""
        node = check_node(node, self.graph.n)
        self.sync()
        local = int(self._local[node])
        if local < 0:
            return 0.0
        return float(self.inverse[local, local])

    @property
    def synced_version(self) -> int:
        """Graph version the inverse currently reflects."""
        return self._synced_version

    # -------------------------------------------------------------- internals
    def _factorize(self) -> None:
        full = self.graph.laplacian_dense()
        self.inverse = np.linalg.inv(full[np.ix_(self.kept, self.kept)])
        self._updates_since_refresh = 0
        self._synced_version = self.graph.version
