"""Incremental effective-resistance state under batched edge and node updates.

:class:`IncrementalResistance` maintains the grounded-Laplacian inverse
``inv(L_{-S})`` of a :class:`repro.dynamic.DynamicGraph` for a fixed grounded
group ``S`` — *through* a pluggable :class:`repro.linalg.ResistanceBackend`
rather than one hard-coded representation.  A pending journal suffix of ``t``
edge events is one rank-``t`` Laplacian perturbation ``B D Bᵀ``, handed to
the backend as a single batch: the ``dense`` backend folds it with an
explicit-inverse Woodbury solve (O(n²t) in one BLAS-3 pass, bit-identical to
the historical engine), the ``sparse`` backend accumulates it as an implicit
low-rank correction over a sparse LU base factor (Õ(m·t)).  Node events
bracket the edge batches:

* ``add_node`` *grows* the state by one row/column after a batched diagonal
  correction for the kept neighbours' new degrees;
* ``remove_node`` *downdates* the removed row and then batch-corrects the
  neighbours' diagonals — removing a node deletes its edges, which grounding
  alone would not reflect.

Backends that do not implement incremental grow/downdate (the sparse one)
answer node events with a refactorisation instead — at Õ(m) that is cheaper
there than the dense-style surgery would be.

Staleness policy
----------------
Low-rank updates are exact in exact arithmetic but accumulate floating-point
drift, and long journals eventually cost more than one clean factorisation.
The tracker therefore refreshes (re-factorises from the current graph state)

* when the pending suffix would push the low-rank updates since the last
  factorisation past ``refresh_interval`` (clamped to the backend's own
  ``max_updates`` correction-rank cap, when it has one),
* whenever a batch is singular (its capacitance matrix is not invertible),
  which for deletions means the grounded graph lost its last path to ground —
  the connectivity guards of :class:`DynamicGraph` make this rare, but
  grounded *sub*-graphs can still degenerate numerically,
* when the graph compacted its journal past this tracker's synced version
  (the suffix can no longer be replayed).

All query methods synchronise lazily: mutate the graph freely, then call
:meth:`trace` / :meth:`resistance_to_group` and the journal suffix is folded
in on demand.  Removing a *grounded* node invalidates the tracker (its group
no longer exists) and raises :class:`repro.exceptions.GraphError`;
:class:`repro.dynamic.DynamicCFCM` evicts such trackers before they sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import (
    BackendUnavailableError,
    ConvergenceError,
    GraphError,
    InvalidParameterError,
    NumericalDriftError,
)
from repro.dynamic.graph import ADD_NODE, DynamicGraph, GraphUpdate
from repro.linalg.backends import (
    DenseResistanceBackend,
    ResistanceBackend,
    make_resistance_backend,
)
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS
from repro.obs.tracing import trace
from repro.resilience.policy import record_failover
from repro.resilience.watchdog import ResidualWatchdog
from repro.utils.faultpoints import fault_point
from repro.utils.timer import clock
from repro.utils.validation import check_integer

_SYNC_SECONDS = REGISTRY.histogram(
    "repro_resistance_sync_seconds",
    "Wall time of one IncrementalResistance journal synchronisation",
)
_SYNC_EVENTS = REGISTRY.histogram(
    "repro_resistance_sync_events",
    "Pending journal events folded per synchronisation",
    buckets=SIZE_BUCKETS,
)
_BACKEND_SYNC_SECONDS = REGISTRY.histogram(
    "repro_backend_sync_seconds",
    "Wall time of one journal synchronisation, split by resistance backend",
    labels=("backend",),
)

# (i, j, delta) in local row indices; j is None for a grounded endpoint.
_Triple = Tuple[int, Optional[int], float]


@dataclass
class ResistanceStats:
    """Counters describing how the incremental state was maintained."""

    rank1_updates: int = 0
    batch_updates: int = 0
    batched_events: int = 0
    node_grows: int = 0
    node_downdates: int = 0
    refreshes: int = 0
    singular_refreshes: int = 0
    drift_refreshes: int = 0
    failovers: int = 0
    events_seen: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rank1_updates": self.rank1_updates,
            "batch_updates": self.batch_updates,
            "batched_events": self.batched_events,
            "node_grows": self.node_grows,
            "node_downdates": self.node_downdates,
            "refreshes": self.refreshes,
            "singular_refreshes": self.singular_refreshes,
            "drift_refreshes": self.drift_refreshes,
            "failovers": self.failovers,
            "events_seen": self.events_seen,
        }


class IncrementalResistance:
    """Maintains ``inv(L_{-S})`` of a dynamic graph across edge/node updates.

    Parameters
    ----------
    graph:
        The dynamic graph to track.
    group:
        Grounded node group ``S`` (non-empty strict subset of the active
        nodes, by stable id).
    refresh_interval:
        Staleness budget ``r``: when the pending journal suffix would push
        the number of low-rank updates since the last factorisation past
        ``r``, the synchronisation re-factorises from scratch instead.  The
        effective budget is ``min(r, backend.max_updates)`` when the backend
        caps its own correction rank.
    backend:
        Resistance backend spec: ``"dense"`` (explicit inverse, the
        default — bit-identical to the historical engine), ``"sparse"``
        (solver-backed, never materialises the inverse), ``"auto"`` (picks
        by graph size/sparsity), or a ready
        :class:`repro.linalg.ResistanceBackend` instance.
    backend_options:
        Keyword arguments for the backend constructor (sparse backend only).

    Attributes
    ----------
    kept:
        Stable node ids of the tracked (non-grounded) rows, in row order.
        Sorted after a factorisation; rows appended by ``add_node`` events
        keep arrival order until the next refresh.
    """

    def __init__(self, graph: DynamicGraph, group: Sequence[int],
                 refresh_interval: int = 64,
                 backend: Union[str, ResistanceBackend] = "dense",
                 backend_options: Optional[Dict[str, object]] = None,
                 watchdog: Optional[ResidualWatchdog] = None):
        self.graph = graph
        self.group = list(graph.validate_group(group))
        self.refresh_interval = check_integer("refresh_interval", refresh_interval,
                                              minimum=1)
        self.backend = make_resistance_backend(
            backend, n=graph.n, m=graph.m, options=backend_options,
        )
        self.watchdog = watchdog
        self.stats = ResistanceStats()
        self._updates_since_refresh = 0
        self._synced_version = -1
        self._probing = False
        self._factorize()

    @property
    def _budget(self) -> int:
        """Effective staleness budget (tracker policy ∧ backend rank cap)."""
        cap = self.backend.max_updates
        if cap is None:
            return self.refresh_interval
        return min(self.refresh_interval, cap)

    # ---------------------------------------------------------------- syncing
    def sync(self) -> "IncrementalResistance":
        """Fold any pending journal events into the inverse; returns ``self``.

        Consecutive edge events are applied as one rank-``t`` Woodbury batch;
        node events split the suffix into segments (each grows or downdates a
        row between batches).  Any singular update falls back to a fresh
        factorisation of the current state.
        """
        graph = self.graph
        if self._synced_version < graph.version:
            pending = graph.version - self._synced_version
            start = clock()
            with trace("resistance.sync", pending=pending, backend=self.backend.name):
                try:
                    self._sync_pending(graph)
                finally:
                    if REGISTRY.enabled:
                        elapsed = clock() - start
                        _SYNC_SECONDS.observe(elapsed)
                        _SYNC_EVENTS.observe(pending)
                        _BACKEND_SYNC_SECONDS.observe(elapsed, backend=self.backend.name)
        if (self.watchdog is not None and not self._probing
                and self.watchdog.tick()):
            self._probing = True
            try:
                self.verify(repair=True)
            finally:
                self._probing = False
        return self

    def _sync_pending(self, graph: DynamicGraph) -> "IncrementalResistance":
        """The replay half of :meth:`sync` (pending events guaranteed)."""
        if self._synced_version < graph.journal_floor:
            # The suffix we need was compacted away; rebuild from scratch.
            self._factorize()
            self.stats.refreshes += 1
            return self
        events = graph.journal_since(self._synced_version)
        self.stats.events_seen += len(events)

        # Relevant low-rank work in the suffix: edge events touching at least
        # one kept row (grounded–grounded edges never enter L_{-S}) count 1;
        # node events count their true cost — one grow/downdate plus one
        # diagonal correction per kept neighbour.  Group membership is fixed,
        # so relevance is decided up front; local row indices are resolved
        # batch by batch because node events reshape the row set mid-suffix.
        grounded = set(self.group)
        relevant: List[GraphUpdate] = []
        cost = 0
        node_events = False
        for event in events:
            if event.is_node_event:
                relevant.append(event)
                node_events = True
                cost += 1 + sum(neighbour not in grounded
                                for neighbour, _ in event.edges)
            elif event.u not in grounded or event.v not in grounded:
                relevant.append(event)
                cost += 1
        if node_events and not self.backend.supports_node_updates:
            # Backends without incremental grow/downdate (sparse) answer
            # node churn with a clean factorisation — Õ(m) there.  A removed
            # *grounded* node still surfaces as the usual GraphError, raised
            # by the missing-group check inside the factorisation.
            self._factorize()
            self.stats.refreshes += 1
            return self
        if self._updates_since_refresh + cost > self._budget:
            self._factorize()
            self.stats.refreshes += 1
            return self

        try:
            batch: List[GraphUpdate] = []
            for event in relevant:
                if not event.is_node_event:
                    batch.append(event)
                    continue
                self._apply_edge_batch(batch)
                batch = []
                if event.kind == ADD_NODE:
                    self._apply_node_add(event)
                else:
                    self._apply_node_remove(event)
            self._apply_edge_batch(batch)
        except (InvalidParameterError, ConvergenceError) as exc:
            # Singular capacitance or a solver that failed mid-batch: the
            # backend contract guarantees nothing was committed, so a fresh
            # factorisation of the current state is always a valid answer.
            self._factorize()
            self.stats.refreshes += 1
            if isinstance(exc, InvalidParameterError):
                self.stats.singular_refreshes += 1
            return self
        self._synced_version = graph.version
        return self

    # ---------------------------------------------------------------- queries
    def trace(self) -> float:
        """Current ``Tr(inv(L_{-S})) = Σ_u R(u, S)`` (synchronises first).

        Backends serving sketched diagonals (sparse, large n) return the
        Hutchinson estimate here; pass exactness concerns through
        :meth:`diagonal` with ``mode="exact"`` instead.
        """
        self.sync()
        return self.backend.trace()

    def group_cfcc(self) -> float:
        """Current group CFCC ``C(S) = n / Tr(inv(L_{-S}))``."""
        return self.graph.n / self.trace()

    def diagonal(self, mode: str = "auto") -> np.ndarray:
        """Diagonal of the current inverse, indexed by :attr:`kept`.

        ``mode`` selects the backend's policy: ``"exact"`` forces the
        escape hatch (n solves on solver-backed engines), ``"sketch"`` a
        Hutchinson estimate where supported, ``"auto"`` the backend default.
        """
        self.sync()
        return self.backend.diagonal(mode=mode)

    def resistance_to_group(self, node: int) -> float:
        """Effective resistance ``R(u, S)`` of one node to the grounded group."""
        node = self.graph._check_active(node)
        self.sync()
        local = self._local.get(node)
        if local is None:
            return 0.0
        return self.backend.diag_entry(local)

    def resistance_column(self, node: int) -> np.ndarray:
        """Column of ``inv(L_{-S})`` for one kept node, by stable id.

        Lazily materialised and version-cached by the backend, so repeated
        single-column walks only pay for the columns they actually touch.
        The all-grounded convention returns a zero column.
        """
        node = self.graph._check_active(node)
        self.sync()
        local = self._local.get(node)
        if local is None:
            return np.zeros(len(self.kept), dtype=np.float64)
        return np.asarray(self.backend.column(local), dtype=np.float64).copy()

    @property
    def inverse(self) -> np.ndarray:
        """The explicit dense inverse — dense backend only.

        The sparse backend never materialises it; callers needing matrix
        entries should go through :meth:`diagonal` /
        :meth:`resistance_column` instead.
        """
        if isinstance(self.backend, DenseResistanceBackend):
            return self.backend.inverse
        raise InvalidParameterError(
            f"backend {self.backend.name!r} does not materialise the dense "
            f"inverse; query diagonal()/resistance_column() instead"
        )

    @property
    def synced_version(self) -> int:
        """Graph version the inverse currently reflects."""
        return self._synced_version

    # ----------------------------------------------------- numerical health
    def verify(self, threshold: Optional[float] = None,
               repair: bool = True) -> float:
        """Probe the backward residual ``max|L_{-S}(B⁻¹e) − e|`` of the state.

        Solves one sampled unit system against the tracked factorisation and
        measures the residual against the *actual* grounded Laplacian of the
        current graph.  Past ``threshold`` (default: the watchdog's, else
        ``1e-6``), ``repair=True`` auto-refactorises from scratch while
        ``repair=False`` raises
        :class:`repro.exceptions.NumericalDriftError`.  Returns the observed
        residual (``inf`` when the solver could not even answer the probe).
        """
        self.sync()
        if threshold is None:
            threshold = (self.watchdog.threshold if self.watchdog is not None
                         else 1e-6)
        n = self.backend.n
        if n == 0:
            return 0.0
        row = (self.watchdog.pick_row(n) if self.watchdog is not None else 0)
        unit = np.zeros(n, dtype=np.float64)
        unit[row] = 1.0
        try:
            solution = self.backend.solve(unit)
            matrix = self._grounded_matrix()
            residual = float(np.max(np.abs(matrix @ solution - unit)))
        except ConvergenceError:
            residual = float("inf")
        if self.watchdog is not None:
            self.watchdog.record(residual, group=self._group_label())
        if residual > threshold:
            if not repair:
                raise NumericalDriftError(
                    f"tracked inverse drifted: probe residual {residual:.3e} "
                    f"exceeds threshold {threshold:.3e}",
                    residual=residual, threshold=threshold,
                )
            if self.watchdog is not None:
                self.watchdog.count_trip()
            self._factorize()
            self.stats.refreshes += 1
            self.stats.drift_refreshes += 1
        return residual

    def _group_label(self) -> str:
        return ",".join(str(int(node)) for node in self.group)

    def _grounded_matrix(self):
        """The current grounded Laplacian in this tracker's row order."""
        graph = self.graph
        mapping = graph.snapshot_mapping()
        position = {int(x): i for i, x in enumerate(mapping)}
        rows = np.fromiter((position[int(x)] for x in self.kept),
                           dtype=np.int64, count=len(self.kept))
        full = graph.laplacian_sparse()
        return full[rows][:, rows].tocsr()

    # -------------------------------------------------------------- internals
    def _apply_edge_batch(self, batch: List[GraphUpdate]) -> None:
        """Fold one run of (relevant) edge events in as a rank-``t`` update."""
        triples: List[_Triple] = []
        for event in batch:
            i = self._local.get(event.u, -1)
            j = self._local.get(event.v, -1)
            if i < 0:
                i, j = j, -1
            triples.append((i, None if j < 0 else j, event.delta))
        self._apply_triples(triples)

    def _apply_triples(self, triples: List[_Triple]) -> None:
        if not triples:
            return
        self.backend.apply_triples(triples)
        fault_point("backend.drift", subject=self.backend)
        if len(triples) == 1:
            self.stats.rank1_updates += 1
        else:
            self.stats.batch_updates += 1
            self.stats.batched_events += len(triples)
        self._updates_since_refresh += len(triples)

    def _apply_node_add(self, event: GraphUpdate) -> None:
        """Grow one row for the new node, after fixing its neighbours' degrees.

        The grown grounded Laplacian is ``[[M + ΔD, c], [cᵀ, d]]``: the kept
        neighbours' diagonals gain the new edge weights (``ΔD``, applied as a
        Woodbury batch of ``e_y e_yᵀ`` terms), the coupling column ``c`` holds
        ``-w`` at kept neighbours, and ``d`` is the node's weighted degree
        (edges to grounded nodes contribute to ``d`` only).
        """
        self._apply_triples([
            (self._local[neighbour], None, weight)
            for neighbour, weight in event.edges
            if neighbour in self._local
        ])
        rows = len(self.kept)
        column = np.zeros(rows, dtype=np.float64)
        for neighbour, weight in event.edges:
            local = self._local.get(neighbour)
            if local is not None:
                column[local] = -weight
        degree = sum(weight for _, weight in event.edges)
        self.backend.grow(column, degree)
        self._local[int(event.node)] = rows
        self.kept = np.append(self.kept, int(event.node))
        self.stats.node_grows += 1
        self._updates_since_refresh += 1

    def _apply_node_remove(self, event: GraphUpdate) -> None:
        """Downdate the removed node's row, then fix its neighbours' degrees."""
        node = int(event.node)
        if node in self.group:
            raise GraphError(
                f"grounded node {node} was removed from the graph; the "
                f"tracked group {self.group} no longer exists"
            )
        local = self._local.pop(node)
        self.backend.downdate(local)
        self.kept = np.delete(self.kept, local)
        for other, row in self._local.items():
            if row > local:
                self._local[other] = row - 1
        self.stats.node_downdates += 1
        self._updates_since_refresh += 1
        self._apply_triples([
            (self._local[neighbour], None, -weight)
            for neighbour, weight in event.edges
            if neighbour in self._local
        ])

    def _factorize(self) -> None:
        graph = self.graph
        mapping = graph.snapshot_mapping()
        missing = [node for node in self.group if not graph.has_node(node)]
        if missing:
            raise GraphError(
                f"grounded node(s) {missing} were removed from the graph; the "
                f"tracked group {self.group} no longer exists"
            )
        grounded = set(self.group)
        keep_mask = np.array([int(x) not in grounded for x in mapping])
        positions = np.flatnonzero(keep_mask)
        if self.backend.wants_sparse:
            full = graph.laplacian_sparse()
            matrix = full[positions][:, positions].tocsc()
        else:
            full = graph.laplacian_dense()
            matrix = full[np.ix_(positions, positions)]
        try:
            self.backend.factorize(matrix)
        except (RuntimeError, ConvergenceError, InvalidParameterError,
                np.linalg.LinAlgError) as exc:
            self._failover(matrix, exc)
        self.kept = mapping[keep_mask].copy()
        self._local = {int(x): row for row, x in enumerate(self.kept)}
        self._updates_since_refresh = 0
        self._synced_version = graph.version

    def _failover(self, matrix, exc: Exception) -> None:
        """Degrade after a failed factorisation: sparse → dense, dense → retry.

        The failed backend committed nothing (its factorize raises before
        swapping state in), so retrying — on the dense fallback, or once
        more on the dense backend itself — is always sound.  A second
        failure is terminal: :class:`BackendUnavailableError`.
        """
        failed = self.backend.name
        fallback = (self.backend if isinstance(self.backend, DenseResistanceBackend)
                    else DenseResistanceBackend())
        dense = matrix.toarray() if hasattr(matrix, "toarray") else matrix
        try:
            fallback.factorize(np.asarray(dense, dtype=np.float64))
        except (RuntimeError, ConvergenceError, InvalidParameterError,
                np.linalg.LinAlgError) as retry_exc:
            raise BackendUnavailableError(
                f"factorisation failed on backend {failed!r} and on the "
                f"dense fallback: {retry_exc}"
            ) from exc
        self.backend = fallback
        self.stats.failovers += 1
        record_failover(failed)
