"""Dynamic-graph engine: incremental CFCC maintenance under edge updates.

The batch algorithms of the paper solve CFCM on a frozen graph; this package
keeps their state alive while the graph mutates:

* :class:`DynamicGraph` — journaled mutable wrapper over :class:`repro.Graph`
  (``add_edge`` / ``remove_edge`` / ``update_weight``, version counters,
  connectivity guards, cached immutable snapshots);
* :class:`IncrementalResistance` — grounded-Laplacian inverse maintained by
  O(n²) Sherman–Morrison edge updates with a configurable staleness policy;
* :class:`DynamicCFCM` — cached ``query(k, method, eps)`` engine with
  selectively invalidated forest pools and hit/miss statistics;
* :mod:`repro.dynamic.workload` — reproducible random update streams for
  experiments, benchmarks and tests.
"""

from repro.dynamic.graph import DynamicGraph, EdgeUpdate
from repro.dynamic.resistance import IncrementalResistance, ResistanceStats
from repro.dynamic.engine import DynamicCFCM, EngineStats
from repro.dynamic.workload import apply_random_update, random_update_journal

__all__ = [
    "DynamicGraph",
    "EdgeUpdate",
    "IncrementalResistance",
    "ResistanceStats",
    "DynamicCFCM",
    "EngineStats",
    "apply_random_update",
    "random_update_journal",
]
