"""Dynamic-graph engine: incremental CFCC maintenance under edge/node updates.

The batch algorithms of the paper solve CFCM on a frozen graph; this package
keeps their state alive while the graph mutates:

* :class:`DynamicGraph` — journaled mutable wrapper over :class:`repro.Graph`
  (``add_edge`` / ``remove_edge`` / ``update_weight`` plus ``add_node`` /
  ``remove_node`` with stable ids, version counters, connectivity guards,
  journal compaction, cached immutable snapshots with id remapping);
* :class:`IncrementalResistance` — grounded-Laplacian inverse maintained
  through a pluggable :class:`repro.linalg.backends.ResistanceBackend`:
  the dense backend folds rank-``t`` Woodbury batches (one BLAS-3 pass per
  journal suffix) with block-inverse grow/downdate on node events, the
  sparse backend absorbs the same journal as low-rank corrections against
  a sparse factorisation (``backend="dense" | "sparse" | "auto"``), both
  under a configurable staleness policy;
* :class:`DynamicCFCM` — cached ``query(k, method, eps)`` engine with
  importance-weighted forest pools (ESS-floor top-ups instead of flushes),
  node-churn-aware eviction and hit/miss/batching statistics;
* :mod:`repro.dynamic.workload` — reproducible random edge-update and
  node-churn streams for experiments, benchmarks and tests, plus the async
  Poisson traffic driver and journal replay used with
  :class:`repro.service.AsyncCFCMService`.
"""

from repro.dynamic.graph import DynamicGraph, EdgeUpdate, GraphUpdate
from repro.dynamic.resistance import IncrementalResistance, ResistanceStats
from repro.dynamic.engine import DynamicCFCM, EngineStats
from repro.dynamic.workload import (
    TrafficReport,
    apply_event,
    apply_random_node_event,
    apply_random_reweight,
    apply_random_update,
    poisson_traffic,
    random_churn_journal,
    random_update_journal,
    replay_events,
)

__all__ = [
    "DynamicGraph",
    "EdgeUpdate",
    "GraphUpdate",
    "IncrementalResistance",
    "ResistanceStats",
    "DynamicCFCM",
    "EngineStats",
    "TrafficReport",
    "apply_event",
    "apply_random_node_event",
    "apply_random_reweight",
    "apply_random_update",
    "poisson_traffic",
    "random_churn_journal",
    "random_update_journal",
    "replay_events",
]
