"""Random edge-update workloads for the dynamic engine.

Experiments, benchmarks and tests all need the same thing: a stream of valid
random mutations of a :class:`DynamicGraph` (insertions of absent edges,
deletions that respect the connectivity guard).  Centralising the generator
keeps the workloads reproducible and the retry logic (skip bridges, skip
duplicate inserts) in one place.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import DisconnectedGraphError
from repro.dynamic.graph import DynamicGraph, EdgeUpdate
from repro.utils.rng import RandomState, as_rng


def apply_random_update(graph: DynamicGraph, rng: RandomState = None,
                        add_probability: float = 0.5,
                        max_attempts: int = 64) -> Optional[EdgeUpdate]:
    """Apply one random valid edge insertion or deletion; returns the event.

    Deletions that would disconnect the graph are retried on another random
    edge; when ``max_attempts`` draws fail to produce a valid mutation (e.g.
    a tree has no removable edge, a clique has no insertable one) the
    opposite kind is attempted before giving up with ``None``.
    """
    rng = as_rng(rng)
    want_add = bool(rng.random() < add_probability)
    for kind in (want_add, not want_add):
        for _ in range(max_attempts):
            u, v = (int(x) for x in rng.integers(0, graph.n, size=2))
            if u == v:
                continue
            if kind:
                if graph.has_edge(u, v):
                    continue
                return graph.add_edge(u, v)
            if not graph.has_edge(u, v):
                continue
            try:
                return graph.remove_edge(u, v)
            except DisconnectedGraphError:
                continue
    return None


def random_update_journal(graph: DynamicGraph, count: int,
                          rng: RandomState = None,
                          add_probability: float = 0.5) -> List[EdgeUpdate]:
    """Apply ``count`` random mutations, returning the applied events."""
    rng = as_rng(rng)
    events: List[EdgeUpdate] = []
    for _ in range(int(count)):
        event = apply_random_update(graph, rng, add_probability=add_probability)
        if event is not None:
            events.append(event)
    return events
