"""Random update workloads for the dynamic engine.

Experiments, benchmarks and tests all need the same thing: a stream of valid
random mutations of a :class:`DynamicGraph` (insertions of absent edges,
deletions that respect the connectivity guard, node churn that keeps the
graph connected).  Centralising the generators keeps the workloads
reproducible and the retry logic (skip bridges, skip duplicate inserts, skip
cut vertices) in one place.

Besides the synchronous generators, the module provides the *async* traffic
layer used against :class:`repro.service.AsyncCFCMService`:

* :func:`poisson_traffic` drives a service with a Poisson arrival stream of
  mixed queries and updates (mutations are drawn *at apply time* on the
  writer, so the applied event sequence is reproducible regardless of how
  queries interleave) and returns a :class:`TrafficReport` of latencies,
  version-tagged observations and the applied journal events;
* :func:`replay_events` rebuilds a :class:`DynamicGraph` from a recorded
  journal, which is how tests check that mid-burst async answers equal a
  fresh synchronous engine at the same version.
"""

from __future__ import annotations

import asyncio
import functools
from repro.utils.timer import clock
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    DisconnectedGraphError,
    GraphError,
    InvalidParameterError,
    ServiceOverloadedError,
)
from repro.graph.graph import Graph
from repro.dynamic.graph import (
    ADD,
    ADD_NODE,
    REMOVE,
    REMOVE_NODE,
    REWEIGHT,
    DynamicGraph,
    GraphUpdate,
)
from repro.utils.rng import RandomState, as_rng

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hints only
    from repro.service.service import AsyncCFCMService


def _random_nodes(graph: DynamicGraph, rng, size: int):
    """Draw ``size`` (not necessarily distinct) active stable node ids."""
    ids = graph.node_ids()
    picks = rng.integers(0, ids.size, size=size)
    return [int(ids[p]) for p in picks]


def apply_random_update(graph: DynamicGraph, rng: RandomState = None,
                        add_probability: float = 0.5,
                        max_attempts: int = 64) -> Optional[GraphUpdate]:
    """Apply one random valid edge insertion or deletion; returns the event.

    Deletions that would disconnect the graph are retried on another random
    edge; when ``max_attempts`` draws fail to produce a valid mutation (e.g.
    a tree has no removable edge, a clique has no insertable one) the
    opposite kind is attempted before giving up with ``None``.
    """
    rng = as_rng(rng)
    want_add = bool(rng.random() < add_probability)
    for kind in (want_add, not want_add):
        for _ in range(max_attempts):
            u, v = _random_nodes(graph, rng, 2)
            if u == v:
                continue
            if kind:
                if graph.has_edge(u, v):
                    continue
                return graph.add_edge(u, v)
            if not graph.has_edge(u, v):
                continue
            try:
                return graph.remove_edge(u, v)
            except DisconnectedGraphError:
                continue
    return None


def apply_random_node_event(graph: DynamicGraph, rng: RandomState = None,
                            add_probability: float = 0.5,
                            max_attachments: int = 3,
                            max_attempts: int = 64,
                            protected: Optional[Iterable[int]] = None
                            ) -> Optional[GraphUpdate]:
    """Apply one random valid node insertion or removal; returns the event.

    Insertions attach the new node to 1 .. ``max_attachments`` distinct
    random existing nodes (unit weights).  Removals pick a random node whose
    departure keeps the graph connected; cut vertices — and ``protected``
    nodes, typically the group a monitoring consumer is grounded at — are
    retried.  As in :func:`apply_random_update`, the opposite kind is
    attempted before giving up with ``None``.
    """
    rng = as_rng(rng)
    immune = frozenset(int(v) for v in protected) if protected else frozenset()
    want_add = bool(rng.random() < add_probability)
    for kind in (want_add, not want_add):
        for _ in range(max_attempts):
            if kind:
                count = int(rng.integers(1, max_attachments + 1))
                neighbours = set(_random_nodes(graph, rng, count))
                return graph.add_node(sorted(neighbours))
            (candidate,) = _random_nodes(graph, rng, 1)
            if candidate in immune:
                continue
            try:
                return graph.remove_node(candidate)
            except (DisconnectedGraphError, GraphError):
                continue
    return None


def apply_random_reweight(graph: DynamicGraph, rng: RandomState = None,
                          low: float = 0.25, high: float = 4.0,
                          max_attempts: int = 16) -> Optional[GraphUpdate]:
    """Reweight one random present edge by a log-uniform factor; returns the event.

    The new weight is ``old * exp(U(log low, log high))``, so up- and
    down-weightings are symmetric in log space (a storm of these events is
    mean-preserving).  Draws that land exactly on the current weight are
    retried; ``None`` when ``max_attempts`` draws fail (e.g. a single-edge
    graph with ``low == high == 1``).
    """
    rng = as_rng(rng)
    if not (0.0 < low <= high):
        raise InvalidParameterError(
            f"reweight factors need 0 < low <= high, got [{low}, {high}]"
        )
    edges = list(graph.edges())
    if not edges:
        return None
    for _ in range(int(max_attempts)):
        u, v = edges[int(rng.integers(0, len(edges)))]
        factor = float(np.exp(rng.uniform(np.log(low), np.log(high))))
        event = graph.update_weight(u, v, graph.weight(u, v) * factor)
        if event is not None:
            return event
    return None


def random_update_journal(graph: DynamicGraph, count: int,
                          rng: RandomState = None,
                          add_probability: float = 0.5) -> List[GraphUpdate]:
    """Apply ``count`` random edge mutations, returning the applied events."""
    rng = as_rng(rng)
    events: List[GraphUpdate] = []
    for _ in range(int(count)):
        event = apply_random_update(graph, rng, add_probability=add_probability)
        if event is not None:
            events.append(event)
    return events


def random_churn_journal(graph: DynamicGraph, count: int,
                         rng: RandomState = None,
                         add_probability: float = 0.5,
                         node_probability: float = 0.2,
                         protected: Optional[Iterable[int]] = None
                         ) -> List[GraphUpdate]:
    """Apply ``count`` random mixed edge/node mutations (the bursty regime).

    Each event is a node event with probability ``node_probability`` (a
    join/leave stream of peers, intersections, ...) and an edge event
    otherwise; ``add_probability`` biases both kinds towards growth and
    ``protected`` nodes are never removed.
    """
    rng = as_rng(rng)
    events: List[GraphUpdate] = []
    for _ in range(int(count)):
        if rng.random() < node_probability:
            event = apply_random_node_event(graph, rng,
                                            add_probability=add_probability,
                                            protected=protected)
        else:
            event = apply_random_update(graph, rng,
                                        add_probability=add_probability)
        if event is not None:
            events.append(event)
    return events


def apply_event(graph: DynamicGraph, event: GraphUpdate) -> GraphUpdate:
    """Re-apply one recorded journal event to ``graph``; returns the new event.

    The event must be the next one in sequence (``event.version ==
    graph.version + 1``) so that replayed graphs stay version-aligned with
    the original journal; raises :class:`repro.exceptions.GraphError`
    otherwise.
    """
    if event.version != graph.version + 1:
        raise GraphError(
            f"journal replay out of sequence: expected version "
            f"{graph.version + 1}, got event {event.version}; replays need "
            "the complete journal since version 0"
        )
    if event.kind == ADD:
        return graph.add_edge(event.u, event.v, event.weight)
    if event.kind == REMOVE:
        return graph.remove_edge(event.u, event.v)
    if event.kind == REWEIGHT:
        return graph.update_weight(event.u, event.v, event.weight)
    if event.kind == ADD_NODE:
        applied = graph.add_node(event.edges)
        if applied.node != event.node:
            raise GraphError(
                f"journal replay minted node {applied.node}, recorded "
                f"event has {event.node}; the journal is not complete"
            )
        return applied
    if event.kind == REMOVE_NODE:
        return graph.remove_node(int(event.node))
    raise GraphError(f"unknown journal event kind {event.kind!r}")


def replay_events(graph: Graph, events: Iterable[GraphUpdate],
                  upto_version: Optional[int] = None) -> DynamicGraph:
    """Rebuild a :class:`DynamicGraph` by replaying a recorded journal.

    ``graph`` is the (immutable) seed topology the journal started from;
    ``events`` the complete journal since version 0, in any order (sorted by
    version internally).  With ``upto_version`` the replay stops after that
    version — the primary use: reconstructing the exact graph a mid-burst
    service response was computed against, so it can be compared with a
    fresh synchronous engine.

    Raises :class:`repro.exceptions.GraphError` when the events do not form
    a contiguous version sequence over ``graph`` (e.g. a truncated journal).
    """
    dynamic = DynamicGraph(graph)
    for event in sorted(events, key=lambda e: e.version):
        if upto_version is not None and event.version > upto_version:
            break
        apply_event(dynamic, event)
    return dynamic


# --------------------------------------------------------------------------
# Async traffic (Poisson arrivals of mixed queries/updates)
# --------------------------------------------------------------------------

@dataclass
class TrafficReport:
    """Outcome of one :func:`poisson_traffic` run against an async service.

    Latencies are per-operation wall-clock seconds; ``eval_observations``
    and ``query_observations`` pair every answer with the journal version it
    was computed at (the raw material of equivalence checks); ``events`` is
    the union of all applied journal events in version order.
    """

    queries: int = 0
    evaluations: int = 0
    updates_submitted: int = 0
    updates_applied: int = 0
    updates_failed: int = 0
    updates_rejected: int = 0
    query_latencies: List[float] = field(default_factory=list)
    update_latencies: List[float] = field(default_factory=list)
    eval_observations: List[Tuple[int, float]] = field(default_factory=list)
    query_observations: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)
    events: List[GraphUpdate] = field(default_factory=list)

    def latency_percentiles(self, which: str = "query") -> Dict[str, float]:
        """p50/p95/p99/max of the chosen latency series (empty -> zeros)."""
        series = self.query_latencies if which == "query" else self.update_latencies
        if not series:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        data = np.asarray(series, dtype=np.float64)
        return {
            "p50": float(np.percentile(data, 50)),
            "p95": float(np.percentile(data, 95)),
            "p99": float(np.percentile(data, 99)),
            "max": float(np.max(data)),
        }


def _random_mutation(graph: DynamicGraph, rng, node_probability: float,
                     add_probability: float,
                     protected: Optional[Iterable[int]]) -> Optional[GraphUpdate]:
    """Writer-side mutation: drawn at apply time so the stream is FIFO-determined."""
    if node_probability > 0.0 and rng.random() < node_probability:
        return apply_random_node_event(graph, rng,
                                       add_probability=add_probability,
                                       protected=protected)
    return apply_random_update(graph, rng, add_probability=add_probability)


async def poisson_traffic(service: "AsyncCFCMService", count: int,
                          rng: RandomState = None, *,
                          rate: float = 500.0,
                          query_fraction: float = 0.5,
                          node_probability: float = 0.0,
                          add_probability: float = 0.5,
                          k: int = 4, method: str = "exact", eps: float = 0.3,
                          monitor_group: Optional[Sequence[int]] = None,
                          evaluate_fraction: float = 0.5,
                          consistency: str = "fresh",
                          realtime: bool = False) -> TrafficReport:
    """Drive ``service`` with ``count`` Poisson arrivals of mixed traffic.

    Each arrival is a query with probability ``query_fraction`` and an
    update otherwise.  Queries run as concurrent tasks (they overlap with
    later arrivals and with the writer); updates are submitted
    fire-and-forget and their tickets are collected at the end.  When
    ``monitor_group`` is given, a query arrival is an exact evaluation of
    that group with probability ``evaluate_fraction`` (monitoring traffic)
    and a selection query otherwise; the group is protected from node-churn
    removal so monitoring stays well-defined.

    Updates draw their concrete mutation *on the writer, at apply time*,
    from a dedicated child generator — the applied event stream depends only
    on the submission order (FIFO), not on how queries interleave, which is
    what makes randomized equivalence tests reproducible.

    ``rate`` is the arrival rate in events/second.  With ``realtime=False``
    (default) inter-arrival gaps are skipped and arrivals are issued as fast
    as the loop allows (the backlog regime that exercises coalescing);
    ``realtime=True`` sleeps the exponential gaps instead.
    """
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    if not 0.0 <= query_fraction <= 1.0:
        raise InvalidParameterError("query_fraction must be within [0, 1]")
    if rate <= 0.0:
        raise InvalidParameterError("rate must be positive")
    rng = as_rng(rng)
    update_rng = as_rng(int(rng.integers(0, 2**62)))
    protected = tuple(monitor_group) if monitor_group is not None else None
    mutation = functools.partial(_random_mutation, rng=update_rng,
                                 node_probability=node_probability,
                                 add_probability=add_probability,
                                 protected=protected)
    report = TrafficReport()
    tasks: List[asyncio.Task] = []
    tickets: List[Tuple[object, float]] = []

    for _ in range(int(count)):
        gap = float(rng.exponential(1.0 / rate))
        await asyncio.sleep(gap if realtime else 0.0)
        if rng.random() < query_fraction:
            if protected is not None and rng.random() < evaluate_fraction:
                tasks.append(asyncio.ensure_future(
                    _timed_evaluate(service, protected, consistency, report)))
            else:
                tasks.append(asyncio.ensure_future(
                    _timed_query(service, k, method, eps, consistency, report)))
        else:
            started = clock()
            try:
                ticket = await service.submit(mutation)
            except ServiceOverloadedError:
                report.updates_rejected += 1
                continue
            report.updates_submitted += 1
            tickets.append((ticket, started))

    if tasks:
        await asyncio.gather(*tasks)
    for ticket, started in tickets:
        await ticket.settled()
        # settled_at is stamped by the writer the moment the mutation was
        # applied, so this is true submit-to-apply latency, not the time at
        # which this drain loop got around to awaiting the ticket.
        report.update_latencies.append(ticket.settled_at - started)
        if ticket.exception() is not None:
            report.updates_failed += 1
        else:
            events = await ticket.result()
            report.events.extend(events)
            report.updates_applied += 1
    report.events.sort(key=lambda event: event.version)
    return report


async def _timed_evaluate(service: "AsyncCFCMService", group: Sequence[int],
                          consistency: str, report: TrafficReport) -> None:
    started = clock()
    response = await service.evaluate(group, mode="exact",
                                      consistency=consistency)
    report.query_latencies.append(clock() - started)
    report.evaluations += 1
    report.eval_observations.append((response.version, float(response.result)))


async def _timed_query(service: "AsyncCFCMService", k: int, method: str,
                       eps: float, consistency: str,
                       report: TrafficReport) -> None:
    started = clock()
    response = await service.query(k, method=method, eps=eps,
                                   consistency=consistency)
    report.query_latencies.append(clock() - started)
    report.queries += 1
    report.query_observations.append(
        (response.version, tuple(response.result.group))
    )
