"""Random update workloads for the dynamic engine.

Experiments, benchmarks and tests all need the same thing: a stream of valid
random mutations of a :class:`DynamicGraph` (insertions of absent edges,
deletions that respect the connectivity guard, node churn that keeps the
graph connected).  Centralising the generators keeps the workloads
reproducible and the retry logic (skip bridges, skip duplicate inserts, skip
cut vertices) in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.dynamic.graph import DynamicGraph, GraphUpdate
from repro.utils.rng import RandomState, as_rng


def _random_nodes(graph: DynamicGraph, rng, size: int):
    """Draw ``size`` (not necessarily distinct) active stable node ids."""
    ids = graph.node_ids()
    picks = rng.integers(0, ids.size, size=size)
    return [int(ids[p]) for p in picks]


def apply_random_update(graph: DynamicGraph, rng: RandomState = None,
                        add_probability: float = 0.5,
                        max_attempts: int = 64) -> Optional[GraphUpdate]:
    """Apply one random valid edge insertion or deletion; returns the event.

    Deletions that would disconnect the graph are retried on another random
    edge; when ``max_attempts`` draws fail to produce a valid mutation (e.g.
    a tree has no removable edge, a clique has no insertable one) the
    opposite kind is attempted before giving up with ``None``.
    """
    rng = as_rng(rng)
    want_add = bool(rng.random() < add_probability)
    for kind in (want_add, not want_add):
        for _ in range(max_attempts):
            u, v = _random_nodes(graph, rng, 2)
            if u == v:
                continue
            if kind:
                if graph.has_edge(u, v):
                    continue
                return graph.add_edge(u, v)
            if not graph.has_edge(u, v):
                continue
            try:
                return graph.remove_edge(u, v)
            except DisconnectedGraphError:
                continue
    return None


def apply_random_node_event(graph: DynamicGraph, rng: RandomState = None,
                            add_probability: float = 0.5,
                            max_attachments: int = 3,
                            max_attempts: int = 64,
                            protected: Optional[Iterable[int]] = None
                            ) -> Optional[GraphUpdate]:
    """Apply one random valid node insertion or removal; returns the event.

    Insertions attach the new node to 1 .. ``max_attachments`` distinct
    random existing nodes (unit weights).  Removals pick a random node whose
    departure keeps the graph connected; cut vertices — and ``protected``
    nodes, typically the group a monitoring consumer is grounded at — are
    retried.  As in :func:`apply_random_update`, the opposite kind is
    attempted before giving up with ``None``.
    """
    rng = as_rng(rng)
    immune = frozenset(int(v) for v in protected) if protected else frozenset()
    want_add = bool(rng.random() < add_probability)
    for kind in (want_add, not want_add):
        for _ in range(max_attempts):
            if kind:
                count = int(rng.integers(1, max_attachments + 1))
                neighbours = set(_random_nodes(graph, rng, count))
                return graph.add_node(sorted(neighbours))
            (candidate,) = _random_nodes(graph, rng, 1)
            if candidate in immune:
                continue
            try:
                return graph.remove_node(candidate)
            except (DisconnectedGraphError, GraphError):
                continue
    return None


def random_update_journal(graph: DynamicGraph, count: int,
                          rng: RandomState = None,
                          add_probability: float = 0.5) -> List[GraphUpdate]:
    """Apply ``count`` random edge mutations, returning the applied events."""
    rng = as_rng(rng)
    events: List[GraphUpdate] = []
    for _ in range(int(count)):
        event = apply_random_update(graph, rng, add_probability=add_probability)
        if event is not None:
            events.append(event)
    return events


def random_churn_journal(graph: DynamicGraph, count: int,
                         rng: RandomState = None,
                         add_probability: float = 0.5,
                         node_probability: float = 0.2,
                         protected: Optional[Iterable[int]] = None
                         ) -> List[GraphUpdate]:
    """Apply ``count`` random mixed edge/node mutations (the bursty regime).

    Each event is a node event with probability ``node_probability`` (a
    join/leave stream of peers, intersections, ...) and an edge event
    otherwise; ``add_probability`` biases both kinds towards growth and
    ``protected`` nodes are never removed.
    """
    rng = as_rng(rng)
    events: List[GraphUpdate] = []
    for _ in range(int(count)):
        if rng.random() < node_probability:
            event = apply_random_node_event(graph, rng,
                                            add_probability=add_probability,
                                            protected=protected)
        else:
            event = apply_random_update(graph, rng,
                                        add_probability=add_probability)
        if event is not None:
            events.append(event)
    return events
