"""Incremental updates of grounded-Laplacian inverses.

The exact greedy baseline repeatedly needs ``inv(L_{-S ∪ {u}})`` after having
computed ``inv(L_{-S})``.  Removing one more row/column corresponds to the
standard block-inverse *downdate*

``inv(M_{-u}) = inv(M)_{-u,-u} - inv(M)_{-u,u} inv(M)_{u,-u} / inv(M)_{u,u}``

which costs O(n^2) instead of a fresh O(n^3) inversion, making the exact
greedy feasible on graphs with a few thousand nodes.

The dynamic-graph engine (:mod:`repro.dynamic`) needs the complementary
*edge* update: changing the weight of edge ``(u, v)`` by ``δ`` perturbs the
Laplacian by the rank-1 term ``δ b bᵀ`` with ``b = e_u - e_v``, so the
grounded inverse follows from the Sherman–Morrison formula

``inv(M + δ b bᵀ) = inv(M) - δ inv(M) b bᵀ inv(M) / (1 + δ bᵀ inv(M) b)``

again in O(n^2) — see :func:`grounded_inverse_edge_update`.

A burst of ``t`` edge events is the rank-``t`` perturbation ``B D Bᵀ`` (one
signed incidence column and one signed weight change per event), which folds
into the inverse with a single Woodbury solve

``inv(M + B D Bᵀ) = inv(M) - inv(M) B inv(I + D Bᵀ inv(M) B) D Bᵀ inv(M)``

at O(n²t) in one BLAS-3 pass instead of ``t`` sequential O(n²) outer products
— see :func:`grounded_inverse_block_update`.  Finally, growing the node set
appends a row/column to ``M``, whose inverse follows from the block-inverse
identity (the dual of the downdate) — see :func:`grounded_inverse_grow`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.linalg.laplacian import grounded_laplacian_dense


def grounded_inverse(graph: Graph, group: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``inv(L_{-S})`` and the kept-node index array (direct inversion)."""
    matrix, kept = grounded_laplacian_dense(graph, group)
    return np.linalg.inv(matrix), kept


def grounded_inverse_downdate(inverse: np.ndarray, local_index: int) -> np.ndarray:
    """Inverse of the matrix with row/column ``local_index`` removed.

    Parameters
    ----------
    inverse:
        ``inv(M)`` for an invertible matrix ``M``.
    local_index:
        Row/column (of the *current* matrix) to remove.

    Returns
    -------
    ``inv(M_{-local_index})`` of shape ``(n - 1, n - 1)``, rows/columns keeping
    their relative order.
    """
    inverse = np.asarray(inverse, dtype=np.float64)
    n = inverse.shape[0]
    if inverse.ndim != 2 or inverse.shape[1] != n:
        raise InvalidParameterError("inverse must be a square matrix")
    if not 0 <= local_index < n:
        raise InvalidParameterError(
            f"local_index {local_index} outside [0, {n - 1}]"
        )
    pivot = inverse[local_index, local_index]
    if abs(pivot) < 1e-15:
        raise InvalidParameterError("cannot downdate: pivot entry is numerically zero")
    keep = np.arange(n) != local_index
    column = inverse[keep, local_index]
    row = inverse[local_index, keep]
    reduced = inverse[np.ix_(keep, keep)] - np.outer(column, row) / pivot
    return reduced


def grounded_inverse_edge_update(inverse: np.ndarray, i: int, j: int | None,
                                 delta: float) -> np.ndarray:
    """Sherman–Morrison update of ``inv(M)`` after ``M += delta * b bᵀ``.

    ``b`` encodes a weight change of ``delta`` on one graph edge: ``b = e_i -
    e_j`` when both endpoints are kept rows of the grounded matrix, and
    ``b = e_i`` when the second endpoint is grounded (``j is None``), since
    grounded rows/columns are absent from ``M``.

    Parameters
    ----------
    inverse:
        ``inv(M)`` for an invertible matrix ``M``.
    i, j:
        Kept-row indices of the edge endpoints; ``j=None`` for an edge whose
        other endpoint belongs to the grounded set.
    delta:
        Signed weight change (``+w`` insertion, ``-w`` deletion, ``w' - w``
        reweighting).

    Returns
    -------
    ``inv(M + delta * b bᵀ)`` of the same shape.

    Raises
    ------
    InvalidParameterError
        If the update is singular (``1 + delta bᵀ inv(M) b ≈ 0``), which for a
        grounded Laplacian means the deletion disconnects the grounded graph;
        callers should fall back to a fresh factorisation or reject the edit.
    """
    inverse = np.asarray(inverse, dtype=np.float64)
    n = inverse.shape[0]
    if inverse.ndim != 2 or inverse.shape[1] != n:
        raise InvalidParameterError("inverse must be a square matrix")
    if not 0 <= int(i) < n:
        raise InvalidParameterError(f"index i={i} outside [0, {n - 1}]")
    if j is not None and not 0 <= int(j) < n:
        raise InvalidParameterError(f"index j={j} outside [0, {n - 1}]")
    if j is not None and int(i) == int(j):
        raise InvalidParameterError("edge endpoints must be distinct rows")
    delta = float(delta)
    if delta == 0.0:
        return inverse.copy()

    if j is None:
        column = inverse[:, i].copy()
        row = inverse[i, :].copy()
        quadratic = row[i]
    else:
        column = inverse[:, i] - inverse[:, j]
        row = inverse[i, :] - inverse[j, :]
        quadratic = row[i] - row[j]
    denominator = 1.0 + delta * float(quadratic)
    if abs(denominator) < 1e-12:
        raise InvalidParameterError(
            "singular edge update: 1 + delta * b^T inv(M) b is numerically "
            "zero (the edit would make the grounded matrix singular)"
        )
    return inverse - (delta / denominator) * np.outer(column, row)


def grounded_inverse_block_update(
    inverse: np.ndarray,
    events: Iterable[Tuple[int, Optional[int], float]],
) -> np.ndarray:
    """Woodbury update of ``inv(M)`` after ``M += Σ_k delta_k b_k b_kᵀ``.

    Folds a whole burst of edge events into the inverse at once: with ``B``
    the ``n×t`` matrix of signed incidence columns ``b_k`` and ``D`` the
    diagonal of the ``delta_k``,

    ``inv(M + B D Bᵀ) = inv(M) - inv(M) B inv(C) D Bᵀ inv(M)``

    where ``C = I + D Bᵀ inv(M) B`` is the ``t×t`` capacitance matrix.  One
    O(n²t) BLAS-3 pass replaces ``t`` sequential O(n²) rank-1 updates and
    accumulates less floating-point drift.  Because the perturbations are
    summed rather than chained, a batch whose *intermediate* states would be
    singular (e.g. remove an edge and re-add it) is still well posed as long
    as the final matrix is invertible.

    Parameters
    ----------
    inverse:
        ``inv(M)`` for an invertible matrix ``M``.
    events:
        Iterable of ``(i, j, delta)`` triples with the same semantics as
        :func:`grounded_inverse_edge_update` (``j=None`` when the second
        endpoint is grounded).  Zero-delta events are skipped.

    Returns
    -------
    ``inv(M + B D Bᵀ)`` of the same shape (a copy, even for empty batches).

    Raises
    ------
    InvalidParameterError
        On invalid indices, or when the capacitance matrix is numerically
        singular (the batch would make the grounded matrix singular);
        callers should fall back to a fresh factorisation.
    """
    inverse = np.asarray(inverse, dtype=np.float64)
    n = inverse.shape[0]
    if inverse.ndim != 2 or inverse.shape[1] != n:
        raise InvalidParameterError("inverse must be a square matrix")
    triples = []
    for i, j, delta in events:
        if not 0 <= int(i) < n:
            raise InvalidParameterError(f"index i={i} outside [0, {n - 1}]")
        if j is not None and not 0 <= int(j) < n:
            raise InvalidParameterError(f"index j={j} outside [0, {n - 1}]")
        if j is not None and int(i) == int(j):
            raise InvalidParameterError("edge endpoints must be distinct rows")
        if float(delta) != 0.0:
            triples.append((int(i), None if j is None else int(j), float(delta)))
    t = len(triples)
    if t == 0:
        return inverse.copy()
    if t == 1:
        return grounded_inverse_edge_update(inverse, *triples[0])

    # U = inv(M) B and V = Bᵀ inv(M), assembled column-by-column because B has
    # at most two non-zeros per column — O(nt) instead of a dense O(n²t) GEMM.
    deltas = np.array([delta for _, _, delta in triples], dtype=np.float64)
    left = np.empty((n, t), dtype=np.float64)
    right = np.empty((t, n), dtype=np.float64)
    for k, (i, j, _) in enumerate(triples):
        if j is None:
            left[:, k] = inverse[:, i]
            right[k, :] = inverse[i, :]
        else:
            left[:, k] = inverse[:, i] - inverse[:, j]
            right[k, :] = inverse[i, :] - inverse[j, :]
    # Bᵀ U, again via incidence structure: row k of Bᵀ U picks rows of U.
    gram = np.empty((t, t), dtype=np.float64)
    for k, (i, j, _) in enumerate(triples):
        gram[k, :] = left[i, :] if j is None else left[i, :] - left[j, :]
    capacitance = np.eye(t) + deltas[:, None] * gram
    singular_values = np.linalg.svd(capacitance, compute_uv=False)
    if singular_values[-1] < 1e-12 * max(1.0, float(singular_values[0])):
        raise InvalidParameterError(
            "singular block update: the capacitance matrix I + D B^T inv(M) B "
            "is numerically singular (the batch would make the grounded "
            "matrix singular)"
        )
    core = np.linalg.solve(capacitance, deltas[:, None] * right)
    return inverse - left @ core


def grounded_inverse_grow(inverse: np.ndarray, column: np.ndarray,
                          diagonal: float,
                          row: Optional[np.ndarray] = None) -> np.ndarray:
    """Block-inverse *append* of one trailing row/column (dual of the downdate).

    Given ``inv(M)`` of shape ``(n, n)``, returns the inverse of

    ``M' = [[M, c], [rᵀ, d]]``

    of shape ``(n + 1, n + 1)`` via the scalar Schur complement
    ``s = d - rᵀ inv(M) c``.  For a grounded Laplacian gaining a node, ``c``
    holds ``-w`` at the kept neighbours of the new node and ``d`` is its
    weighted degree (edges to grounded nodes contribute to ``d`` only).

    Parameters
    ----------
    inverse:
        ``inv(M)`` for an invertible matrix ``M``.
    column:
        New trailing column ``c`` of length ``n``.
    diagonal:
        New diagonal entry ``d``.
    row:
        New trailing row ``r`` (defaults to ``column`` — the symmetric case).

    Raises
    ------
    InvalidParameterError
        When the Schur complement is numerically zero (an isolated node, or a
        grow that would make the matrix singular).
    """
    inverse = np.asarray(inverse, dtype=np.float64)
    n = inverse.shape[0]
    if inverse.ndim != 2 or inverse.shape[1] != n:
        raise InvalidParameterError("inverse must be a square matrix")
    column = np.asarray(column, dtype=np.float64).reshape(-1)
    if column.shape[0] != n:
        raise InvalidParameterError(
            f"column must have length {n}, got {column.shape[0]}"
        )
    if row is None:
        row = column
    else:
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        if row.shape[0] != n:
            raise InvalidParameterError(
                f"row must have length {n}, got {row.shape[0]}"
            )
    left = inverse @ column          # inv(M) c
    right = row @ inverse            # rᵀ inv(M)
    schur = float(diagonal) - float(row @ left)
    if abs(schur) < 1e-12:
        raise InvalidParameterError(
            "singular grow: the Schur complement d - r^T inv(M) c is "
            "numerically zero (the appended node would make the grounded "
            "matrix singular)"
        )
    grown = np.empty((n + 1, n + 1), dtype=np.float64)
    grown[:n, :n] = inverse + np.outer(left, right) / schur
    grown[:n, n] = -left / schur
    grown[n, :n] = -right / schur
    grown[n, n] = 1.0 / schur
    return grown


class GroundedInverseTracker:
    """Maintains ``inv(L_{-S})`` across greedy node additions.

    Starts from a given group ``S`` (typically a singleton after the first
    greedy pick) and updates the dense inverse with an O(n^2) downdate each
    time a node is added to ``S``.
    """

    def __init__(self, graph: Graph, group: Sequence[int]):
        self.graph = graph
        self.group = sorted(int(v) for v in group)
        self.inverse, self.kept = grounded_inverse(graph, self.group)

    def local_index(self, node: int) -> int:
        """Row index of ``node`` inside the current reduced matrix."""
        positions = np.flatnonzero(self.kept == node)
        if positions.size == 0:
            raise InvalidParameterError(f"node {node} is already grounded")
        return int(positions[0])

    def diagonal(self) -> np.ndarray:
        """Diagonal of the current ``inv(L_{-S})`` (indexed by :attr:`kept`)."""
        return np.diag(self.inverse).copy()

    def trace(self) -> float:
        """``Tr(inv(L_{-S}))`` for the current group."""
        return float(np.trace(self.inverse))

    def squared_diagonal(self) -> np.ndarray:
        """Diagonal of ``inv(L_{-S})^2`` (squared column norms), by kept index."""
        return np.sum(self.inverse * self.inverse, axis=0)

    def add_node(self, node: int) -> None:
        """Ground one more node and downdate the inverse accordingly."""
        local = self.local_index(node)
        self.inverse = grounded_inverse_downdate(self.inverse, local)
        self.kept = np.delete(self.kept, local)
        self.group = sorted(self.group + [int(node)])
