"""Incremental updates of grounded-Laplacian inverses.

The exact greedy baseline repeatedly needs ``inv(L_{-S ∪ {u}})`` after having
computed ``inv(L_{-S})``.  Removing one more row/column corresponds to the
standard block-inverse *downdate*

``inv(M_{-u}) = inv(M)_{-u,-u} - inv(M)_{-u,u} inv(M)_{u,-u} / inv(M)_{u,u}``

which costs O(n^2) instead of a fresh O(n^3) inversion, making the exact
greedy feasible on graphs with a few thousand nodes.

The dynamic-graph engine (:mod:`repro.dynamic`) needs the complementary
*edge* update: changing the weight of edge ``(u, v)`` by ``δ`` perturbs the
Laplacian by the rank-1 term ``δ b bᵀ`` with ``b = e_u - e_v``, so the
grounded inverse follows from the Sherman–Morrison formula

``inv(M + δ b bᵀ) = inv(M) - δ inv(M) b bᵀ inv(M) / (1 + δ bᵀ inv(M) b)``

again in O(n^2) — see :func:`grounded_inverse_edge_update`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.linalg.laplacian import grounded_laplacian_dense


def grounded_inverse(graph: Graph, group: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``inv(L_{-S})`` and the kept-node index array (direct inversion)."""
    matrix, kept = grounded_laplacian_dense(graph, group)
    return np.linalg.inv(matrix), kept


def grounded_inverse_downdate(inverse: np.ndarray, local_index: int) -> np.ndarray:
    """Inverse of the matrix with row/column ``local_index`` removed.

    Parameters
    ----------
    inverse:
        ``inv(M)`` for an invertible matrix ``M``.
    local_index:
        Row/column (of the *current* matrix) to remove.

    Returns
    -------
    ``inv(M_{-local_index})`` of shape ``(n - 1, n - 1)``, rows/columns keeping
    their relative order.
    """
    inverse = np.asarray(inverse, dtype=np.float64)
    n = inverse.shape[0]
    if inverse.ndim != 2 or inverse.shape[1] != n:
        raise InvalidParameterError("inverse must be a square matrix")
    if not 0 <= local_index < n:
        raise InvalidParameterError(
            f"local_index {local_index} outside [0, {n - 1}]"
        )
    pivot = inverse[local_index, local_index]
    if abs(pivot) < 1e-15:
        raise InvalidParameterError("cannot downdate: pivot entry is numerically zero")
    keep = np.arange(n) != local_index
    column = inverse[keep, local_index]
    row = inverse[local_index, keep]
    reduced = inverse[np.ix_(keep, keep)] - np.outer(column, row) / pivot
    return reduced


def grounded_inverse_edge_update(inverse: np.ndarray, i: int, j: int | None,
                                 delta: float) -> np.ndarray:
    """Sherman–Morrison update of ``inv(M)`` after ``M += delta * b bᵀ``.

    ``b`` encodes a weight change of ``delta`` on one graph edge: ``b = e_i -
    e_j`` when both endpoints are kept rows of the grounded matrix, and
    ``b = e_i`` when the second endpoint is grounded (``j is None``), since
    grounded rows/columns are absent from ``M``.

    Parameters
    ----------
    inverse:
        ``inv(M)`` for an invertible matrix ``M``.
    i, j:
        Kept-row indices of the edge endpoints; ``j=None`` for an edge whose
        other endpoint belongs to the grounded set.
    delta:
        Signed weight change (``+w`` insertion, ``-w`` deletion, ``w' - w``
        reweighting).

    Returns
    -------
    ``inv(M + delta * b bᵀ)`` of the same shape.

    Raises
    ------
    InvalidParameterError
        If the update is singular (``1 + delta bᵀ inv(M) b ≈ 0``), which for a
        grounded Laplacian means the deletion disconnects the grounded graph;
        callers should fall back to a fresh factorisation or reject the edit.
    """
    inverse = np.asarray(inverse, dtype=np.float64)
    n = inverse.shape[0]
    if inverse.ndim != 2 or inverse.shape[1] != n:
        raise InvalidParameterError("inverse must be a square matrix")
    if not 0 <= int(i) < n:
        raise InvalidParameterError(f"index i={i} outside [0, {n - 1}]")
    if j is not None and not 0 <= int(j) < n:
        raise InvalidParameterError(f"index j={j} outside [0, {n - 1}]")
    if j is not None and int(i) == int(j):
        raise InvalidParameterError("edge endpoints must be distinct rows")
    delta = float(delta)
    if delta == 0.0:
        return inverse.copy()

    if j is None:
        column = inverse[:, i].copy()
        row = inverse[i, :].copy()
        quadratic = row[i]
    else:
        column = inverse[:, i] - inverse[:, j]
        row = inverse[i, :] - inverse[j, :]
        quadratic = row[i] - row[j]
    denominator = 1.0 + delta * float(quadratic)
    if abs(denominator) < 1e-12:
        raise InvalidParameterError(
            "singular edge update: 1 + delta * b^T inv(M) b is numerically "
            "zero (the edit would make the grounded matrix singular)"
        )
    return inverse - (delta / denominator) * np.outer(column, row)


class GroundedInverseTracker:
    """Maintains ``inv(L_{-S})`` across greedy node additions.

    Starts from a given group ``S`` (typically a singleton after the first
    greedy pick) and updates the dense inverse with an O(n^2) downdate each
    time a node is added to ``S``.
    """

    def __init__(self, graph: Graph, group: Sequence[int]):
        self.graph = graph
        self.group = sorted(int(v) for v in group)
        self.inverse, self.kept = grounded_inverse(graph, self.group)

    def local_index(self, node: int) -> int:
        """Row index of ``node`` inside the current reduced matrix."""
        positions = np.flatnonzero(self.kept == node)
        if positions.size == 0:
            raise InvalidParameterError(f"node {node} is already grounded")
        return int(positions[0])

    def diagonal(self) -> np.ndarray:
        """Diagonal of the current ``inv(L_{-S})`` (indexed by :attr:`kept`)."""
        return np.diag(self.inverse).copy()

    def trace(self) -> float:
        """``Tr(inv(L_{-S}))`` for the current group."""
        return float(np.trace(self.inverse))

    def squared_diagonal(self) -> np.ndarray:
        """Diagonal of ``inv(L_{-S})^2`` (squared column norms), by kept index."""
        return np.sum(self.inverse * self.inverse, axis=0)

    def add_node(self, node: int) -> None:
        """Ground one more node and downdate the inverse accordingly."""
        local = self.local_index(node)
        self.inverse = grounded_inverse_downdate(self.inverse, local)
        self.kept = np.delete(self.kept, local)
        self.group = sorted(self.group + [int(node)])
