"""Pluggable resistance backends: dense Woodbury vs sparse solver-backed.

Every dynamic consumer of ``inv(L_{-S})`` — the incremental tracker, the
forest-pool estimator folds, the per-node resistance queries — only ever
needs matvecs with the inverse, single columns, diagonal entries and
low-rank updates.  :class:`ResistanceBackend` captures exactly that contract
so :class:`repro.dynamic.IncrementalResistance` can speak one protocol while
the representation underneath is swapped:

* :class:`DenseResistanceBackend` — the historical engine: an explicit dense
  ``(n, n)`` inverse maintained by Sherman–Morrison / Woodbury updates
  (:mod:`repro.linalg.updates`).  O(n²) per sync and per refactorisation
  O(n³), but every query is a plain array read.  This backend reproduces the
  pre-protocol behaviour **bit for bit**: same update functions, called in
  the same order on the same operands.
* :class:`SparseResistanceBackend` — never materialises the inverse.  It
  keeps a sparse LU factorisation of the grounded Laplacian at the last
  refactorisation (SciPy ``splu``; conjugate-gradient fallback through
  :class:`repro.linalg.solvers.LaplacianSolver` with a reusable
  preconditioner when the factorisation is unavailable) and absorbs journal
  bursts as an *implicit* low-rank correction: with base factor ``M₀`` and
  accumulated perturbation ``B D Bᵀ`` (one signed incidence column and one
  signed weight per edge event),

  ``inv(M₀ + B D Bᵀ) x = y − U · C⁻¹ D Bᵀ y``,  ``y = M₀⁻¹ x``

  where ``U = M₀⁻¹ B`` (one sparse solve per new event column) and
  ``C = I + D Bᵀ U`` is the rank-``t`` capacitance matrix.  A refactorisation
  threshold (``max_rank``) bounds the correction rank; diagonals are served
  by JL-sketched Hutchinson estimates (solver matvecs only, probe solves
  cached per factorisation) with an exact-column escape hatch; single
  columns are lazily materialised and version-cached.  Syncs cost Õ(m·t)
  instead of O(n²·t).

``choose_backend`` implements the ``auto`` policy (dense while the dense
inverse is small enough to win, sparse beyond); ``make_resistance_backend``
resolves user-facing specs (``"dense" | "sparse" | "auto"`` or an instance).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import InvalidParameterError
from repro.linalg.solvers import LaplacianSolver, PreconditionerCache, SolverMethod
from repro.linalg.updates import (
    grounded_inverse_block_update,
    grounded_inverse_downdate,
    grounded_inverse_edge_update,
    grounded_inverse_grow,
)
from repro.obs.metrics import REGISTRY
from repro.utils.faultpoints import fault_point
from repro.utils.timer import clock

# (i, j, delta) in local row indices; j is None for a grounded endpoint.
Triple = Tuple[int, Optional[int], float]

# Per-backend hot-path metrics (no-ops until the default registry is enabled).
_SOLVE_SECONDS = REGISTRY.histogram(
    "repro_backend_solve_seconds",
    "Wall time of one backend solve/diagonal evaluation",
    labels=("backend",),
)
_BACKEND_INFO = REGISTRY.gauge(
    "repro_backend_info",
    "Active resistance backend (value is always 1; labels carry identity)",
    labels=("backend", "solver"),
)

#: `auto` picks the sparse backend at and beyond this many kept rows...
AUTO_SPARSE_NODES = 1500
#: ...provided the graph is actually sparse (average degree below this).
AUTO_SPARSE_DEGREE = 16.0


class ResistanceBackend:
    """Protocol for maintaining ``inv(M)`` of a grounded Laplacian ``M``.

    The tracker drives the lifecycle: :meth:`factorize` with the current
    grounded matrix (dense or sparse per :attr:`wants_sparse`), then a
    sequence of :meth:`apply_triples` / :meth:`grow` / :meth:`downdate`
    mutations, with queries (:meth:`trace`, :meth:`diagonal`,
    :meth:`column`, :meth:`diag_entry`, :meth:`solve_many`) in between.
    Mutations that would make the matrix singular must raise
    :class:`repro.exceptions.InvalidParameterError` *without committing*,
    which the tracker answers with a fresh factorisation.

    The base class owns the lazily materialised, version-cached column
    store: :meth:`column` solves a unit right-hand side on first access and
    caches the result until the next mutation (``epoch`` bump), so repeated
    single-column walks — the pool trace-cache top-ups — only pay for the
    columns they actually touch.
    """

    #: Spec string this backend answers to.
    name = "abstract"
    #: Whether :meth:`factorize` expects a scipy sparse matrix (else dense).
    wants_sparse = False
    #: Whether :meth:`grow` / :meth:`downdate` are implemented; when False
    #: the tracker refactorises on node events instead.
    supports_node_updates = False
    #: Optional cap on low-rank updates between factorisations; the tracker
    #: folds this into its refresh budget (``None`` = no backend-side cap).
    max_updates: Optional[int] = None

    def __init__(self) -> None:
        self._n = 0
        self._epoch = 0
        self._columns: Dict[int, np.ndarray] = {}
        #: Unit-vector solves actually performed (cache misses), for tests.
        self.column_solves = 0

    # ------------------------------------------------------------- lifecycle
    @property
    def n(self) -> int:
        """Number of kept (non-grounded) rows."""
        return self._n

    @property
    def epoch(self) -> int:
        """Monotone mutation counter; caches keyed on it stay coherent."""
        return self._epoch

    def factorize(self, matrix) -> None:
        """Rebuild from the current grounded matrix (dense or sparse)."""
        fault_point("backend.factorize", subject=self, backend=self.name)
        self._n = int(matrix.shape[0])
        self._factorize_impl(matrix)
        self._invalidate()
        _BACKEND_INFO.set(1.0, backend=self.name, solver=self.solver_used)

    @property
    def solver_used(self) -> str:
        """Identifier of the factorisation in force (for the info gauge)."""
        return "dense_inverse"

    def _factorize_impl(self, matrix) -> None:
        raise NotImplementedError

    def _invalidate(self) -> None:
        """Drop per-version caches after any mutation or refactorisation."""
        self._epoch += 1
        self._columns.clear()

    # --------------------------------------------------------------- queries
    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """``inv(M) @ rhs`` for a ``(n, k)`` (or ``(n,)``) right-hand side."""
        raise NotImplementedError

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """``inv(M) @ rhs`` for one right-hand side."""
        return self.solve_many(np.asarray(rhs, dtype=np.float64).reshape(-1, 1))[:, 0]

    def column(self, index: int) -> np.ndarray:
        """Column ``inv(M) e_i``, lazily materialised and cached per epoch."""
        index = int(index)
        if not 0 <= index < self._n:
            raise InvalidParameterError(
                f"column index {index} outside [0, {self._n - 1}]"
            )
        cached = self._columns.get(index)
        if cached is None:
            unit = np.zeros(self._n, dtype=np.float64)
            unit[index] = 1.0
            cached = self.solve(unit)
            self._columns[index] = cached
            self.column_solves += 1
        return cached

    def diag_entry(self, index: int) -> float:
        """Exact diagonal entry ``inv(M)_ii`` (the per-node resistance)."""
        return float(self.column(index)[int(index)])

    def diagonal(self, mode: str = "auto") -> np.ndarray:
        """The diagonal of ``inv(M)``.

        ``mode`` is ``"exact"`` (n solves — the escape hatch), ``"sketch"``
        (Hutchinson estimate, where supported) or ``"auto"``.
        """
        raise NotImplementedError

    def trace(self, mode: str = "auto") -> float:
        """``Tr(inv(M))`` under the same ``mode`` semantics as ``diagonal``."""
        return float(self.diagonal(mode=mode).sum())

    def correction_columns(self, count: int
                           ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]]:
        """Corrected solves of the trailing ``count`` update columns, if free.

        The sparse backend already holds ``M₀⁻¹ B`` for every event column
        folded since the last factorisation, so ``inv(M) B`` for the most
        recent ``count`` columns costs only a correction re-apply — no new
        solves.  Consumers that need exactly those solves (the sharded
        engine's Schur stitch re-derives the pre-burst inverse from them)
        ask here first and fall back to :meth:`solve_many`.

        Returns ``(rows_i, rows_j, deltas, corrected)`` where row pairs and
        deltas identify the columns (``rows_j == -1`` marks a grounded
        endpoint) and ``corrected`` is the ``(n, count)`` solve block, or
        ``None`` when the backend cannot serve them for free (default).
        """
        return None

    #: Probe columns served by :meth:`probe_block`.
    probe_count = 24

    def probe_block(self) -> Tuple[np.ndarray, np.ndarray]:
        """Deterministic Rademacher probes ``Z`` and their solves ``inv(M) Z``.

        Shared by Hutchinson-style consumers (trace sketches, the sharded
        engine's coupling estimates) so they agree on one probe stream and
        one cached solve block per epoch.  The generic implementation pays
        ``probe_count`` solves on first use per epoch; backends holding a
        cheaper path (cached base solves plus a correction) override it.
        """
        cached = getattr(self, "_probe_cache", None)
        if cached is not None and cached[0] == self._epoch \
                and cached[1].shape[0] == self._n:
            return cached[1], cached[2]
        rng = np.random.default_rng(9176 + self._n)
        z = np.where(rng.random((self._n, self.probe_count)) < 0.5, -1.0, 1.0)
        y = self.solve_many(z)
        self._probe_cache = (self._epoch, z, y)
        return z, y

    # ------------------------------------------------------------- mutations
    def apply_triples(self, triples: Sequence[Triple]) -> None:
        """Fold a burst of edge events ``M += Σ δ_k b_k b_kᵀ`` in.

        Raises :class:`InvalidParameterError` (without committing) when the
        batch would make ``M`` singular.
        """
        raise NotImplementedError

    def grow(self, column: np.ndarray, diagonal: float) -> None:
        """Append one trailing row/column (node insertion)."""
        raise InvalidParameterError(
            f"backend {self.name!r} does not support incremental node "
            f"insertion; refactorise instead"
        )

    def downdate(self, local_index: int) -> None:
        """Remove one row/column (node removal)."""
        raise InvalidParameterError(
            f"backend {self.name!r} does not support incremental node "
            f"removal; refactorise instead"
        )


class DenseResistanceBackend(ResistanceBackend):
    """The historical engine: an explicit dense inverse under Woodbury updates.

    Kept bit-identical to the pre-protocol :class:`IncrementalResistance`
    internals: a single event goes through the Sherman–Morrison fast path,
    a burst through the rank-``t`` block update, node events through
    grow/downdate — same functions, same operand order, same float results.
    """

    name = "dense"
    wants_sparse = False
    supports_node_updates = True

    def __init__(self) -> None:
        super().__init__()
        self.inverse: Optional[np.ndarray] = None

    def _factorize_impl(self, matrix) -> None:
        if sp.issparse(matrix):
            matrix = matrix.toarray()
        self.inverse = np.linalg.inv(np.asarray(matrix, dtype=np.float64))

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        if self.inverse is None:
            raise InvalidParameterError(
                "backend has no factorisation yet; call factorize() first"
            )
        fault_point("backend.solve", subject=self, backend=self.name)
        rhs = np.asarray(rhs, dtype=np.float64)
        start = clock()
        result = self.inverse @ rhs
        if REGISTRY.enabled:
            _SOLVE_SECONDS.observe(clock() - start, backend=self.name)
        return result

    def column(self, index: int) -> np.ndarray:
        index = int(index)
        if not 0 <= index < self._n:
            raise InvalidParameterError(
                f"column index {index} outside [0, {self._n - 1}]"
            )
        return self.inverse[:, index]

    def diag_entry(self, index: int) -> float:
        return float(self.inverse[int(index), int(index)])

    def diagonal(self, mode: str = "auto") -> np.ndarray:
        return np.diag(self.inverse).copy()

    def trace(self, mode: str = "auto") -> float:
        return float(np.trace(self.inverse))

    def apply_triples(self, triples: Sequence[Triple]) -> None:
        if not triples:
            return
        fault_point("backend.apply", subject=self, backend=self.name)
        if len(triples) == 1:
            self.inverse = grounded_inverse_edge_update(self.inverse, *triples[0])
        else:
            self.inverse = grounded_inverse_block_update(self.inverse, triples)
        self._invalidate()

    def grow(self, column: np.ndarray, diagonal: float) -> None:
        self.inverse = grounded_inverse_grow(self.inverse, column, diagonal)
        self._n += 1
        self._invalidate()

    def downdate(self, local_index: int) -> None:
        self.inverse = grounded_inverse_downdate(self.inverse, local_index)
        self._n -= 1
        self._invalidate()


class SparseResistanceBackend(ResistanceBackend):
    """Solver-backed maintenance of ``inv(M)`` without materialising it.

    Parameters
    ----------
    solver:
        ``"auto"`` (sparse LU, falling back to preconditioned CG when the
        factorisation fails), ``"splu"`` (LU or error) or ``"cg"``.
    probes:
        Rademacher probe count of the Hutchinson diagonal sketch.  Probe
        base solves are computed once per factorisation and cached; each
        burst only pays the rank-``t`` correction on the cached block.
    diag_mode:
        Default diagonal policy: ``"exact"`` (n solves), ``"sketch"``
        (Hutchinson) or ``"auto"`` (exact up to ``exact_threshold`` rows,
        sketched beyond — small systems stay exact for free).
    exact_threshold:
        Row count below which ``auto`` serves exact diagonals.
    max_rank:
        Refactorisation threshold on the accumulated low-rank correction;
        surfaced to the tracker through :attr:`max_updates` so a burst that
        would exceed it triggers a (cheap, Õ(m)) refactorisation instead.
    rtol, maxiter:
        Forwarded to the CG fallback.
    seed:
        Seed of the (deterministic) probe matrix stream.
    """

    name = "sparse"
    wants_sparse = True
    supports_node_updates = False

    def __init__(self, solver: str = "auto", probes: int = 24,
                 diag_mode: str = "auto", exact_threshold: int = 1024,
                 max_rank: int = 96, rtol: float = 1e-10,
                 maxiter: Optional[int] = None, seed: int = 0):
        super().__init__()
        solver = str(solver).lower()
        if solver not in ("auto", "splu", "cg"):
            raise InvalidParameterError(
                f"solver must be 'auto', 'splu' or 'cg', got {solver!r}"
            )
        diag_mode = str(diag_mode).lower()
        if diag_mode not in ("auto", "exact", "sketch"):
            raise InvalidParameterError(
                f"diag_mode must be 'auto', 'exact' or 'sketch', got {diag_mode!r}"
            )
        if int(probes) < 1:
            raise InvalidParameterError(f"probes must be >= 1, got {probes}")
        if int(max_rank) < 1:
            raise InvalidParameterError(f"max_rank must be >= 1, got {max_rank}")
        self.solver = solver
        self.probes = int(probes)
        self.diag_mode = diag_mode
        self.exact_threshold = int(exact_threshold)
        self.max_updates = int(max_rank)
        self.rtol = float(rtol)
        self.maxiter = maxiter
        self.seed = int(seed)
        self._pc_cache = PreconditionerCache(kind="jacobi")
        self._factor_count = 0
        self._solver_used = "none"
        self._lu = None
        self._cg: Optional[LaplacianSolver] = None
        self._reset_lowrank()
        self.probe_count = int(probes)
        self._probe_z: Optional[np.ndarray] = None
        self._probe_base: Optional[np.ndarray] = None
        self._probe_corrected: Optional[Tuple[int, np.ndarray]] = None
        self._diag_cache: Optional[Tuple[int, str, np.ndarray]] = None

    # ------------------------------------------------------------- lifecycle
    @property
    def solver_used(self) -> str:
        return self._solver_used

    @property
    def correction_rank(self) -> int:
        """Rank of the low-rank correction accumulated since factorisation."""
        return int(self._deltas.size)

    def _reset_lowrank(self) -> None:
        self._deltas = np.zeros(0, dtype=np.float64)
        self._left = np.zeros((self._n, 0), dtype=np.float64)   # U = M0^-1 B
        self._gram = np.zeros((0, 0), dtype=np.float64)          # B^T U
        self._capacitance = np.zeros((0, 0), dtype=np.float64)
        self._rows_i = np.zeros(0, dtype=np.int64)
        self._rows_j = np.zeros(0, dtype=np.int64)               # -1: grounded

    def _factorize_impl(self, matrix) -> None:
        if not sp.issparse(matrix):
            matrix = sp.csc_matrix(np.asarray(matrix, dtype=np.float64))
        matrix = matrix.tocsc().astype(np.float64)
        self._factor_count += 1
        self._lu = None
        self._cg = None
        if self.solver in ("auto", "splu"):
            try:
                # Grounded Laplacians are SPD: symmetric-mode SuperLU with a
                # fill-reducing symmetric ordering keeps the factors sparse
                # (COLAMD fills in badly on power-law graphs — order-of-
                # magnitude slower factor/solve on hub-heavy topologies).
                self._lu = spla.splu(matrix, permc_spec="MMD_AT_PLUS_A",
                                     diag_pivot_thresh=0.1,
                                     options=dict(SymmetricMode=True))
                self._solver_used = "splu"
            except (RuntimeError, ValueError) as exc:
                if self.solver == "splu":
                    raise InvalidParameterError(
                        f"sparse LU factorisation failed: {exc}"
                    ) from exc
        if self._lu is None:
            # CG fallback: the Jacobi preconditioner is built once per
            # factorisation and shared by every solve against it.
            self._cg = LaplacianSolver(
                matrix, method=SolverMethod.CONJUGATE_GRADIENT,
                tol=self.rtol, maxiter=self.maxiter,
                preconditioner=self._pc_cache.get(matrix, self._factor_count),
            )
            self._solver_used = "cg"
        self._reset_lowrank()
        self._probe_z = None
        self._probe_base = None
        self._probe_corrected = None

    def _invalidate(self) -> None:
        super()._invalidate()
        self._diag_cache = None

    # ----------------------------------------------------------- base solves
    def _base_solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """``M₀⁻¹ rhs`` against the base factor (no low-rank correction)."""
        if self._lu is not None:
            return self._lu.solve(np.ascontiguousarray(rhs, dtype=np.float64))
        if self._cg is None:
            raise InvalidParameterError(
                "backend has no factorisation yet; call factorize() first"
            )
        return self._cg.solve_many(rhs)

    def _gather(self, block: np.ndarray) -> np.ndarray:
        """``Bᵀ block`` via incidence gathers: row k is ``X[i_k] - X[j_k]``."""
        picked = block[self._rows_i]
        mask = self._rows_j >= 0
        if np.any(mask):
            picked = picked.copy()
            picked[mask] -= block[self._rows_j[mask]]
        return picked

    def _correct(self, base_solution: np.ndarray) -> np.ndarray:
        """Apply the accumulated low-rank Woodbury correction to a solve."""
        if self._deltas.size == 0:
            return base_solution
        z = self._gather(base_solution)                      # (t, k)
        core = np.linalg.solve(self._capacitance, self._deltas[:, None] * z)
        return base_solution - self._left @ core

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        fault_point("backend.solve", subject=self, backend=self.name)
        rhs = np.asarray(rhs, dtype=np.float64)
        squeeze = rhs.ndim == 1
        if squeeze:
            rhs = rhs[:, None]
        if rhs.shape[0] != self._n:
            raise InvalidParameterError(
                f"right-hand sides must have {self._n} rows, got {rhs.shape[0]}"
            )
        start = clock()
        result = self._correct(self._base_solve_many(rhs))
        if REGISTRY.enabled:
            _SOLVE_SECONDS.observe(clock() - start, backend=self.name)
        return result[:, 0] if squeeze else result

    # --------------------------------------------------------------- queries
    def diagonal(self, mode: str = "auto") -> np.ndarray:
        mode = str(mode or "auto").lower()
        if mode == "auto":
            mode = self.diag_mode
        if mode == "auto":
            mode = "exact" if self._n <= self.exact_threshold else "sketch"
        if self._diag_cache is not None:
            epoch, cached_mode, values = self._diag_cache
            if epoch == self._epoch and cached_mode == mode:
                return values.copy()
        start = clock()
        if mode == "exact":
            values = np.einsum(
                "ii->i", self.solve_many(np.eye(self._n, dtype=np.float64))
            ).copy()
        elif mode == "sketch":
            values = self._sketched_diagonal()
        else:
            raise InvalidParameterError(
                f"diagonal mode must be 'auto', 'exact' or 'sketch', got {mode!r}"
            )
        if REGISTRY.enabled:
            _SOLVE_SECONDS.observe(clock() - start, backend=self.name)
        self._diag_cache = (self._epoch, mode, values)
        return values.copy()

    def _sketched_diagonal(self) -> np.ndarray:
        """Hutchinson diagonal from cached probe solves plus the correction.

        The probe matrix ``Z`` and its base solves ``Y₀ = M₀⁻¹ Z`` are fixed
        per factorisation; each mutation epoch only re-applies the rank-``t``
        correction to the cached block — O(t·p + t²) instead of p solves.
        """
        z, solved = self.probe_block()
        return np.mean(z * solved, axis=1)

    def probe_block(self) -> Tuple[np.ndarray, np.ndarray]:
        """Probes fixed per factorisation; solves = cached base + correction."""
        if self._probe_z is None or self._probe_z.shape[0] != self._n:
            rng = np.random.default_rng(self.seed + 7919 * self._factor_count)
            self._probe_z = np.where(
                rng.random((self._n, self.probes)) < 0.5, -1.0, 1.0
            )
            self._probe_base = self._base_solve_many(self._probe_z)
            self._probe_corrected = None
        if self._probe_corrected is None or self._probe_corrected[0] != self._epoch:
            self._probe_corrected = (self._epoch, self._correct(self._probe_base))
        return self._probe_z, self._probe_corrected[1]

    def correction_columns(self, count: int
                           ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]]:
        count = int(count)
        if count < 1 or count > self._deltas.size:
            return None
        corrected = self._correct(self._left[:, -count:])
        return (self._rows_i[-count:].copy(), self._rows_j[-count:].copy(),
                self._deltas[-count:].copy(), corrected)

    # ------------------------------------------------------------- mutations
    def apply_triples(self, triples: Sequence[Triple]) -> None:
        fault_point("backend.apply", subject=self, backend=self.name)
        fresh: List[Triple] = []
        for i, j, delta in triples:
            i = int(i)
            if not 0 <= i < self._n:
                raise InvalidParameterError(f"index i={i} outside [0, {self._n - 1}]")
            if j is not None:
                j = int(j)
                if not 0 <= j < self._n:
                    raise InvalidParameterError(
                        f"index j={j} outside [0, {self._n - 1}]"
                    )
                if i == j:
                    raise InvalidParameterError("edge endpoints must be distinct rows")
            if float(delta) != 0.0:
                fresh.append((i, j, float(delta)))
        if not fresh:
            return
        rhs = np.zeros((self._n, len(fresh)), dtype=np.float64)
        rows_i = np.empty(len(fresh), dtype=np.int64)
        rows_j = np.full(len(fresh), -1, dtype=np.int64)
        for k, (i, j, _) in enumerate(fresh):
            rhs[i, k] = 1.0
            rows_i[k] = i
            if j is not None:
                rhs[j, k] = -1.0
                rows_j[k] = j
        columns = self._base_solve_many(rhs)                 # M0^-1 B_new
        left = (np.concatenate([self._left, columns], axis=1)
                if self._deltas.size else columns)
        deltas = np.concatenate(
            [self._deltas, [delta for _, _, delta in fresh]]
        )
        rows_i = np.concatenate([self._rows_i, rows_i])
        rows_j = np.concatenate([self._rows_j, rows_j])
        # Full Gram B^T U via incidence gathers on the combined blocks.
        gram = left[rows_i].copy()
        mask = rows_j >= 0
        if np.any(mask):
            gram[mask] -= left[rows_j[mask]]
        capacitance = np.eye(deltas.size) + deltas[:, None] * gram
        singular_values = np.linalg.svd(capacitance, compute_uv=False)
        if singular_values[-1] < 1e-12 * max(1.0, float(singular_values[0])):
            # Same contract (and threshold) as the dense block update: leave
            # the committed state untouched and let the tracker refactorise.
            raise InvalidParameterError(
                "singular block update: the capacitance matrix I + D B^T "
                "M0^-1 B is numerically singular (the batch would make the "
                "grounded matrix singular)"
            )
        self._left = left
        self._deltas = deltas
        self._rows_i = rows_i
        self._rows_j = rows_j
        self._gram = gram
        self._capacitance = capacitance
        self._invalidate()


BackendSpec = Union[str, ResistanceBackend]


def choose_backend(n: int, m: int) -> str:
    """The ``auto`` policy: which backend a (n kept rows, m edges) graph gets.

    The dense engine wins while the explicit inverse is small (array reads,
    BLAS-3 batch updates); the sparse engine wins once n² dominates —
    provided the graph is genuinely sparse, since LU fill-in on dense graphs
    erodes its advantage.
    """
    n = max(int(n), 1)
    average_degree = 2.0 * max(int(m), 0) / n
    if n >= AUTO_SPARSE_NODES and average_degree <= AUTO_SPARSE_DEGREE:
        return "sparse"
    return "dense"


def make_resistance_backend(spec: BackendSpec = "dense",
                            n: int = 0, m: int = 0,
                            options: Optional[Dict[str, object]] = None,
                            ) -> ResistanceBackend:
    """Resolve a backend spec (``"dense" | "sparse" | "auto"`` or instance).

    ``n``/``m`` size the ``auto`` decision; ``options`` are keyword
    arguments for the :class:`SparseResistanceBackend` constructor (ignored
    by the dense backend, rejected alongside an instance spec).
    """
    if isinstance(spec, ResistanceBackend):
        if options:
            raise InvalidParameterError(
                "backend options cannot be combined with a backend instance"
            )
        return spec
    name = str(spec).lower()
    if name == "auto":
        name = choose_backend(n, m)
    if name == "dense":
        if options:
            raise InvalidParameterError(
                f"the dense backend takes no options, got {sorted(options)}"
            )
        return DenseResistanceBackend()
    if name == "sparse":
        return SparseResistanceBackend(**(options or {}))
    raise InvalidParameterError(
        f"unknown resistance backend {spec!r} (expected 'dense', 'sparse' "
        f"or 'auto')"
    )
