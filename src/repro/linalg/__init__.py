"""Laplacian linear algebra: matrices, solvers, JL projections, Schur complements."""

from repro.linalg.laplacian import (
    laplacian_matrix,
    laplacian_dense,
    grounded_laplacian,
    grounded_laplacian_dense,
    transition_matrix,
)
from repro.linalg.pseudoinverse import laplacian_pseudoinverse, pseudoinverse_diagonal
from repro.linalg.solvers import (
    LaplacianSolver,
    PreconditionerCache,
    SolverMethod,
    build_preconditioner,
    estimate_trace_of_inverse,
    solve_grounded,
)
from repro.linalg.jl import (
    JLProjection,
    hutchinson_diagonal,
    hutchinson_probes,
    jl_dimension,
)
from repro.linalg.backends import (
    DenseResistanceBackend,
    ResistanceBackend,
    SparseResistanceBackend,
    choose_backend,
    make_resistance_backend,
)
from repro.linalg.schur import (
    schur_complement,
    schur_onto,
    grounded_inverse_block,
)
from repro.linalg.incidence import incidence_factor, grounded_incidence_factor
from repro.linalg.updates import (
    grounded_inverse,
    grounded_inverse_block_update,
    grounded_inverse_downdate,
    grounded_inverse_edge_update,
    grounded_inverse_grow,
)
from repro.linalg.sparsify import (
    SparsifiedGraph,
    spectral_relative_error,
    spectral_sparsify,
)

__all__ = [
    "laplacian_matrix",
    "laplacian_dense",
    "grounded_laplacian",
    "grounded_laplacian_dense",
    "transition_matrix",
    "laplacian_pseudoinverse",
    "pseudoinverse_diagonal",
    "LaplacianSolver",
    "PreconditionerCache",
    "SolverMethod",
    "build_preconditioner",
    "estimate_trace_of_inverse",
    "solve_grounded",
    "JLProjection",
    "hutchinson_diagonal",
    "hutchinson_probes",
    "jl_dimension",
    "ResistanceBackend",
    "DenseResistanceBackend",
    "SparseResistanceBackend",
    "choose_backend",
    "make_resistance_backend",
    "schur_complement",
    "schur_onto",
    "grounded_inverse_block",
    "incidence_factor",
    "grounded_incidence_factor",
    "grounded_inverse",
    "grounded_inverse_block_update",
    "grounded_inverse_downdate",
    "grounded_inverse_edge_update",
    "grounded_inverse_grow",
    "SparsifiedGraph",
    "spectral_relative_error",
    "spectral_sparsify",
]
