"""SDD / Laplacian linear-system solvers.

The state-of-the-art baseline (ApproxGreedy, Li et al. 2019) relies on a fast
Laplacian solver; the original code uses the Julia ``Laplacians.jl``
approximate-Cholesky solver.  This module provides the substitute substrate:

* dense Cholesky (small systems, exact baselines),
* sparse LU factorisation (medium systems, many right-hand sides),
* Jacobi-preconditioned conjugate gradient (large sparse systems — the method
  the paper's Fig. 3 uses to evaluate CFCC on graphs where exact inversion is
  infeasible).

A :class:`LaplacianSolver` facade picks a method automatically and exposes a
uniform ``solve`` interface for one or many right-hand sides.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.utils.faultpoints import fault_point

Matrix = Union[np.ndarray, sp.spmatrix]


class SolverMethod(str, Enum):
    """Available factorisation / iteration strategies."""

    DENSE_CHOLESKY = "dense_cholesky"
    SPARSE_LU = "sparse_lu"
    CONJUGATE_GRADIENT = "cg"
    AUTO = "auto"


class LaplacianSolver:
    """Solver for symmetric positive-definite (grounded-Laplacian) systems.

    Parameters
    ----------
    matrix:
        The SPD matrix (dense array or scipy sparse matrix).  Grounded
        Laplacians ``L_{-S}`` of connected graphs always qualify.
    method:
        One of :class:`SolverMethod`; ``AUTO`` selects dense Cholesky below
        ``dense_threshold`` unknowns, sparse LU otherwise, falling back to CG
        when factorisation memory would be prohibitive.
    tol:
        Relative residual tolerance for the CG method.
    maxiter:
        CG iteration cap (``None`` lets scipy pick ``10 n``).
    preconditioner:
        Optional pre-built preconditioner for the CG method (e.g. from
        :class:`PreconditionerCache`); when omitted a Jacobi preconditioner
        is built from the matrix diagonal.
    """

    def __init__(self, matrix: Matrix,
                 method: Union[SolverMethod, str] = SolverMethod.AUTO,
                 tol: float = 1e-10,
                 maxiter: Optional[int] = None,
                 dense_threshold: int = 600,
                 preconditioner: Optional[spla.LinearOperator] = None):
        method = SolverMethod(method)
        self.tol = float(tol)
        self.maxiter = maxiter
        self._n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("solver matrix must be square")

        if method is SolverMethod.AUTO:
            method = (SolverMethod.DENSE_CHOLESKY if self._n <= dense_threshold
                      else SolverMethod.SPARSE_LU)
        self.method = method

        self._dense_factor = None
        self._sparse_factor = None
        self._sparse_matrix: Optional[sp.csr_matrix] = None
        self._preconditioner: Optional[spla.LinearOperator] = None

        if method is SolverMethod.DENSE_CHOLESKY:
            dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, float)
            try:
                self._dense_factor = np.linalg.cholesky(dense)
            except np.linalg.LinAlgError as exc:
                raise InvalidParameterError(
                    "dense Cholesky requires a positive-definite matrix"
                ) from exc
        elif method is SolverMethod.SPARSE_LU:
            sparse = sp.csc_matrix(matrix, dtype=np.float64)
            self._sparse_factor = spla.splu(sparse)
        elif method is SolverMethod.CONJUGATE_GRADIENT:
            sparse = sp.csr_matrix(matrix, dtype=np.float64)
            self._sparse_matrix = sparse
            if preconditioner is not None:
                self._preconditioner = preconditioner
            else:
                self._preconditioner = build_preconditioner(sparse, kind="jacobi")
        else:  # pragma: no cover - exhaustive enum
            raise InvalidParameterError(f"unsupported solver method {method}")

    @property
    def n(self) -> int:
        """Number of unknowns."""
        return self._n

    # ------------------------------------------------------------------ solve
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a single right-hand side."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (self._n,):
            raise InvalidParameterError(
                f"right-hand side must have shape ({self._n},), got {rhs.shape}"
            )
        if self.method is SolverMethod.DENSE_CHOLESKY:
            half = np.linalg.solve(self._dense_factor, rhs)
            return np.linalg.solve(self._dense_factor.T, half)
        if self.method is SolverMethod.SPARSE_LU:
            return self._sparse_factor.solve(rhs)
        return self._solve_cg(rhs)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A X = B`` column-by-column for a ``(n, k)`` right-hand side."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            return self.solve(rhs)[:, None]
        if rhs.shape[0] != self._n:
            raise InvalidParameterError(
                f"right-hand sides must have {self._n} rows, got {rhs.shape[0]}"
            )
        if self.method is SolverMethod.DENSE_CHOLESKY:
            half = np.linalg.solve(self._dense_factor, rhs)
            return np.linalg.solve(self._dense_factor.T, half)
        if self.method is SolverMethod.SPARSE_LU:
            return self._sparse_factor.solve(rhs)
        columns = [self._solve_cg(rhs[:, j]) for j in range(rhs.shape[1])]
        return np.stack(columns, axis=1)

    def diagonal_of_inverse(self) -> np.ndarray:
        """Exact diagonal of ``A^{-1}`` via ``n`` solves (small systems only)."""
        identity = np.eye(self._n)
        return np.diag(self.solve_many(identity)).copy()

    def trace_of_inverse(self) -> float:
        """Exact ``Tr(A^{-1})``; cost is ``n`` solves."""
        return float(np.sum(self.diagonal_of_inverse()))

    # -------------------------------------------------------------- internals
    def _solve_cg(self, rhs: np.ndarray) -> np.ndarray:
        fault_point("solver.cg", subject=self)
        solution, info = _cg(
            self._sparse_matrix, rhs, rtol=self.tol,
            maxiter=self.maxiter, M=self._preconditioner,
        )
        if info > 0:
            residual = float(np.linalg.norm(self._sparse_matrix @ solution - rhs))
            raise ConvergenceError(
                f"conjugate gradient did not converge within {info} iterations",
                iterations=int(info), residual=residual, rtol=self.tol,
            )
        if info < 0:
            raise ConvergenceError(
                "conjugate gradient received an illegal input",
                iterations=int(info), rtol=self.tol,
            )
        return solution


def _cg(matrix, rhs, rtol, maxiter, M):
    """Version-portable wrapper around :func:`scipy.sparse.linalg.cg`."""
    try:
        return spla.cg(matrix, rhs, rtol=rtol, maxiter=maxiter, M=M)
    except TypeError:  # older scipy uses `tol`
        return spla.cg(matrix, rhs, tol=rtol, maxiter=maxiter, M=M)


def build_preconditioner(matrix: Matrix, kind: str = "jacobi",
                         drop_tol: float = 1e-4,
                         fill_factor: float = 10.0) -> spla.LinearOperator:
    """Build a CG preconditioner for an SPD (grounded-Laplacian) matrix.

    ``kind`` is ``"jacobi"`` (inverse diagonal — cheap, always applicable to
    grounded Laplacians) or ``"ilu"`` (incomplete LU via ``spilu`` — costlier
    to build, stronger on ill-conditioned systems).
    """
    kind = str(kind).lower()
    if kind == "jacobi":
        sparse = matrix if sp.issparse(matrix) else sp.csr_matrix(matrix)
        diagonal = np.asarray(sparse.diagonal(), dtype=np.float64)
        if np.any(diagonal <= 0):
            raise InvalidParameterError(
                "CG with Jacobi preconditioning requires positive diagonal entries"
            )
        inverse_diag = 1.0 / diagonal
        return spla.LinearOperator(sparse.shape, matvec=lambda x: inverse_diag * x)
    if kind == "ilu":
        sparse = sp.csc_matrix(matrix, dtype=np.float64)
        factor = spla.spilu(sparse, drop_tol=drop_tol, fill_factor=fill_factor)
        return spla.LinearOperator(sparse.shape, matvec=factor.solve)
    raise InvalidParameterError(
        f"preconditioner kind must be 'jacobi' or 'ilu', got {kind!r}"
    )


class PreconditionerCache:
    """Reuse a preconditioner across repeated solves on one matrix version.

    Iterative callers (the sparse resistance backend, repeated
    ``solve_grounded`` sweeps) re-solve against the same matrix many times
    between mutations.  Keyed on a caller-supplied version counter (plus the
    system size, so stale versions of a *different* matrix never alias), the
    cache rebuilds the preconditioner only when the version moves on.
    """

    def __init__(self, kind: str = "jacobi", drop_tol: float = 1e-4,
                 fill_factor: float = 10.0):
        if str(kind).lower() not in ("jacobi", "ilu"):
            raise InvalidParameterError(
                f"preconditioner kind must be 'jacobi' or 'ilu', got {kind!r}"
            )
        self.kind = str(kind).lower()
        self.drop_tol = float(drop_tol)
        self.fill_factor = float(fill_factor)
        self._key: Optional[tuple] = None
        self._operator: Optional[spla.LinearOperator] = None
        #: Cache statistics, for tests and tuning.
        self.builds = 0
        self.hits = 0

    def get(self, matrix: Matrix, version: int) -> spla.LinearOperator:
        """The preconditioner for ``matrix`` at ``version`` (cached if fresh)."""
        key = (int(version), int(matrix.shape[0]))
        if self._operator is not None and self._key == key:
            self.hits += 1
            return self._operator
        self._operator = build_preconditioner(
            matrix, kind=self.kind,
            drop_tol=self.drop_tol, fill_factor=self.fill_factor,
        )
        self._key = key
        self.builds += 1
        return self._operator

    def invalidate(self) -> None:
        """Drop the cached operator (next ``get`` rebuilds)."""
        self._key = None
        self._operator = None


def solve_grounded(matrix: Matrix, rhs: np.ndarray,
                   method: Union[SolverMethod, str] = SolverMethod.AUTO,
                   rtol: float = 1e-10,
                   maxiter: Optional[int] = None,
                   preconditioner: Optional[spla.LinearOperator] = None,
                   ) -> np.ndarray:
    """One-shot convenience wrapper: factor ``matrix`` and solve for ``rhs``.

    ``rtol``/``maxiter``/``preconditioner`` reach the CG method when it is
    selected; the direct methods ignore them.
    """
    solver = LaplacianSolver(matrix, method=method, tol=rtol, maxiter=maxiter,
                             preconditioner=preconditioner)
    return solver.solve(np.asarray(rhs, float))


def estimate_trace_of_inverse(matrix: Matrix, probes: int = 32,
                              seed: Optional[int] = 0,
                              method: Union[SolverMethod, str] = SolverMethod.AUTO,
                              ) -> float:
    """Hutchinson estimator of ``Tr(A^{-1})`` using Rademacher probes.

    This is the conjugate-gradient-based evaluation route the paper uses to
    report CFCC values on graphs too large for exact inversion (Fig. 3).
    """
    if probes <= 0:
        raise InvalidParameterError(f"probes must be positive, got {probes}")
    solver = LaplacianSolver(matrix, method=method)
    rng = np.random.default_rng(seed)
    signs = np.where(rng.random((solver.n, probes)) < 0.5, -1.0, 1.0)
    solved = solver.solve_many(signs)
    return float(np.mean(np.sum(signs * solved, axis=0)))
