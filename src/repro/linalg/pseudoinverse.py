"""Moore–Penrose pseudoinverse of the Laplacian.

``L`` is singular (its null space is spanned by the all-ones vector), so the
paper works with the pseudoinverse ``L† = (L + J/n)^{-1} - J/n`` where
``J = 11^T``.  The diagonal of ``L†`` determines single-node CFCC and the
first greedy pick of every CFCM algorithm (Eq. 4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.linalg.laplacian import laplacian_dense
from repro.utils.validation import check_node


def laplacian_pseudoinverse(graph: Graph) -> np.ndarray:
    """Dense pseudoinverse ``L†`` computed via the rank-one shift identity.

    Uses ``L† = (L + 11^T / n)^{-1} - 11^T / n`` which is numerically stable
    for connected graphs and avoids an SVD.
    """
    n = graph.n
    laplacian = laplacian_dense(graph)
    shift = np.full((n, n), 1.0 / n)
    return np.linalg.inv(laplacian + shift) - shift


def pseudoinverse_diagonal(graph: Graph) -> np.ndarray:
    """Diagonal of ``L†`` (used for single-node CFCC and the first greedy pick)."""
    return np.diag(laplacian_pseudoinverse(graph)).copy()


def pseudoinverse_entry(graph: Graph, u: int, v: int) -> float:
    """Single entry ``L†_{uv}``; convenience wrapper for tests and examples."""
    check_node(u, graph.n)
    check_node(v, graph.n)
    return float(laplacian_pseudoinverse(graph)[u, v])


def pseudoinverse_diagonal_grounded(graph: Graph, anchor: int) -> np.ndarray:
    """Diagonal of ``L†`` computed through the grounded reformulation.

    Implements Lemma 3.5 of the paper: with ``S = {s}``,

    ``L†_uu = (L_{-s}^{-1})_uu - (2/n) 1^T L_{-s}^{-1} e_u + (1/n^2) 1^T L_{-s}^{-1} 1``

    for ``u != s`` and ``L†_ss = (1/n^2) 1^T L_{-s}^{-1} 1``.  The reformulated
    computation only involves the well-conditioned grounded Laplacian, which is
    why the sampling algorithms prefer it.  Dense linear algebra is used here;
    the sampling-based estimator lives in :mod:`repro.centrality.estimators`.
    """
    check_node(anchor, graph.n)
    n = graph.n
    laplacian = laplacian_dense(graph)
    kept = [v for v in range(n) if v != anchor]
    reduced = laplacian[np.ix_(kept, kept)]
    inv_reduced = np.linalg.inv(reduced)
    ones = np.ones(n - 1)
    column_sums = ones @ inv_reduced
    constant = float(ones @ inv_reduced @ ones) / (n * n)
    diag = np.full(n, constant)
    diag[kept] += np.diag(inv_reduced) - (2.0 / n) * column_sums
    return diag


def effective_resistance_matrix(graph: Graph) -> np.ndarray:
    """Dense matrix of pairwise resistance distances ``R(i, j)``.

    ``R(i, j) = L†_ii + L†_jj - 2 L†_ij`` (Eq. 1 of the paper).
    """
    pinv = laplacian_pseudoinverse(graph)
    diag = np.diag(pinv)
    return diag[:, None] + diag[None, :] - 2.0 * pinv


def kirchhoff_index(graph: Graph) -> float:
    """Kirchhoff index ``Kf = n * Tr(L†)`` = sum of all pairwise resistances / 1."""
    return float(graph.n * np.trace(laplacian_pseudoinverse(graph)))


def top_pseudoinverse_nodes(graph: Graph, count: int) -> Sequence[int]:
    """Nodes with the smallest ``L†_uu`` (the best single spreaders)."""
    diag = pseudoinverse_diagonal(graph)
    order = np.argsort(diag, kind="stable")
    return [int(v) for v in order[:count]]
