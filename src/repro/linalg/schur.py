"""Schur complements of (grounded) Laplacians.

Section IV of the paper leverages two facts:

* ``S_T(L)`` — the Schur complement of the Laplacian onto a node subset ``T``
  — is itself the Laplacian of a weighted graph on ``T`` (Devriendt 2022);
* ``S_T(L_{-S}) = (S_{S∪T}(L))_{-S}`` (Lemma 4.3), and ``inv(L_{-S})`` has the
  block representation of Eq. (11) in terms of ``inv(L_UU)``,
  ``F = -inv(L_UU) L_UT`` and ``inv(S_T(L_{-S}))``.

This module provides exact dense implementations of those identities, used by
the tests as ground truth for the sampled Schur complement of SchurCFCM and by
the exact baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.linalg.laplacian import laplacian_dense


def schur_complement(matrix: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Schur complement of ``matrix`` onto the index subset ``keep``.

    ``S_T(M) = M_TT - M_TU inv(M_UU) M_UT`` where ``U`` is the complement of
    ``T = keep``.  Indices of the result follow the order of ``keep``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    keep = list(dict.fromkeys(int(i) for i in keep))
    if not keep:
        raise InvalidParameterError("keep must contain at least one index")
    if min(keep) < 0 or max(keep) >= n:
        raise InvalidParameterError("keep indices outside matrix range")
    eliminate = [i for i in range(n) if i not in set(keep)]
    if not eliminate:
        return matrix[np.ix_(keep, keep)].copy()
    m_tt = matrix[np.ix_(keep, keep)]
    m_tu = matrix[np.ix_(keep, eliminate)]
    m_ut = matrix[np.ix_(eliminate, keep)]
    m_uu = matrix[np.ix_(eliminate, eliminate)]
    return m_tt - m_tu @ np.linalg.solve(m_uu, m_ut)


def schur_onto(graph: Graph, keep: Sequence[int]) -> np.ndarray:
    """Schur complement of the graph Laplacian onto the node subset ``keep``.

    The result is the Laplacian of a weighted graph on ``keep`` (rows sum to
    zero, off-diagonals are non-positive).
    """
    return schur_complement(laplacian_dense(graph), keep)


@dataclass(frozen=True)
class GroundedBlockInverse:
    """Blocks of ``inv(L_{-S})`` in the Eq. (11) representation.

    Attributes
    ----------
    interior:
        Index array ``U = V \\ (S ∪ T)`` (original node labels).
    boundary:
        Index array ``T`` (original node labels).
    inv_interior:
        ``inv(L_UU)``.
    absorption:
        ``F = -inv(L_UU) L_UT`` whose ``(u, t)`` entry is the probability that
        a random walk from ``u`` hits ``t`` before any other node of ``S ∪ T``.
    schur:
        ``S_T(L_{-S})``.
    inv_schur:
        ``inv(S_T(L_{-S}))``.
    """

    interior: np.ndarray
    boundary: np.ndarray
    inv_interior: np.ndarray
    absorption: np.ndarray
    schur: np.ndarray
    inv_schur: np.ndarray

    def assemble(self) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the full ``inv(L_{-S})`` and the row/column node labels.

        Returns
        -------
        (matrix, labels):
            ``matrix[i, j]`` is ``inv(L_{-S})`` at nodes ``labels[i], labels[j]``
            with the interior block first and the boundary block second.
        """
        f_m = self.absorption @ self.inv_schur
        upper_left = self.inv_interior + f_m @ self.absorption.T
        upper_right = f_m
        lower_left = f_m.T
        lower_right = self.inv_schur
        top = np.concatenate([upper_left, upper_right], axis=1)
        bottom = np.concatenate([lower_left, lower_right], axis=1)
        labels = np.concatenate([self.interior, self.boundary])
        return np.concatenate([top, bottom], axis=0), labels


def grounded_inverse_block(graph: Graph, grounded: Sequence[int],
                           boundary: Sequence[int]) -> GroundedBlockInverse:
    """Exact Eq. (11) decomposition of ``inv(L_{-S})`` with extra roots ``T``.

    Parameters
    ----------
    graph:
        Connected graph.
    grounded:
        The grounded node group ``S``.
    boundary:
        The additional root set ``T`` (must be disjoint from ``S``).
    """
    grounded = sorted(set(int(v) for v in grounded))
    boundary = sorted(set(int(v) for v in boundary))
    if set(grounded) & set(boundary):
        raise InvalidParameterError("S and T must be disjoint")
    if not boundary:
        raise InvalidParameterError("boundary set T must be non-empty")
    excluded = set(grounded) | set(boundary)
    interior = np.asarray([v for v in range(graph.n) if v not in excluded], dtype=np.int64)
    boundary_arr = np.asarray(boundary, dtype=np.int64)

    laplacian = laplacian_dense(graph)
    l_uu = laplacian[np.ix_(interior, interior)]
    l_ut = laplacian[np.ix_(interior, boundary_arr)]
    l_tt = laplacian[np.ix_(boundary_arr, boundary_arr)]

    inv_interior = np.linalg.inv(l_uu) if interior.size else np.zeros((0, 0))
    absorption = (-inv_interior @ l_ut) if interior.size else np.zeros((0, len(boundary)))
    # S_T(L_{-S}) = L_TT - L_TU inv(L_UU) L_UT = L_TT + L_TU F  (F = -inv(L_UU) L_UT)
    schur = l_tt + l_ut.T @ absorption if interior.size else l_tt.copy()
    inv_schur = np.linalg.inv(schur)
    return GroundedBlockInverse(
        interior=interior,
        boundary=boundary_arr,
        inv_interior=inv_interior,
        absorption=absorption,
        schur=schur,
        inv_schur=inv_schur,
    )


def absorption_probabilities(graph: Graph, grounded: Sequence[int],
                             boundary: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Exact rooted-at-``T`` probabilities ``F_ut`` (Lemma 4.2) and interior labels.

    ``F_ut`` is the probability that a random walk started at interior node
    ``u`` is absorbed at ``t ∈ T`` rather than at any other node of ``S ∪ T``.
    Equals the probability that ``u`` belongs to the tree rooted at ``t`` in a
    uniform spanning forest rooted at ``S ∪ T``.
    """
    block = grounded_inverse_block(graph, grounded, boundary)
    return block.absorption, block.interior
