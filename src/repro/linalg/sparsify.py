"""Spectral sparsification by effective resistances (Spielman–Srivastava).

Lemma 4.4 of the paper rests on the classical result that sampling edges with
probability proportional to (an upper bound on) their effective resistance
and reweighting them yields an eps-spectral sparsifier: for the sparsified
Laplacian ``L~`` and every vector ``x``, ``x^T L~ x ≈_eps x^T L x``.

SchurDelta uses the result implicitly (its sampled Schur complement is a sum
of random single-edge subgraphs); this module provides the explicit
sparsifier as a reusable substrate, plus helpers to measure spectral
approximation quality, which the tests and the ablation benchmarks use to
validate the Lemma 4.4 machinery end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidParameterError
from repro.graph.graph import Graph
from repro.linalg.pseudoinverse import laplacian_pseudoinverse
from repro.utils.rng import RandomState, as_rng


@dataclass(frozen=True)
class SparsifiedGraph:
    """A reweighted multigraph approximating the input graph spectrally.

    Attributes
    ----------
    edge_u, edge_v:
        Endpoints of the retained (possibly repeated) edges.
    weights:
        Positive weight of every retained edge.
    samples:
        Number of edge samples drawn.
    """

    n: int
    edge_u: np.ndarray
    edge_v: np.ndarray
    weights: np.ndarray
    samples: int

    @property
    def distinct_edges(self) -> int:
        """Number of distinct edges with non-zero weight."""
        pairs = set(zip(self.edge_u.tolist(), self.edge_v.tolist()))
        return len(pairs)

    def laplacian(self) -> sp.csr_matrix:
        """Weighted Laplacian of the sparsified graph."""
        n = self.n
        rows = np.concatenate([self.edge_u, self.edge_v, self.edge_u, self.edge_v])
        cols = np.concatenate([self.edge_v, self.edge_u, self.edge_u, self.edge_v])
        vals = np.concatenate([-self.weights, -self.weights, self.weights, self.weights])
        return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def effective_resistances_of_edges(graph: Graph) -> np.ndarray:
    """Exact effective resistance of every edge (dense; small graphs)."""
    pinv = laplacian_pseudoinverse(graph)
    diag = np.diag(pinv)
    u, v = graph.edge_u, graph.edge_v
    return diag[u] + diag[v] - 2.0 * pinv[u, v]


def spectral_sparsify(graph: Graph, eps: float = 0.5, seed: RandomState = None,
                      oversampling: float = 4.0,
                      samples: Optional[int] = None) -> SparsifiedGraph:
    """Sample a spectral sparsifier of ``graph`` by effective resistances.

    Parameters
    ----------
    graph:
        Connected graph (unit edge weights).
    eps:
        Target spectral accuracy; the number of samples scales with
        ``eps^-2 n log n``.
    oversampling:
        Constant multiplying the sample count (theory needs ~9; smaller values
        trade accuracy for sparsity).
    samples:
        Explicit number of edge samples; overrides the formula.

    Returns
    -------
    :class:`SparsifiedGraph` whose Laplacian satisfies
    ``x^T L~ x ≈_eps x^T L x`` with high probability.
    """
    if not 0.0 < eps < 1.0:
        raise InvalidParameterError(f"eps must lie in (0, 1), got {eps}")
    if graph.m == 0:
        raise InvalidParameterError("cannot sparsify an empty graph")
    rng = as_rng(seed)

    resistances = effective_resistances_of_edges(graph)
    # Sampling probabilities proportional to leverage scores R_e * w_e.
    scores = np.maximum(resistances, 1e-12)
    probabilities = scores / scores.sum()
    if samples is None:
        samples = int(np.ceil(oversampling * graph.n * np.log(max(graph.n, 2))
                              / (eps ** 2)))
    samples = max(int(samples), 1)

    drawn = rng.choice(graph.m, size=samples, p=probabilities, replace=True)
    counts = np.bincount(drawn, minlength=graph.m).astype(np.float64)
    retained = np.flatnonzero(counts > 0)
    # Horvitz–Thompson reweighting keeps the Laplacian unbiased.
    weights = counts[retained] / (samples * probabilities[retained])
    return SparsifiedGraph(
        n=graph.n,
        edge_u=graph.edge_u[retained],
        edge_v=graph.edge_v[retained],
        weights=weights,
        samples=samples,
    )


def spectral_relative_error(graph: Graph, sparsifier: SparsifiedGraph,
                            probes: int = 32, seed: RandomState = None,
                            ) -> float:
    """Largest observed relative error of ``x^T L~ x`` over random probes.

    A Monte Carlo check of the sparsifier guarantee used by tests and
    benchmarks (the exact check would need a generalised eigenvalue solve).
    """
    if probes <= 0:
        raise InvalidParameterError("probes must be positive")
    rng = as_rng(seed)
    from repro.linalg.laplacian import laplacian_matrix

    original = laplacian_matrix(graph)
    approximate = sparsifier.laplacian()
    worst = 0.0
    for _ in range(probes):
        x = rng.normal(size=graph.n)
        x -= x.mean()  # stay orthogonal to the common null space
        exact = float(x @ (original @ x))
        estimate = float(x @ (approximate @ x))
        if exact > 1e-12:
            worst = max(worst, abs(estimate - exact) / exact)
    return worst


def sparsify_and_compare(graph: Graph, eps: float = 0.5, seed: RandomState = None,
                         ) -> Tuple[SparsifiedGraph, float]:
    """Convenience wrapper returning a sparsifier and its measured error."""
    sparsifier = spectral_sparsify(graph, eps=eps, seed=seed)
    error = spectral_relative_error(graph, sparsifier, seed=seed)
    return sparsifier, error
