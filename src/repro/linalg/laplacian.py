"""Laplacian and grounded-Laplacian construction.

For a graph ``G`` with adjacency matrix ``A`` and degree matrix ``D`` the
Laplacian is ``L = D - A``.  Removing the rows and columns indexed by a node
group ``S`` yields the *grounded Laplacian* ``L_{-S}``, which is symmetric,
diagonally dominant and positive definite for connected graphs — the central
matrix of the paper, since ``C(S) = n / Tr(inv(L_{-S}))``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.utils.validation import check_group


def laplacian_matrix(graph: Graph) -> sp.csr_matrix:
    """Sparse Laplacian ``L = D - A`` of ``graph``."""
    return (graph.degree_matrix() - graph.adjacency_matrix()).tocsr()


def laplacian_dense(graph: Graph) -> np.ndarray:
    """Dense Laplacian; intended for small graphs and exact baselines."""
    return laplacian_matrix(graph).toarray()


def complement_indices(n: int, group: Sequence[int]) -> np.ndarray:
    """Nodes of ``0..n-1`` not in ``group``, in increasing order.

    The ordering defines the row/column labelling of ``L_{-S}``: entry ``i``
    of the reduced matrix corresponds to node ``complement_indices(n, S)[i]``.
    """
    mask = np.ones(n, dtype=bool)
    mask[list(group)] = False
    return np.flatnonzero(mask)


def grounded_laplacian(graph: Graph, group: Sequence[int]
                       ) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Sparse grounded Laplacian ``L_{-S}`` and the kept-node index array.

    Returns
    -------
    (matrix, kept):
        ``matrix[i, j]`` equals ``L[kept[i], kept[j]]``.
    """
    group = check_group(group, graph.n)
    kept = complement_indices(graph.n, group)
    full = laplacian_matrix(graph)
    reduced = full[kept][:, kept].tocsr()
    return reduced, kept


def grounded_laplacian_dense(graph: Graph, group: Sequence[int]
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Dense grounded Laplacian ``L_{-S}`` and the kept-node index array."""
    matrix, kept = grounded_laplacian(graph, group)
    return matrix.toarray(), kept


def transition_matrix(graph: Graph) -> sp.csr_matrix:
    """Random-walk transition matrix ``P = D^{-1} A``."""
    inv_degree = sp.diags(1.0 / graph.degrees.astype(np.float64), format="csr")
    return (inv_degree @ graph.adjacency_matrix()).tocsr()


def grounded_transition_matrix(graph: Graph, group: Sequence[int]
                               ) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Submatrix ``P_{-S}`` of the transition matrix, plus kept indices.

    ``Tr((I - P_{-S})^{-1})`` bounds the expected running time of Wilson's
    algorithm with root set ``S`` (Lemma 3.7).
    """
    group = check_group(group, graph.n)
    kept = complement_indices(graph.n, group)
    full = transition_matrix(graph)
    return full[kept][:, kept].tocsr(), kept


def is_symmetric_diagonally_dominant(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check symmetry and (weak) diagonal dominance of a dense matrix."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        return False
    if not np.allclose(arr, arr.T, atol=tol):
        return False
    off_diag = np.sum(np.abs(arr), axis=1) - np.abs(np.diag(arr))
    return bool(np.all(np.abs(np.diag(arr)) + tol >= off_diag))
