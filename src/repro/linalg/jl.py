"""Johnson–Lindenstrauss random projections (Lemma 3.4 of the paper).

The squared column norms of ``inv(L_{-S})`` (i.e. the diagonal of
``inv(L_{-S})^2``) are approximated by projecting onto ``w = O(eps^-2 log n)``
random ±1/sqrt(w) directions.  Both the sampling algorithms and the
ApproxGreedy baseline share this machinery.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import RandomState, as_rng


def jl_dimension(n: int, eps: float, constant: float = 24.0,
                 minimum: int = 1, maximum: Optional[int] = None) -> int:
    """Projection dimension ``w >= constant * eps^-2 * log(n)``.

    Parameters
    ----------
    n:
        Number of vectors whose pairwise norms must be preserved.
    eps:
        Relative error parameter in ``(0, 1)``.
    constant:
        The paper uses 24 (Lemma 3.4); practical runs may lower it.
    minimum, maximum:
        Clamp bounds; ``maximum=None`` leaves the theoretical value unclamped.
    """
    if not 0.0 < eps < 1.0:
        raise InvalidParameterError(f"eps must lie in (0, 1), got {eps}")
    if n < 1:
        raise InvalidParameterError(f"n must be positive, got {n}")
    dimension = int(math.ceil(constant * (eps ** -2) * math.log(max(n, 2))))
    dimension = max(dimension, minimum)
    if maximum is not None:
        dimension = min(dimension, maximum)
    return dimension


class JLProjection:
    """A random ±1/sqrt(w) projection matrix ``Q`` of shape ``(w, d)``.

    ``Q`` preserves squared Euclidean norms up to a ``(1 ± eps)`` factor with
    probability at least ``1 - 1/n`` when ``w >= 24 eps^-2 log n``.
    """

    def __init__(self, dimension: int, original_dimension: int,
                 seed: RandomState = None):
        if dimension < 1:
            raise InvalidParameterError(f"dimension must be >= 1, got {dimension}")
        if original_dimension < 1:
            raise InvalidParameterError(
                f"original_dimension must be >= 1, got {original_dimension}"
            )
        rng = as_rng(seed)
        scale = 1.0 / math.sqrt(dimension)
        self.matrix = np.where(
            rng.random((dimension, original_dimension)) < 0.5, -scale, scale
        )

    @property
    def dimension(self) -> int:
        """Projection (row) dimension ``w``."""
        return self.matrix.shape[0]

    @property
    def original_dimension(self) -> int:
        """Ambient (column) dimension ``d``."""
        return self.matrix.shape[1]

    def project(self, vectors: np.ndarray) -> np.ndarray:
        """Project column vectors: ``Q @ vectors``; accepts 1-D or 2-D input."""
        vectors = np.asarray(vectors, dtype=np.float64)
        return self.matrix @ vectors

    def squared_norm(self, vector: np.ndarray) -> float:
        """Estimate ``||vector||^2`` as ``||Q vector||^2``."""
        projected = self.project(np.asarray(vector, dtype=np.float64))
        return float(projected @ projected)


def hutchinson_probes(n: int, probes: int,
                      seed: RandomState = None) -> np.ndarray:
    """A ``(n, probes)`` Rademacher probe matrix for Hutchinson sketches."""
    if n < 1:
        raise InvalidParameterError(f"n must be positive, got {n}")
    if probes < 1:
        raise InvalidParameterError(f"probes must be positive, got {probes}")
    rng = as_rng(seed)
    return np.where(rng.random((n, probes)) < 0.5, -1.0, 1.0)


def hutchinson_diagonal(solve_many, n: int, probes: int = 32,
                        seed: RandomState = None,
                        probe_matrix: Optional[np.ndarray] = None) -> np.ndarray:
    """Hutchinson estimate of ``diag(A^{-1})`` using only solver matvecs.

    ``diag(A^{-1}) ≈ mean(Z ⊙ A^{-1} Z, axis=1)`` over Rademacher probes
    ``Z``.  ``solve_many`` maps a ``(n, k)`` block to ``A^{-1}`` applied to
    it — typically :meth:`LaplacianSolver.solve_many` or a resistance
    backend's solve, so the estimate never materialises the inverse.  A
    pre-drawn ``probe_matrix`` lets callers reuse probes (and any cached
    solves) across repeated estimates.
    """
    if probe_matrix is None:
        probe_matrix = hutchinson_probes(n, probes, seed=seed)
    probe_matrix = np.asarray(probe_matrix, dtype=np.float64)
    if probe_matrix.ndim != 2 or probe_matrix.shape[0] != n:
        raise InvalidParameterError(
            f"probe matrix must have shape ({n}, k), got {probe_matrix.shape}"
        )
    solved = np.asarray(solve_many(probe_matrix), dtype=np.float64)
    if solved.shape != probe_matrix.shape:
        raise InvalidParameterError(
            "solve_many must return a block matching the probe shape"
        )
    return np.mean(probe_matrix * solved, axis=1)


def approx_column_norms(matrix: np.ndarray, eps: float,
                        seed: RandomState = None,
                        constant: float = 24.0,
                        max_dimension: Optional[int] = None) -> np.ndarray:
    """JL estimates of the squared column norms of a dense matrix.

    Convenience helper used in tests to check the quality of the projection;
    algorithm code projects implicitly by solving linear systems instead.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise InvalidParameterError("matrix must be two-dimensional")
    rows, cols = matrix.shape
    dimension = jl_dimension(cols, eps, constant=constant, maximum=max_dimension)
    projection = JLProjection(dimension, rows, seed=seed)
    projected = projection.project(matrix)
    return np.sum(projected * projected, axis=0)
