"""Incidence factorisations ``L = B^T B`` of (grounded) Laplacians.

The ApproxGreedy baseline estimates ``diag(inv(L_{-S}))`` through the identity

``(inv(L_{-S}))_uu = || C inv(L_{-S}) e_u ||^2``    where  ``L_{-S} = C^T C``.

For a grounded Laplacian the factor ``C`` has one row per edge with both
endpoints outside ``S`` (entries +1/-1) plus one row per edge crossing into
``S`` (a single +1 entry), so the JL lemma can compress the row dimension and
each estimate reduces to solving a handful of Laplacian systems.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.linalg.laplacian import complement_indices
from repro.utils.validation import check_group


def incidence_factor(graph: Graph) -> sp.csr_matrix:
    """Edge-node incidence matrix ``B`` with ``B^T B = L``.

    Row ``e`` for edge ``(u, v)`` has ``+1`` at ``u`` and ``-1`` at ``v``
    (orientation ``u < v``).
    """
    m, n = graph.m, graph.n
    rows = np.repeat(np.arange(m), 2)
    cols = np.concatenate([graph.edge_u[:, None], graph.edge_v[:, None]], axis=1).ravel()
    data = np.tile(np.array([1.0, -1.0]), m)
    return sp.csr_matrix((data, (rows, cols)), shape=(m, n))


def grounded_incidence_factor(graph: Graph, group: Sequence[int]
                              ) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Factor ``C`` with ``C^T C = L_{-S}`` plus the kept-node index array.

    Rows:

    * one per edge with both endpoints outside ``S``: ``+1 / -1`` entries;
    * one per (edge, endpoint-outside-``S``) pair where the other endpoint is
      in ``S``: a single ``+1`` entry, contributing the grounded degree.
    """
    group = check_group(group, graph.n)
    kept = complement_indices(graph.n, group)
    relabel = -np.ones(graph.n, dtype=np.int64)
    relabel[kept] = np.arange(kept.size)

    grounded_mask = np.zeros(graph.n, dtype=bool)
    grounded_mask[group] = True

    rows = []
    cols = []
    data = []
    row_count = 0
    for u, v in zip(graph.edge_u, graph.edge_v):
        u, v = int(u), int(v)
        u_in, v_in = grounded_mask[u], grounded_mask[v]
        if u_in and v_in:
            continue
        if not u_in and not v_in:
            rows += [row_count, row_count]
            cols += [relabel[u], relabel[v]]
            data += [1.0, -1.0]
        elif u_in:
            rows.append(row_count)
            cols.append(relabel[v])
            data.append(1.0)
        else:
            rows.append(row_count)
            cols.append(relabel[u])
            data.append(1.0)
        row_count += 1
    factor = sp.csr_matrix(
        (np.asarray(data), (np.asarray(rows), np.asarray(cols))),
        shape=(max(row_count, 1), kept.size),
    )
    return factor, kept
