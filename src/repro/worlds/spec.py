"""Declarative world specifications for the scenario-sweep harness.

A *world* is one fully parameterised serving scenario: a topology family and
size, a churn regime, a traffic mix, a resistance backend and the estimator
configuration of the dynamic engine.  :class:`WorldSpec` is the declarative
record of all of that — JSON round-trippable, hashable into a stable name,
and buildable into a concrete seeded :class:`repro.Graph`.

:class:`WorldSampler` is the GraphWorld-style generative layer on top: given
axes of families, sizes, churn regimes, traffic mixes and backends it draws
reproducible random worlds (one child seed per world, derived from the
sampler's master seed), which is how the sweep maps the engine's
accuracy/latency/ESS envelope instead of benchmarking a handful of
hand-picked configs.

Topology families
-----------------

==================  =====================================================
family              generator
==================  =====================================================
``power_law``       :func:`repro.graph.generators.barabasi_albert`
``power_law_cluster``  :func:`repro.graph.generators.powerlaw_cluster`
``lattice``         :func:`repro.graph.generators.grid_graph`
``small_world``     :func:`repro.graph.generators.watts_strogatz`
``expander``        :func:`repro.graph.generators.random_regular` (d >= 4)
``k_regular``       :func:`repro.graph.generators.random_regular`
``planted_community``  :func:`repro.graph.generators.planted_partition`
``ring``            :func:`repro.graph.generators.cycle_graph`
==================  =====================================================

``ring`` is deliberately popping-hostile: the lockstep Wilson kernel bails
to its scalar finish there, so ring worlds keep that path under regression.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.resilience.faults import FAULT_REGIMES, FaultPlan
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_integer


def _power_law(n: int, params: Dict[str, object], seed) -> Graph:
    return generators.barabasi_albert(n, int(params.get("m", 3)), seed=seed)


def _power_law_cluster(n: int, params: Dict[str, object], seed) -> Graph:
    return generators.powerlaw_cluster(n, int(params.get("m", 3)),
                                       float(params.get("p", 0.3)), seed=seed)


def _lattice(n: int, params: Dict[str, object], seed) -> Graph:
    rows = int(params.get("rows", max(2, round(n ** 0.5))))
    cols = max(2, n // rows)
    return generators.grid_graph(rows, cols)


def _small_world(n: int, params: Dict[str, object], seed) -> Graph:
    return generators.watts_strogatz(n, int(params.get("k", 4)),
                                     float(params.get("p", 0.1)), seed=seed)


def _expander(n: int, params: Dict[str, object], seed) -> Graph:
    degree = int(params.get("d", 6))
    if degree < 4:
        raise InvalidParameterError(
            f"expander worlds need degree >= 4 for expansion, got {degree}"
        )
    if (n * degree) % 2:
        n += 1  # a d-regular graph needs n*d even
    return generators.random_regular(n, degree, seed=seed)


def _k_regular(n: int, params: Dict[str, object], seed) -> Graph:
    degree = int(params.get("d", 4))
    if (n * degree) % 2:
        n += 1
    return generators.random_regular(n, degree, seed=seed)


def _planted_community(n: int, params: Dict[str, object], seed) -> Graph:
    return generators.planted_partition(
        n, int(params.get("communities", 4)),
        float(params.get("p_in", 0.25)), float(params.get("p_out", 0.01)),
        seed=seed,
    )


def _ring(n: int, params: Dict[str, object], seed) -> Graph:
    return generators.cycle_graph(max(3, n))


#: family name -> builder(n, params, seed) returning a connected Graph.
TOPOLOGIES: Dict[str, Callable[[int, Dict[str, object], object], Graph]] = {
    "power_law": _power_law,
    "power_law_cluster": _power_law_cluster,
    "lattice": _lattice,
    "small_world": _small_world,
    "expander": _expander,
    "k_regular": _k_regular,
    "planted_community": _planted_community,
    "ring": _ring,
}

#: churn regime names understood by :mod:`repro.worlds.churn`.
CHURN_REGIMES: Tuple[str, ...] = (
    "none", "bursty_joins", "adversarial_deletions", "reweight_storm", "mixed",
)

#: traffic mix -> (reads per burst, churn events per burst).
TRAFFIC_MIXES: Dict[str, Tuple[int, int]] = {
    "read_heavy": (4, 2),
    "mixed": (2, 4),
    "write_heavy": (1, 8),
}

BACKENDS: Tuple[str, ...] = ("dense", "sparse", "auto")
MODES: Tuple[str, ...] = ("engine", "service", "sharded")


@dataclass(frozen=True)
class ChurnSpec:
    """One churn regime instance: which driver, how much, how intense.

    ``events`` is the total mutation budget of the world (split into bursts
    by the traffic mix); ``intensity`` is the regime's own dial — the
    log-range of a reweight storm's factors, the attachment count of bursty
    joins, the hub-bias strength of adversarial deletions.
    """

    regime: str = "mixed"
    events: int = 32
    intensity: float = 1.0

    def validate(self) -> "ChurnSpec":
        if self.regime not in CHURN_REGIMES:
            raise InvalidParameterError(
                f"unknown churn regime {self.regime!r} (expected one of "
                f"{CHURN_REGIMES})"
            )
        check_integer("events", self.events, minimum=0)
        if self.intensity <= 0.0:
            raise InvalidParameterError(
                f"churn intensity must be positive, got {self.intensity}"
            )
        return self


@dataclass(frozen=True)
class TrafficSpec:
    """Traffic shape of a world: read/write mix and monitored group size."""

    mix: str = "mixed"
    group_size: int = 3

    def validate(self) -> "TrafficSpec":
        if self.mix not in TRAFFIC_MIXES:
            raise InvalidParameterError(
                f"unknown traffic mix {self.mix!r} (expected one of "
                f"{sorted(TRAFFIC_MIXES)})"
            )
        check_integer("group_size", self.group_size, minimum=1)
        return self

    @property
    def reads_per_burst(self) -> int:
        return TRAFFIC_MIXES[self.mix][0]

    @property
    def burst_size(self) -> int:
        return TRAFFIC_MIXES[self.mix][1]


@dataclass(frozen=True)
class EstimatorSpec:
    """Engine estimator configuration plus the world's accuracy gate."""

    pool_size: int = 24
    ess_floor: float = 0.5
    eps: float = 0.3
    max_samples: int = 48
    forest_tolerance: float = 0.5
    exact_tolerance: float = 1e-6

    def validate(self) -> "EstimatorSpec":
        check_integer("pool_size", self.pool_size, minimum=1)
        if not 0.0 <= self.ess_floor <= 1.0:
            raise InvalidParameterError(
                f"ess_floor must lie in [0, 1], got {self.ess_floor}"
            )
        for name in ("eps", "forest_tolerance", "exact_tolerance"):
            value = getattr(self, name)
            if value <= 0.0:
                raise InvalidParameterError(
                    f"{name} must be positive, got {value}"
                )
        check_integer("max_samples", self.max_samples, minimum=1)
        return self


@dataclass(frozen=True)
class FaultSpec:
    """Fault regime of a world (the chaos axis of the sweep harness).

    ``regime`` names one of :data:`repro.resilience.FAULT_REGIMES`
    (``"none"`` keeps the world fault-free and its name/JSON unchanged);
    ``rate``/``limit``/``magnitude`` are forwarded to
    :meth:`repro.resilience.FaultPlan.for_regime`, so a faulted spec is a
    complete reproduction recipe for its failure schedule too.
    """

    regime: str = "none"
    rate: float = 0.25
    limit: int = 4
    magnitude: float = 1e-4

    def validate(self) -> "FaultSpec":
        if self.regime not in FAULT_REGIMES:
            raise InvalidParameterError(
                f"unknown fault regime {self.regime!r} (expected one of "
                f"{FAULT_REGIMES})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise InvalidParameterError(
                f"fault rate must lie in [0, 1], got {self.rate}"
            )
        check_integer("limit", self.limit, minimum=1)
        if self.magnitude <= 0.0:
            raise InvalidParameterError(
                f"fault magnitude must be positive, got {self.magnitude}"
            )
        return self

    @property
    def active(self) -> bool:
        return self.regime != "none"

    def plan(self, seed: int) -> FaultPlan:
        """Materialise the deterministic fault schedule for one world seed."""
        return FaultPlan.for_regime(self.regime, rate=self.rate,
                                    limit=self.limit,
                                    magnitude=self.magnitude, seed=seed)


@dataclass(frozen=True)
class WorldSpec:
    """One declarative serving scenario of the sweep harness.

    ``topology`` names a family from :data:`TOPOLOGIES`; ``params`` carries
    the family's shape knobs (``m``, ``d``, ``p_in``, ...).  ``mode``
    selects the execution front end: ``"engine"`` drives a synchronous
    :class:`repro.dynamic.DynamicCFCM` directly, ``"service"`` runs the same
    world through :class:`repro.service.AsyncCFCMService` (single writer,
    concurrent reads), and ``"sharded"`` drives a
    :class:`repro.distributed.ShardedCFCM` split into ``shards`` parts (the
    ``shards`` axis is ignored by the other modes).  ``seed`` pins graph
    construction, churn draws and estimator sampling, so a spec is a
    complete reproduction recipe.
    """

    topology: str = "power_law"
    n: int = 96
    params: Dict[str, object] = field(default_factory=dict)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    backend: str = "dense"
    estimator: EstimatorSpec = field(default_factory=EstimatorSpec)
    mode: str = "engine"
    shards: int = 2
    faults: FaultSpec = field(default_factory=FaultSpec)
    seed: int = 0

    def validate(self) -> "WorldSpec":
        if self.topology not in TOPOLOGIES:
            raise InvalidParameterError(
                f"unknown topology family {self.topology!r} (expected one of "
                f"{sorted(TOPOLOGIES)})"
            )
        check_integer("n", self.n, minimum=4)
        if self.backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {self.backend!r} (expected one of {BACKENDS})"
            )
        if self.mode not in MODES:
            raise InvalidParameterError(
                f"unknown mode {self.mode!r} (expected one of {MODES})"
            )
        check_integer("shards", self.shards, minimum=1)
        if self.mode == "sharded" and self.faults.active:
            raise InvalidParameterError(
                "sharded worlds do not support fault regimes yet (the "
                "distributed engine has no chaos seams)"
            )
        self.churn.validate()
        self.traffic.validate()
        self.estimator.validate()
        self.faults.validate()
        return self

    # ------------------------------------------------------------- identity
    @property
    def name(self) -> str:
        """Stable human-readable identifier used in tables and artifacts.

        Fault-free worlds keep the historical six-axis name, so every
        pre-chaos artifact and doc reference stays valid; faulted worlds
        append ``-f<regime>``.  Sharded worlds fold the shard count into the
        mode segment (``sharded3``) so specs differing only in shards do not
        collide.
        """
        mode = (f"{self.mode}{self.shards}" if self.mode == "sharded"
                else self.mode)
        base = (f"{self.topology}-n{self.n}-{self.churn.regime}"
                f"-{self.traffic.mix}-{self.backend}-{mode}-s{self.seed}")
        if self.faults.active:
            return f"{base}-f{self.faults.regime}"
        return base

    # ------------------------------------------------------------- building
    def build_graph(self) -> Graph:
        """Materialise the world's seed topology (always connected)."""
        self.validate()
        graph = TOPOLOGIES[self.topology](self.n, dict(self.params), self.seed)
        if graph.n < self.traffic.group_size + 2:
            raise InvalidParameterError(
                f"world {self.name!r} built only {graph.n} nodes, too few for "
                f"a monitored group of {self.traffic.group_size}"
            )
        return graph

    # ----------------------------------------------------------- round trip
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable, ``from_dict`` inverse)."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorldSpec":
        data = dict(payload)
        churn = ChurnSpec(**data.pop("churn", {}))
        traffic = TrafficSpec(**data.pop("traffic", {}))
        estimator = EstimatorSpec(**data.pop("estimator", {}))
        faults = FaultSpec(**data.pop("faults", {}))
        spec = cls(churn=churn, traffic=traffic, estimator=estimator,
                   faults=faults, **data)
        return spec.validate()

    @classmethod
    def from_json(cls, text: str) -> "WorldSpec":
        return cls.from_dict(json.loads(text))


class WorldSampler:
    """Draw reproducible random worlds over configurable axes.

    Each call to :meth:`sample` derives one child seed per world from the
    sampler's master generator, so a fixed master seed yields the same
    worlds in the same order regardless of how the batch is consumed —
    the GraphWorld contract that makes sweep tables comparable across runs.
    """

    def __init__(self,
                 topologies: Tuple[str, ...] = ("power_law", "lattice",
                                                "small_world", "expander",
                                                "planted_community"),
                 sizes: Tuple[int, ...] = (64, 96, 128),
                 churn_regimes: Tuple[str, ...] = ("bursty_joins",
                                                   "adversarial_deletions",
                                                   "reweight_storm", "mixed"),
                 traffic_mixes: Tuple[str, ...] = ("read_heavy", "mixed",
                                                   "write_heavy"),
                 backends: Tuple[str, ...] = ("dense", "sparse"),
                 events: int = 24,
                 estimator: Optional[EstimatorSpec] = None,
                 seed: RandomState = None):
        for topology in topologies:
            if topology not in TOPOLOGIES:
                raise InvalidParameterError(
                    f"unknown topology family {topology!r}"
                )
        for regime in churn_regimes:
            if regime not in CHURN_REGIMES:
                raise InvalidParameterError(f"unknown churn regime {regime!r}")
        self.topologies = tuple(topologies)
        self.sizes = tuple(int(s) for s in sizes)
        self.churn_regimes = tuple(churn_regimes)
        self.traffic_mixes = tuple(traffic_mixes)
        self.backends = tuple(backends)
        self.events = check_integer("events", events, minimum=0)
        self.estimator = estimator if estimator is not None else EstimatorSpec()
        self.rng = as_rng(seed)

    def _choice(self, options):
        return options[int(self.rng.integers(0, len(options)))]

    def sample_one(self) -> WorldSpec:
        """Draw one world spec (advances the master generator)."""
        spec = WorldSpec(
            topology=self._choice(self.topologies),
            n=int(self._choice(self.sizes)),
            churn=ChurnSpec(regime=self._choice(self.churn_regimes),
                            events=self.events),
            traffic=TrafficSpec(mix=self._choice(self.traffic_mixes)),
            backend=self._choice(self.backends),
            estimator=self.estimator,
            seed=int(self.rng.integers(0, 2**31 - 1)),
        )
        return spec.validate()

    def sample(self, count: int) -> Tuple[WorldSpec, ...]:
        """Draw ``count`` world specs."""
        check_integer("count", count, minimum=0)
        return tuple(self.sample_one() for _ in range(count))
