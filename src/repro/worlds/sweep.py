"""Scenario-sweep runner: execute worlds, record accuracy/latency/ESS rows.

:func:`run_world` executes one :class:`repro.worlds.WorldSpec` against the
serving stack — a synchronous :class:`repro.dynamic.DynamicCFCM`, in
``mode="service"`` the same engine behind
:class:`repro.service.AsyncCFCMService`, or in ``mode="sharded"`` the
partitioned :class:`repro.distributed.ShardedCFCM` — and returns one flat
result row.

Measurement discipline (enforced by ``scripts/check_no_adhoc_timing.py``):
the sweep grows **no timing code of its own**.  Latency percentiles are read
back from the :data:`repro.obs.REGISTRY` histograms the engine and service
already populate (``repro_engine_op_seconds``,
``repro_service_request_seconds``), and pool health comes from the
``repro_pool_*`` gauges that :func:`repro.obs.bind_engine_health` publishes
at collection time.  The runner resets and enables the default registry for
the duration of each world so every row's distributions are per-world, and
restores the previous enabled state afterwards.

Row schema (flat, CSV-compatible; also the ``WORLDS_*.json`` row format):

=========================  ==============================================
field                      meaning
=========================  ==============================================
``world``                  spec name (topology-n-churn-mix-backend-mode-seed)
``topology/n/churn/...``   the spec axes (actual built node count in ``n``)
``faults``                 fault regime (``"none"`` for unfaulted worlds)
``faults_injected``        failures the chaos injector actually fired
``typed_failures``         in-drive reads that failed with a typed ReproError
``events_applied``         journal events the churn driver landed
``exact_value``            engine ``evaluate_exact`` on the final graph
``exact_reference``        from-scratch dense reference on the same graph
``exact_rel_error``        incremental-drift error of the exact path
``forest_value``           pooled forest estimate on the final graph
``forest_rel_error``       sampling error of the pooled estimate
``p50/p95/p99_exact_ms``   ``repro_engine_op_seconds{op="evaluate_exact"}``
``p50/p95/p99_forest_ms``  ``repro_engine_op_seconds{op="evaluate_forest"}``
``p50/p95/p99_request_ms`` service mode only: ``repro_service_request_seconds``
``min_pool_ess``           smallest ``repro_pool_ess`` gauge after collect
``ess_floor_abs``          the pool's configured absolute ESS floor
``ess_ok`` / ``accuracy_ok``  per-row gate verdicts (see :func:`gate_rows`)
=========================  ==============================================
"""

from __future__ import annotations

import asyncio
import csv
import dataclasses
import json
import sys
from collections import Counter
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.centrality.estimators import SamplingConfig
from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.exceptions import ReproError
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import RetryPolicy
from repro.utils.rng import as_rng
from repro.utils.timer import clock
from repro.worlds.churn import churn_summary, make_churn_driver, run_burst
from repro.worlds.spec import FaultSpec, WorldSpec

#: registry histogram the per-op latency percentiles are read from.
LATENCY_SOURCE = "repro_engine_op_seconds"
#: registry histogram service-mode request percentiles are read from.
SERVICE_LATENCY_SOURCE = "repro_service_request_seconds"
#: registry gauge family pool-ESS health is read from.
ESS_SOURCE = "repro_pool_ess"

_PERCENTILES = (50.0, 95.0, 99.0)


def _exact_reference(graph: DynamicGraph, monitor: Sequence[int]) -> float:
    """From-scratch group CFCC on the current graph (weighted-safe).

    ``n / Tr(inv(L_{-S}))`` with the grounded Laplacian built fresh from
    :meth:`DynamicGraph.laplacian_dense`, so the reference is independent of
    every incremental code path the sweep is auditing.
    """
    laplacian = graph.laplacian_dense()
    compact = graph.compact_nodes(monitor)
    keep = np.setdiff1d(np.arange(graph.n), np.asarray(compact, dtype=np.int64))
    grounded = laplacian[np.ix_(keep, keep)]
    trace = float(np.trace(np.linalg.inv(grounded)))
    return graph.n / trace


def _engine_percentiles(registry, histogram: str, prefix: str,
                        **labels) -> Dict[str, float]:
    """p50/p95/p99 (ms) of one registry histogram series, zeros when absent."""
    metric = registry.get(histogram)
    fields: Dict[str, float] = {}
    for q in _PERCENTILES:
        key = f"p{int(q)}_{prefix}_ms"
        fields[key] = (metric.percentile(q, **labels) * 1e3
                       if metric is not None else 0.0)
    return fields


def _pool_health_from_registry(registry) -> Tuple[float, float, float]:
    """(min ESS, its floor, capacity) from the ``repro_pool_*`` gauges.

    Runs the registered collectors first so :func:`bind_engine_health`
    publishes the engine's live pool state; the minimum across pools is the
    conservative health figure a sweep row carries.
    """
    registry.collect()
    ess_gauge = registry.get(ESS_SOURCE)
    floor_gauge = registry.get("repro_pool_ess_floor")
    capacity_gauge = registry.get("repro_pool_capacity")
    if ess_gauge is None:
        return float("nan"), 0.0, 0.0
    series = ess_gauge.series()
    if not series:
        return float("nan"), 0.0, 0.0
    worst_labels, worst = min(series, key=lambda item: item[1])
    floor = (floor_gauge.value(**worst_labels)
             if floor_gauge is not None else 0.0)
    capacity = (capacity_gauge.value(**worst_labels)
                if capacity_gauge is not None else 0.0)
    return float(worst), float(floor), float(capacity)


def _reads(engine: DynamicCFCM, monitor: Sequence[int], count: int,
           results: Dict[str, Optional[float]],
           failures: Optional[List[str]] = None) -> None:
    """One read round: exact always, pooled forest when weights permit.

    With ``failures`` set (faulted worlds) every typed :class:`ReproError`
    is recorded instead of aborting the drive — the chaos contract is that
    a faulted read either answers or fails loudly with a typed error, and
    the sweep counts the latter.  Anything untyped still propagates.
    """
    for _ in range(int(count)):
        try:
            results["exact"] = engine.evaluate_exact(monitor)
            if engine.graph.is_unit_weighted:
                results["forest"] = engine.evaluate_forest(monitor)
        except ReproError as exc:
            if failures is None:
                raise
            failures.append(type(exc).__name__)


def _drive_engine(spec: WorldSpec, engine: DynamicCFCM, driver,
                  monitor: Tuple[int, ...], rng,
                  failures: Optional[List[str]] = None) -> List:
    """Synchronous front end: bursts of churn interleaved with reads."""
    graph = engine.graph
    results: Dict[str, Optional[float]] = {"exact": None, "forest": None}
    _reads(engine, monitor, 1, results, failures)  # warm pool and tracker
    events: List = []
    burst = spec.traffic.burst_size
    remaining = spec.churn.events
    while remaining > 0:
        events.extend(run_burst(driver, graph, min(burst, remaining), rng))
        remaining -= burst
        _reads(engine, monitor, spec.traffic.reads_per_burst, results,
               failures)
    events.extend(driver.finish(graph))
    return events


async def _service_read(service, monitor: Tuple[int, ...],
                        failures: Optional[List[str]],
                        barrier: bool = False) -> None:
    """One awaited read round with the same typed-failure contract."""
    try:
        await service.evaluate(monitor, mode="exact")
        if barrier:
            await service.barrier()
        if service.graph.is_unit_weighted:
            await service.evaluate(monitor, mode="forest")
    except ReproError as exc:
        if failures is None:
            raise
        failures.append(type(exc).__name__)


async def _drive_service(spec: WorldSpec, service, driver,
                         monitor: Tuple[int, ...], rng,
                         failures: Optional[List[str]] = None) -> List:
    """Async front end: churn submitted to the single writer, reads awaited."""
    async with service:
        await _service_read(service, monitor, failures)
        events: List = []
        tickets = []
        burst = spec.traffic.burst_size
        remaining = spec.churn.events
        while remaining > 0:
            for _ in range(min(burst, remaining)):
                # The mutation is drawn on the writer at apply time (same
                # contract as poisson_traffic), so the applied stream depends
                # only on submission order.
                tickets.append(await service.submit(
                    lambda graph: driver.step(graph, rng)))
            remaining -= burst
            for _ in range(spec.traffic.reads_per_burst):
                await _service_read(service, monitor, failures, barrier=True)
        tickets.append(await service.submit(lambda graph: driver.finish(graph)))
        await service.barrier()
        for ticket in tickets:
            await ticket.settled()
            if ticket.exception() is None:
                applied = await ticket.result()
                events.extend(applied)
    return events


def run_world(spec: WorldSpec, verbose: bool = False) -> Dict[str, object]:
    """Execute one world; returns its flat result row.

    The default :data:`repro.obs.REGISTRY` is reset and enabled for the
    duration of the run (so the row's latency/ESS fields are per-world) and
    its previous enabled state is restored afterwards; the registry's value
    state after the call is the world's final snapshot, which callers may
    export with :func:`repro.experiments.report.write_obs_artifacts`.
    """
    spec = spec.validate()
    base = spec.build_graph()
    graph = DynamicGraph(base)
    monitor = tuple(range(spec.traffic.group_size))
    config = SamplingConfig(
        eps=spec.estimator.eps, max_samples=spec.estimator.max_samples,
        min_samples=min(8, spec.estimator.max_samples),
    )
    driver = make_churn_driver(spec.churn.regime, protected=monitor,
                               intensity=spec.churn.intensity)
    rng = as_rng(int(np.random.default_rng(spec.seed).integers(0, 2**62)))

    # Chaos harness: faulted worlds drive churn+reads under a deterministic
    # FaultInjector (exited before the final gated reads) with the drift
    # watchdog probing on every tracker sync, and — in service mode — the
    # default retry policy absorbing transient injected failures.
    faulted = spec.faults.active
    injector = FaultInjector(spec.faults.plan(spec.seed)) if faulted else None
    failures: List[str] = []
    engine_kwargs: Dict[str, object] = (
        {"watchdog_interval": 1} if faulted else {}
    )

    was_enabled = obs.REGISTRY.enabled
    obs.REGISTRY.reset()
    obs.REGISTRY.enable()
    started = clock()
    try:
        if spec.mode == "service":
            from repro.service import AsyncCFCMService

            service = AsyncCFCMService(
                graph, seed=spec.seed, config=config, workers=2,
                backend=spec.backend, pool_size=spec.estimator.pool_size,
                ess_floor=spec.estimator.ess_floor,
                retry_policy=RetryPolicy() if faulted else None,
                **engine_kwargs,
            )
            engine = service.engine
            unbind = obs.bind_engine_health(engine)
            with injector if injector is not None else nullcontext():
                events = asyncio.run(_drive_service(
                    spec, service, driver, monitor, rng,
                    failures if faulted else None))
        elif spec.mode == "sharded":
            from repro.distributed import ShardedCFCM

            # spec.validate() rejects sharded+faults, so no injector here.
            engine = ShardedCFCM(
                graph, shards=spec.shards, seed=spec.seed, config=config,
                pool_size=spec.estimator.pool_size,
                ess_floor=spec.estimator.ess_floor, backend=spec.backend,
            )
            unbind = obs.bind_engine_health(engine)
            events = _drive_engine(spec, engine, driver, monitor, rng, None)
        else:
            engine = DynamicCFCM(
                graph, seed=spec.seed, config=config,
                pool_size=spec.estimator.pool_size,
                ess_floor=spec.estimator.ess_floor, backend=spec.backend,
                **engine_kwargs,
            )
            unbind = obs.bind_engine_health(engine)
            with injector if injector is not None else nullcontext():
                events = _drive_engine(spec, engine, driver, monitor, rng,
                                       failures if faulted else None)

        # Final reads on the settled graph: the accuracy comparison below
        # holds these against a from-scratch dense reference.
        exact_value = engine.evaluate_exact(monitor)
        forest_value = (engine.evaluate_forest(monitor)
                        if graph.is_unit_weighted else None)
        reference = _exact_reference(graph, monitor)

        row: Dict[str, object] = {
            "world": spec.name,
            "topology": spec.topology,
            "n": graph.n,
            "m": graph.m,
            "churn": spec.churn.regime,
            "traffic": spec.traffic.mix,
            "backend": spec.backend,
            "mode": spec.mode,
            "shards": spec.shards if spec.mode == "sharded" else None,
            "seed": spec.seed,
            "faults": spec.faults.regime,
            "faults_injected": (injector.total_injected
                                if injector is not None else 0),
            "typed_failures": len(failures),
            "failure_kinds": dict(sorted(Counter(failures).items())),
            "events_applied": len(events),
            "event_kinds": churn_summary(events),
            "exact_value": float(exact_value),
            "exact_reference": float(reference),
            "exact_rel_error": abs(exact_value - reference) / abs(reference),
            "forest_value": (float(forest_value)
                             if forest_value is not None else None),
            "forest_rel_error": (abs(forest_value - reference) / abs(reference)
                                 if forest_value is not None else None),
            "forest_tolerance": spec.estimator.forest_tolerance,
            "exact_tolerance": spec.estimator.exact_tolerance,
            "latency_source": LATENCY_SOURCE,
        }
        row.update(_engine_percentiles(obs.REGISTRY, LATENCY_SOURCE, "exact",
                                       op="evaluate_exact"))
        row.update(_engine_percentiles(obs.REGISTRY, LATENCY_SOURCE, "forest",
                                       op="evaluate_forest"))
        if spec.mode == "service":
            row.update(_engine_percentiles(obs.REGISTRY,
                                           SERVICE_LATENCY_SOURCE, "request",
                                           kind="evaluate"))
        min_ess, floor, capacity = _pool_health_from_registry(obs.REGISTRY)
        row["min_pool_ess"] = min_ess
        row["ess_floor_abs"] = floor
        row["pool_capacity"] = capacity
        stats = engine.stats
        row.update({
            "ess_topups": stats.ess_topups,
            "forests_dropped": stats.forests_dropped,
            "forests_reweighted": stats.forests_reweighted,
            "forests_resampled": stats.forests_resampled,
            "pools_flushed": stats.pools_flushed,
            "batched_events": stats.batched_events,
        })
        row["wall_seconds"] = clock() - started
        unbind()
        if spec.mode == "sharded":
            engine.close()
    finally:
        if not was_enabled:
            obs.REGISTRY.disable()
    _apply_row_gates(row)
    if verbose:
        chaos = (f" injected={row['faults_injected']}"
                 f" typed_failures={row['typed_failures']}"
                 if faulted else "")
        print(f"[worlds] {row['world']}: "
              f"forest_err={_fmt(row['forest_rel_error'])} "
              f"exact_err={_fmt(row['exact_rel_error'])} "
              f"min_ess={_fmt(row['min_pool_ess'])} "
              f"p95_forest={_fmt(row['p95_forest_ms'])}ms{chaos}")
    return row


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def _apply_row_gates(row: Dict[str, object]) -> None:
    """Stamp the per-row ``accuracy_ok`` / ``ess_ok`` verdicts.

    Accuracy: the exact path must sit within ``exact_tolerance`` of the
    from-scratch reference (incremental drift), and the pooled forest
    estimate within ``forest_tolerance`` (sampling error at the configured
    pool size).  ESS: the worst pool must retain at least half of its
    configured absolute floor after the final top-up — a pool that cannot
    hold that much effective mass under the world's churn is degraded.
    """
    exact_ok = row["exact_rel_error"] <= row["exact_tolerance"]
    forest_ok = (row["forest_rel_error"] is None
                 or row["forest_rel_error"] <= row["forest_tolerance"])
    row["accuracy_ok"] = bool(exact_ok and forest_ok)
    min_ess = row["min_pool_ess"]
    gate = 0.5 * float(row["ess_floor_abs"] or 0.0)
    row["ess_gate"] = gate
    row["ess_ok"] = bool(not np.isnan(min_ess) and min_ess >= gate)


def sweep(specs: Sequence[WorldSpec], verbose: bool = False
          ) -> List[Dict[str, object]]:
    """Run every spec through :func:`run_world`; returns the result rows."""
    return [run_world(spec, verbose=verbose) for spec in specs]


def gate_rows(rows: Sequence[Dict[str, object]]) -> List[str]:
    """Human-readable failures for every row that missed a gate."""
    failures: List[str] = []
    for row in rows:
        if not row.get("accuracy_ok", False):
            failures.append(
                f"{row['world']}: accuracy gate failed "
                f"(exact_rel_error={_fmt(row['exact_rel_error'])} vs "
                f"{row['exact_tolerance']:g}, "
                f"forest_rel_error={_fmt(row['forest_rel_error'])} vs "
                f"{row['forest_tolerance']:g})"
            )
        if not row.get("ess_ok", False):
            failures.append(
                f"{row['world']}: ESS gate failed (min_pool_ess="
                f"{_fmt(row['min_pool_ess'])} < gate {_fmt(row['ess_gate'])})"
            )
    return failures


def smoke_specs() -> List[WorldSpec]:
    """The canonical CI smoke cross: 8 worlds over topology x churn x backend.

    Shared by ``python -m repro.experiments worlds --smoke`` and
    ``benchmarks/bench_worlds.py`` so the gated configuration is defined in
    exactly one place.  The cross touches every churn regime, both concrete
    backends, all three execution modes (including a sharded world so the
    distributed Schur-stitch path runs on every commit) and the
    popping-hostile ring family (which keeps the lockstep kernel's
    scalar-finish path under regression).  Sizes are small (48–96 nodes) so
    the whole sweep stays CI-cheap.
    """
    from repro.worlds.spec import ChurnSpec, EstimatorSpec, TrafficSpec

    estimator = EstimatorSpec(pool_size=16, max_samples=32,
                              forest_tolerance=0.6)
    return [
        WorldSpec(topology="power_law", n=72,
                  churn=ChurnSpec(regime="bursty_joins", events=16),
                  traffic=TrafficSpec(mix="read_heavy"),
                  backend="dense", estimator=estimator, seed=11),
        WorldSpec(topology="lattice", n=64,
                  churn=ChurnSpec(regime="adversarial_deletions", events=12),
                  traffic=TrafficSpec(mix="mixed"),
                  backend="dense", estimator=estimator, seed=12),
        WorldSpec(topology="small_world", n=72,
                  churn=ChurnSpec(regime="reweight_storm", events=16),
                  traffic=TrafficSpec(mix="mixed"),
                  backend="sparse", estimator=estimator, seed=13),
        WorldSpec(topology="expander", n=60,
                  churn=ChurnSpec(regime="reweight_storm", events=16,
                                  intensity=1.5),
                  traffic=TrafficSpec(mix="write_heavy"),
                  backend="dense", estimator=estimator, seed=14),
        WorldSpec(topology="planted_community", n=80,
                  churn=ChurnSpec(regime="adversarial_deletions", events=12),
                  traffic=TrafficSpec(mix="read_heavy"),
                  backend="sparse", estimator=estimator, seed=15),
        WorldSpec(topology="power_law", n=72,
                  churn=ChurnSpec(regime="mixed", events=16),
                  traffic=TrafficSpec(mix="mixed"),
                  backend="sparse", estimator=estimator, mode="service",
                  seed=16),
        WorldSpec(topology="ring", n=48,
                  churn=ChurnSpec(regime="none", events=0),
                  traffic=TrafficSpec(mix="read_heavy"),
                  backend="auto", estimator=estimator, seed=17),
        # Sharded world: bursty joins force structural re-partitions while
        # keeping weights at unity, so the merged-ESS forest path, the Schur
        # stitch and the rebuild path all run under the smoke gates.
        WorldSpec(topology="lattice", n=64,
                  churn=ChurnSpec(regime="bursty_joins", events=12),
                  traffic=TrafficSpec(mix="mixed"),
                  backend="sparse", estimator=estimator, mode="sharded",
                  shards=3, seed=18),
    ]


def faulted_smoke_specs() -> List[WorldSpec]:
    """The CI chaos-smoke cross: the canonical smoke worlds under faults.

    Each smoke world is re-run with a fault regime overlaid (the axes are
    otherwise identical, so any behavioural delta is attributable to the
    injected failures).  Regimes are matched to what each world can
    exercise: ``numerical_drift`` needs a dense tracked inverse to corrupt,
    ``worker_crash`` needs the service front end, and ``solver_flaky`` /
    ``chaos`` bite everywhere.  Sharded worlds are skipped — the distributed
    engine has no chaos seams yet and its specs reject fault regimes.  Gated
    by ``python -m repro.experiments worlds --smoke --faults``.
    """
    regimes = ("solver_flaky", "numerical_drift", "solver_flaky",
               "numerical_drift", "solver_flaky", "worker_crash", "chaos")
    faultable = [spec for spec in smoke_specs() if spec.mode != "sharded"]
    return [
        # Drift worlds roll only on tracker syncs (far fewer draws than the
        # solver seams see), so they get a higher per-call rate to guarantee
        # the corruption/watchdog-heal path actually runs in CI.
        dataclasses.replace(spec, faults=FaultSpec(
            regime=regime, rate=0.75 if regime == "numerical_drift" else 0.25))
        for spec, regime in zip(faultable, regimes)
    ]


# ----------------------------------------------------------------- artifacts
#: column order of the CSV artifact (subset of the row schema, flat scalars).
CSV_COLUMNS: Tuple[str, ...] = (
    "world", "topology", "n", "m", "churn", "traffic", "backend", "mode",
    "shards", "seed", "faults", "faults_injected", "typed_failures",
    "events_applied", "exact_rel_error", "forest_rel_error",
    "p50_exact_ms", "p95_exact_ms", "p99_exact_ms",
    "p50_forest_ms", "p95_forest_ms", "p99_forest_ms",
    "min_pool_ess", "ess_floor_abs", "pool_capacity",
    "ess_topups", "forests_dropped", "forests_reweighted",
    "accuracy_ok", "ess_ok", "wall_seconds",
)


def write_worlds_artifacts(rows: Sequence[Dict[str, object]],
                           json_path: Optional[str] = None,
                           csv_path: Optional[str] = None,
                           label: str = "worlds") -> None:
    """Write the sweep table as ``WORLDS_*.json`` (+ optional CSV).

    The JSON envelope matches the ``BENCH_*.json`` perf-trajectory artifacts
    (``benchmark`` / ``python`` / ``rows``) so the CI upload and any
    downstream trajectory tooling treat both families uniformly.
    """
    if json_path is not None:
        payload = {
            "benchmark": label,
            "python": sys.version.split()[0],
            "rows": list(rows),
        }
        Path(json_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str),
            encoding="utf-8",
        )
        print(f"[{label}] wrote {json_path}")
    if csv_path is not None:
        with open(csv_path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(CSV_COLUMNS),
                                    extrasaction="ignore")
            writer.writeheader()
            for row in rows:
                writer.writerow({key: row.get(key) for key in CSV_COLUMNS})
        print(f"[{label}] wrote {csv_path}")
