"""Churn drivers: the mutation side of a world, layered on the workload module.

Each driver turns a :class:`repro.worlds.spec.ChurnSpec` regime into a stream
of valid journal events against a :class:`repro.dynamic.DynamicGraph`.  The
single-event :meth:`ChurnDriver.step` API exists so the same driver can feed
both front ends: the synchronous sweep applies steps directly, while the
service-mode sweep submits each step as a writer-side mutation callable to
:class:`repro.service.AsyncCFCMService` (the mutation is drawn at apply
time, exactly like :func:`repro.dynamic.poisson_traffic` does).

The regimes are the three documented stress patterns plus a baseline:

* ``bursty_joins`` — node insertions only: every stored forest is extended
  by a leaf attachment, insertions never flush, so pools should survive
  with high ESS.  This is the friendly regime.
* ``adversarial_deletions`` — hub-targeted edge deletions: the driver ranks
  nodes by degree and deletes edges incident to the hottest hubs (retrying
  bridges), which is close to a worst case for forest pools because hub
  edges carry a large fraction of the forest distribution's mass — each
  deletion kills many stored forests at once and drives ESS to the floor.
* ``reweight_storm`` — log-uniform weight perturbations on random edges
  (via :func:`repro.dynamic.apply_random_reweight`), followed by a restore
  phase (:meth:`ChurnDriver.finish`) that puts every perturbed edge back to
  weight 1.  Mid-storm the graph is weighted (exact evaluations only);
  after the storm passes the pools' exact density-ratio round trips must
  have cancelled, which the sweep's forest-accuracy gate checks.
* ``mixed`` — the bursty mixed edge/node stream of
  :func:`repro.dynamic.random_churn_journal` (the historical benchmark
  regime).
* ``none`` — no mutations (static-world baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dynamic.graph import DynamicGraph, GraphUpdate
from repro.dynamic.workload import (
    apply_random_node_event,
    apply_random_reweight,
    apply_random_update,
)
from repro.exceptions import DisconnectedGraphError, InvalidParameterError
from repro.utils.rng import RandomState, as_rng


class ChurnDriver:
    """Base driver: one valid journal event per :meth:`step` call.

    ``protected`` nodes (the sweep's monitored group) are never removed by
    any regime, so monitoring evaluations stay well-defined for the whole
    world.  :meth:`finish` runs once after the mutation budget is spent;
    only the reweight storm uses it (to restore perturbed weights).
    """

    regime = "none"

    def __init__(self, protected: Sequence[int] = (),
                 intensity: float = 1.0):
        self.protected = tuple(int(v) for v in protected)
        if intensity <= 0.0:
            raise InvalidParameterError(
                f"churn intensity must be positive, got {intensity}"
            )
        self.intensity = float(intensity)

    def step(self, graph: DynamicGraph,
             rng: RandomState = None) -> Optional[GraphUpdate]:
        """Apply one event; ``None`` when no valid mutation exists."""
        return None

    def finish(self, graph: DynamicGraph) -> List[GraphUpdate]:
        """Post-budget cleanup events (default: none)."""
        return []


class BurstyJoins(ChurnDriver):
    """Node insertions only: each new node attaches to 1..ceil(3*intensity)
    random existing nodes with unit weights."""

    regime = "bursty_joins"

    def step(self, graph: DynamicGraph,
             rng: RandomState = None) -> Optional[GraphUpdate]:
        rng = as_rng(rng)
        attachments = max(1, int(round(3 * self.intensity)))
        return apply_random_node_event(graph, rng, add_probability=1.0,
                                       max_attachments=attachments,
                                       protected=self.protected)


class AdversarialDeletions(ChurnDriver):
    """Hub-targeted edge deletions (the pool-hostile regime).

    Each step samples a node from the top-degree band (band width shrinks
    as ``intensity`` grows, i.e. higher intensity is more sharply
    hub-focused), then tries to delete one of its incident edges, preferring
    the neighbour with the highest degree; deletions that would disconnect
    the graph fall through to the next neighbour, then to the next hub, and
    finally to a uniform random deletion.
    """

    regime = "adversarial_deletions"

    def step(self, graph: DynamicGraph,
             rng: RandomState = None) -> Optional[GraphUpdate]:
        rng = as_rng(rng)
        adjacency: Dict[int, List[int]] = {}
        for u, v in graph.edges():
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        if not adjacency:
            return None
        by_degree = sorted(adjacency, key=lambda node: -len(adjacency[node]))
        band = max(1, int(round(len(by_degree) / (4.0 * self.intensity))))
        hubs = list(by_degree[:band])
        rng.shuffle(hubs)
        for hub in hubs[:4]:
            neighbours = sorted(adjacency[hub],
                                key=lambda node: -len(adjacency[node]))
            for neighbour in neighbours:
                try:
                    return graph.remove_edge(hub, neighbour)
                except DisconnectedGraphError:
                    continue
        # Every hub edge is a bridge (ring-like neighbourhoods): fall back
        # to any valid deletion so the budget is still spent.
        return apply_random_update(graph, rng, add_probability=0.0)


class ReweightStorm(ChurnDriver):
    """Log-uniform weight perturbations, restored when the storm passes.

    ``intensity`` scales the log-range: factors are drawn from
    ``exp(U(-intensity*log 4, +intensity*log 4))``.  :meth:`finish` walks
    every perturbed edge that still exists and resets it to weight 1, so a
    completed storm leaves the graph unit-weighted and each surviving
    forest's importance weight must have cancelled back to its pre-storm
    value (an exact property of the density-ratio reweighting law).
    """

    regime = "reweight_storm"

    def __init__(self, protected: Sequence[int] = (), intensity: float = 1.0):
        super().__init__(protected, intensity)
        self._perturbed: Set[Tuple[int, int]] = set()

    def step(self, graph: DynamicGraph,
             rng: RandomState = None) -> Optional[GraphUpdate]:
        rng = as_rng(rng)
        spread = 4.0 ** self.intensity
        event = apply_random_reweight(graph, rng, low=1.0 / spread, high=spread)
        if event is not None:
            key = (min(event.u, event.v), max(event.u, event.v))
            self._perturbed.add(key)
        return event

    def finish(self, graph: DynamicGraph) -> List[GraphUpdate]:
        events: List[GraphUpdate] = []
        for u, v in sorted(self._perturbed):
            if not (graph.has_node(u) and graph.has_node(v)
                    and graph.has_edge(u, v)):
                continue
            event = graph.update_weight(u, v, 1.0)
            if event is not None:
                events.append(event)
        self._perturbed.clear()
        return events


class MixedChurn(ChurnDriver):
    """The historical bursty mixed regime: edges mostly, some node churn."""

    regime = "mixed"

    def step(self, graph: DynamicGraph,
             rng: RandomState = None) -> Optional[GraphUpdate]:
        rng = as_rng(rng)
        node_probability = min(0.2 * self.intensity, 0.9)
        if float(rng.random()) < node_probability:
            return apply_random_node_event(graph, rng,
                                           protected=self.protected)
        return apply_random_update(graph, rng)


_DRIVERS = {
    driver.regime: driver
    for driver in (ChurnDriver, BurstyJoins, AdversarialDeletions,
                   ReweightStorm, MixedChurn)
}


def make_churn_driver(regime: str, protected: Sequence[int] = (),
                      intensity: float = 1.0) -> ChurnDriver:
    """Instantiate the driver for a :class:`ChurnSpec` regime name."""
    try:
        cls = _DRIVERS[str(regime)]
    except KeyError:
        raise InvalidParameterError(
            f"unknown churn regime {regime!r} (expected one of "
            f"{sorted(_DRIVERS)})"
        ) from None
    return cls(protected=protected, intensity=intensity)


def run_burst(driver: ChurnDriver, graph: DynamicGraph, count: int,
              rng: RandomState = None) -> List[GraphUpdate]:
    """Apply one burst of up to ``count`` events; returns those applied."""
    rng = as_rng(rng)
    events: List[GraphUpdate] = []
    for _ in range(int(count)):
        event = driver.step(graph, rng)
        if event is not None:
            events.append(event)
    return events


def churn_summary(events: Sequence[GraphUpdate]) -> Dict[str, int]:
    """Event-kind histogram of an applied journal (for sweep rows)."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))


__all__ = [
    "AdversarialDeletions",
    "BurstyJoins",
    "ChurnDriver",
    "MixedChurn",
    "ReweightStorm",
    "churn_summary",
    "make_churn_driver",
    "run_burst",
]
