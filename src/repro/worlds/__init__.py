"""GraphWorld-style scenario harness for the dynamic CFCM serving stack.

A *world* is one fully parameterised serving scenario — topology family x
size x churn regime x traffic mix x resistance backend x estimator config —
and the harness maps the engine's behaviour across many of them instead of
benchmarking a handful of hand-picked graphs:

* :mod:`repro.worlds.spec` — declarative :class:`WorldSpec` records (JSON
  round-trippable, seeded, buildable into concrete graphs) and the
  :class:`WorldSampler` that draws reproducible random worlds over
  configurable axes;
* :mod:`repro.worlds.churn` — :class:`ChurnDriver` regimes layered on
  :mod:`repro.dynamic.workload`: bursty node joins, hub-targeted
  adversarial deletions, log-uniform reweight storms with restore, and the
  historical mixed stream;
* :mod:`repro.worlds.sweep` — the :func:`run_world` / :func:`sweep`
  executor recording accuracy-vs-exact, registry-sourced latency
  percentiles and pool-ESS health per world, plus gates
  (:func:`gate_rows`) and ``WORLDS_*.json`` / CSV artifact writers.

Entry points: ``python -m repro.experiments worlds [--smoke]``,
``benchmarks/bench_worlds.py`` and ``examples/worlds_envelope.py``; the
docs live in ``docs/worlds.md``.
"""

from repro.worlds.spec import (
    BACKENDS,
    CHURN_REGIMES,
    MODES,
    TOPOLOGIES,
    TRAFFIC_MIXES,
    ChurnSpec,
    EstimatorSpec,
    FaultSpec,
    TrafficSpec,
    WorldSampler,
    WorldSpec,
)
from repro.worlds.churn import (
    AdversarialDeletions,
    BurstyJoins,
    ChurnDriver,
    MixedChurn,
    ReweightStorm,
    churn_summary,
    make_churn_driver,
    run_burst,
)
from repro.worlds.sweep import (
    ESS_SOURCE,
    LATENCY_SOURCE,
    SERVICE_LATENCY_SOURCE,
    faulted_smoke_specs,
    gate_rows,
    run_world,
    smoke_specs,
    sweep,
    write_worlds_artifacts,
)

__all__ = [
    "BACKENDS",
    "CHURN_REGIMES",
    "MODES",
    "TOPOLOGIES",
    "TRAFFIC_MIXES",
    "ChurnSpec",
    "EstimatorSpec",
    "FaultSpec",
    "TrafficSpec",
    "WorldSampler",
    "WorldSpec",
    "AdversarialDeletions",
    "BurstyJoins",
    "ChurnDriver",
    "MixedChurn",
    "ReweightStorm",
    "churn_summary",
    "make_churn_driver",
    "run_burst",
    "ESS_SOURCE",
    "LATENCY_SOURCE",
    "SERVICE_LATENCY_SOURCE",
    "faulted_smoke_specs",
    "gate_rows",
    "run_world",
    "smoke_specs",
    "sweep",
    "write_worlds_artifacts",
]
