"""Exception hierarchy for the :mod:`repro` package.

Every error intentionally raised by the library derives from
:class:`ReproError`, so downstream users can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for malformed or unsupported graph inputs."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph but the input is not."""


class InvalidNodeError(GraphError):
    """Raised when a node identifier is outside ``0 .. n - 1`` or otherwise invalid."""


class InvalidParameterError(ReproError):
    """Raised when an algorithm parameter is out of its valid range."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver or sampler fails to reach its target accuracy.

    Carries structured fields so failover policy can branch on *how* the
    solve failed instead of parsing the message:

    ``iterations``
        Iteration count reported by the solver (``None`` if unknown).
    ``residual``
        Final residual norm at the point of failure (``None`` if unknown).
    ``rtol``
        The relative tolerance the solve was asked for.
    """

    def __init__(self, message: str, *, iterations=None, residual=None,
                 rtol=None):
        super().__init__(message)
        self.iterations = None if iterations is None else int(iterations)
        self.residual = None if residual is None else float(residual)
        self.rtol = None if rtol is None else float(rtol)


class NumericalDriftError(ReproError):
    """Raised when a tracked factorization has drifted past its residual threshold.

    ``residual`` is the observed probe residual ``max|L_{-S}(B^{-1}e) - e|``
    and ``threshold`` the configured limit it exceeded.
    """

    def __init__(self, message: str, *, residual=None, threshold=None):
        super().__init__(message)
        self.residual = None if residual is None else float(residual)
        self.threshold = None if threshold is None else float(threshold)


class BackendUnavailableError(ReproError):
    """Raised when every resistance backend (including failover) has failed."""


class InjectedFaultError(ReproError):
    """Raised by the fault-injection framework at an instrumented seam."""


class NotComputedError(ReproError):
    """Raised when a result attribute is accessed before the algorithm has been run."""


class ServiceError(ReproError):
    """Raised for lifecycle misuse of the asynchronous query service."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that has been stopped."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's bounded update queue is full (backpressure)."""


class ServiceDegradedError(ServiceError):
    """Raised when the circuit breaker sheds a request under overload."""
