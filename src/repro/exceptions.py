"""Exception hierarchy for the :mod:`repro` package.

Every error intentionally raised by the library derives from
:class:`ReproError`, so downstream users can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for malformed or unsupported graph inputs."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph but the input is not."""


class InvalidNodeError(GraphError):
    """Raised when a node identifier is outside ``0 .. n - 1`` or otherwise invalid."""


class InvalidParameterError(ReproError):
    """Raised when an algorithm parameter is out of its valid range."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver or sampler fails to reach its target accuracy."""


class NotComputedError(ReproError):
    """Raised when a result attribute is accessed before the algorithm has been run."""


class ServiceError(ReproError):
    """Raised for lifecycle misuse of the asynchronous query service."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that has been stopped."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's bounded update queue is full (backpressure)."""
