#!/usr/bin/env python
"""Representative subset selection for a 3-D point cloud.

Third motivating application from the paper's introduction: point-cloud
sampling selects a small subset of points that preserves the geometry for
downstream reconstruction.  Building a k-nearest-neighbour graph over the
points and maximising the current-flow closeness of the selected subset
favours points that are electrically close to everything else — i.e. spread
over the whole shape rather than clustered.

The script samples a noisy torus, selects representatives with SchurCFCM and
with naive baselines, and scores each subset by the mean distance from every
point to its nearest representative (lower = better coverage).

Run with::

    python examples/point_cloud_sampling.py [--points 400] [--samples 12]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.graph.builders import from_edge_list
from repro.graph.traversal import is_connected, largest_connected_component


def torus_cloud(count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a noisy torus with major radius 1 and minor radius 0.35."""
    theta = rng.uniform(0, 2 * np.pi, count)
    phi = rng.uniform(0, 2 * np.pi, count)
    r_major, r_minor = 1.0, 0.35
    x = (r_major + r_minor * np.cos(phi)) * np.cos(theta)
    y = (r_major + r_minor * np.cos(phi)) * np.sin(theta)
    z = r_minor * np.sin(phi)
    points = np.stack([x, y, z], axis=1)
    return points + rng.normal(scale=0.01, size=points.shape)


def knn_graph(points: np.ndarray, k: int):
    """Symmetric k-nearest-neighbour graph over the points."""
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt(np.sum(diff * diff, axis=2))
    np.fill_diagonal(distances, np.inf)
    edges = set()
    for i in range(points.shape[0]):
        for j in np.argsort(distances[i])[:k]:
            edges.add((min(i, int(j)), max(i, int(j))))
    graph = from_edge_list(sorted(edges), n=points.shape[0])
    if not is_connected(graph):
        graph, keep = largest_connected_component(graph)
        return graph, keep
    return graph, np.arange(points.shape[0])


def coverage_error(points: np.ndarray, representatives) -> float:
    """Mean distance from each point to its nearest representative."""
    reps = points[list(representatives)]
    diff = points[:, None, :] - reps[None, :, :]
    distances = np.sqrt(np.sum(diff * diff, axis=2))
    return float(distances.min(axis=1).mean())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=400, help="cloud size")
    parser.add_argument("--samples", type=int, default=12,
                        help="number of representative points k")
    parser.add_argument("--neighbours", type=int, default=6, help="k-NN connectivity")
    parser.add_argument("--seed", type=int, default=5, help="random seed")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    points = torus_cloud(args.points, rng)
    graph, keep = knn_graph(points, args.neighbours)
    points = points[keep]
    print(f"Point cloud: {points.shape[0]} points, k-NN graph with {graph.m} edges")
    print(f"Selecting {args.samples} representatives\n")

    selections = {
        "SchurCFCM": repro.maximize_cfcc(graph, args.samples, method="schur",
                                         eps=0.25, seed=args.seed).group,
        "Degree": repro.degree_group(graph, args.samples).group,
        "Random": sorted(int(v) for v in rng.choice(graph.n, size=args.samples,
                                                    replace=False)),
    }

    print(f"{'strategy':<12} {'group CFCC':>11} {'coverage error':>15}")
    for label, group in selections.items():
        value = repro.group_cfcc(graph, group)
        error = coverage_error(points, group)
        print(f"{label:<12} {value:>11.4f} {error:>15.4f}")
    print("\nThe CFCM selection should achieve the lowest coverage error: high")
    print("group closeness forces the representatives to spread over the torus.")


if __name__ == "__main__":
    main()
