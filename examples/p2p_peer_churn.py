#!/usr/bin/env python
"""P2P peer churn: keep replica placement fresh as peers join and leave.

A peer-to-peer overlay is modelled as a scale-free graph.  Resource replicas
are placed by maximising group current-flow closeness (replicas electrically
close to every peer serve requests over short, redundant paths).  Peers then
churn — join with a few connections, leave with all of them — in bursts,
interleaved with link churn.  The :class:`repro.dynamic.DynamicCFCM` engine
absorbs each burst as a single rank-``t`` Woodbury update of the tracked
grounded inverse (plus row grow/downdates for the node events) instead of
re-factorising, and replicas hosted on departed peers are re-placed.

Run with::

    python examples/p2p_peer_churn.py [--peers 150] [--replicas 4] [--bursts 6]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.dynamic import DynamicCFCM, DynamicGraph, random_churn_journal
from repro.graph import generators


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=150, help="initial peers")
    parser.add_argument("--replicas", type=int, default=4, help="replicas to place")
    parser.add_argument("--bursts", type=int, default=6, help="churn bursts")
    parser.add_argument("--burst-size", type=int, default=16,
                        help="events per churn burst")
    parser.add_argument("--node-churn", type=float, default=0.25,
                        help="fraction of events that are peer joins/leaves")
    parser.add_argument("--eps", type=float, default=0.35, help="error parameter")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    overlay = DynamicGraph(generators.barabasi_albert(args.peers, 3,
                                                      seed=args.seed))
    print(f"Overlay: {overlay.n} peers, {overlay.m} links")

    engine = DynamicCFCM(overlay, seed=args.seed)
    replicas = engine.query(args.replicas, method="exact", eps=args.eps).group
    print(f"Initial replicas (group CFCC "
          f"{engine.evaluate_exact(replicas):.4f}): {replicas}\n")

    rng = np.random.default_rng(args.seed + 1)
    print(f"{'burst':<7} {'events':>6} {'peers':>6} {'CFCC':>8}  "
          f"{'replicas':<26} re-placed")
    for burst in range(args.bursts):
        events = random_churn_journal(overlay, args.burst_size, rng,
                                      node_probability=args.node_churn)
        # Replicas hosted on departed peers are gone; re-place if any were.
        surviving = [peer for peer in replicas if overlay.has_node(peer)]
        replaced = len(surviving) < len(replicas)
        if replaced:
            replicas = engine.query(args.replicas, method="exact",
                                    eps=args.eps).group
        else:
            replicas = surviving
        value = engine.evaluate_exact(replicas)
        print(f"{burst:<7} {len(events):>6} {overlay.n:>6} {value:>8.4f}  "
              f"{str(replicas):<26} {'yes' if replaced else 'no'}")

    print(f"\nEngine statistics after {args.bursts} bursts:")
    for key, value in engine.stats.as_dict().items():
        print(f"  {key:<20} {value}")
    print(f"  journal retained     {len(overlay.journal())} events "
          f"(floor {overlay.journal_floor} of {overlay.version})")
    print("\nEach churn burst was folded into the tracked grounded inverse as")
    print("one rank-t Woodbury batch; peer joins grew a row, departures")
    print("downdated one, and the engine compacted the journal prefix every")
    print("consumer had already replayed.")


if __name__ == "__main__":
    main()
