#!/usr/bin/env python
"""Sensor placement in a wireless mesh / geometric network.

One of the motivating applications of the paper: choose k sensor locations
in a wireless network so that every other node is electrically "close" to
some sensor — equivalently, maximise the current-flow closeness of the
sensor group.  The script compares CFCM-selected placements against naive
strategies on a random geometric graph (the standard model for wireless
deployments) and reports, for each placement, the group CFCC and the average
resistance distance from non-sensor nodes to the sensor set.

Run with::

    python examples/sensor_placement.py [--nodes 300] [--sensors 6]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.graph import generators


def average_resistance_to_sensors(graph, sensors) -> float:
    """Mean effective resistance from every node to the grounded sensor set."""
    total = repro.total_group_resistance(graph, sensors)
    return total / graph.n


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300, help="network size")
    parser.add_argument("--sensors", type=int, default=6, help="number of sensors k")
    parser.add_argument("--radius", type=float, default=0.12, help="radio range")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    args = parser.parse_args()

    graph = generators.random_geometric(args.nodes, args.radius, seed=args.seed)
    print(f"Wireless mesh: {graph.n} reachable nodes, {graph.m} links")
    print(f"Placing k = {args.sensors} sensors\n")

    rng = np.random.default_rng(args.seed)
    placements = {}

    schur = repro.maximize_cfcc(graph, args.sensors, method="schur", eps=0.25,
                                seed=args.seed)
    placements["SchurCFCM"] = schur.group
    placements["Degree heuristic"] = repro.degree_group(graph, args.sensors).group
    placements["Top single-node CFCC"] = repro.top_cfcc_group(graph, args.sensors).group
    placements["Random placement"] = sorted(
        int(v) for v in rng.choice(graph.n, size=args.sensors, replace=False)
    )

    print(f"{'placement':<22} {'group CFCC':>11} {'avg resistance':>15}")
    for label, sensors in placements.items():
        value = repro.group_cfcc(graph, sensors)
        avg_resistance = average_resistance_to_sensors(graph, sensors)
        print(f"{label:<22} {value:>11.4f} {avg_resistance:>15.4f}")
    print("\nHigher CFCC = lower total resistance = every node is electrically")
    print("close to a sensor; the CFCM placement should dominate the baselines.")


if __name__ == "__main__":
    main()
