#!/usr/bin/env python
"""Async traffic replay: serve concurrent CFCM queries during update bursts.

A monitoring deployment watches the group current-flow closeness of a fixed
set of probe nodes in a mutating network.  Traffic arrives as a Poisson
stream: most arrivals are reads (evaluate the probe group, or re-select the
best group), the rest are topology updates (link churn, optionally node
churn).  :class:`repro.service.AsyncCFCMService` serves the reads
concurrently while a single writer coalesces the update backlog into
rank-``t`` Woodbury batches — and every response is tagged with the journal
version it was computed at, so the replay below can *prove* the answers
match a fresh synchronous engine at the same version.

Run with::

    python examples/async_traffic_replay.py [--nodes 200] [--ops 240]
        [--rate 400] [--query-fraction 0.6] [--workers 2]
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.dynamic import DynamicCFCM, poisson_traffic, replay_events
from repro.graph import generators
from repro.service import AsyncCFCMService


async def drive(args, base, probes):
    async with AsyncCFCMService(base, seed=args.seed, workers=args.workers) as service:
        started = time.perf_counter()
        report = await poisson_traffic(
            service,
            args.ops,
            rng=args.seed,
            rate=args.rate,
            query_fraction=args.query_fraction,
            node_probability=args.node_churn,
            monitor_group=probes,
            k=len(probes),
            method="exact",
            eps=args.eps,
        )
        wall = time.perf_counter() - started
        final = await service.evaluate(probes, mode="exact")
        return report, final, wall, service.stats.as_dict()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=200, help="network size")
    parser.add_argument("--probes", type=int, default=3, help="monitored group size")
    parser.add_argument("--ops", type=int, default=240, help="Poisson arrivals")
    parser.add_argument("--rate", type=float, default=400.0, help="arrivals per second")
    parser.add_argument(
        "--query-fraction", type=float, default=0.6, help="read fraction of arrivals"
    )
    parser.add_argument(
        "--node-churn", type=float, default=0.15, help="node-event fraction of updates"
    )
    parser.add_argument("--workers", type=int, default=2, help="service worker threads")
    parser.add_argument("--eps", type=float, default=0.35, help="error parameter")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    base = generators.barabasi_albert(args.nodes, 3, seed=args.seed)
    probes = tuple(range(args.probes))
    print(f"Async CFCM service over {base.n} nodes, {base.m} edges")
    print(f"Monitored probe group: {list(probes)}\n")

    report, final, wall, stats = asyncio.run(drive(args, base, probes))

    lat = report.latency_percentiles("query")
    completed = report.queries + report.evaluations + report.updates_applied
    print(f"Traffic: {report.queries} selections, {report.evaluations} evaluations,")
    print(
        f"         {report.updates_applied} updates applied, "
        f"{report.updates_failed} failed, {report.updates_rejected} rejected"
    )
    print(f"Wall time {wall:.3f}s -> {completed / wall:.0f} ops/s")
    print(
        f"Query latency p50 {lat['p50'] * 1e3:.2f}ms  "
        f"p95 {lat['p95'] * 1e3:.2f}ms  p99 {lat['p99'] * 1e3:.2f}ms"
    )
    print(
        f"Writer coalescing: {stats['update_batches']} batches, "
        f"mean batch size {stats['mean_batch_size']:.1f}\n"
    )

    # Replay the recorded journal into a fresh synchronous engine and check
    # the final async answer at the same version.
    replayed = replay_events(base, report.events, upto_version=final.version)
    expected = DynamicCFCM(replayed, seed=0).evaluate_exact(probes)
    drift = abs(float(final.result) - expected)
    print(f"Journal replay: {len(report.events)} events -> version {final.version}")
    print(
        f"Final probe CFCC {float(final.result):.6f} vs fresh synchronous "
        f"engine {expected:.6f} (drift {drift:.2e})"
    )
    verdict = "MATCH" if drift <= 1e-8 * max(1.0, abs(expected)) else "MISMATCH"
    print(f"Equivalence at version {final.version}: {verdict}")


if __name__ == "__main__":
    main()
