"""Map the serving envelope: a 12-world sweep with annotated breakpoints.

Runs a fixed cross of worlds (topology family x churn regime x backend x
mode) through :func:`repro.worlds.sweep` and prints the
accuracy/latency/ESS envelope table, then annotates the two degradation
regimes documented in ``docs/worlds.md``:

1. **Adversarial deletions at high churn** — deletions are the only churn
   kind that irrecoverably destroys pooled forest mass (``forests_dropped``
   stays exactly 0 under ``bursty_joins`` on the same family), and the
   per-event drop rate tracks an edge's spanning-forest mass share
   (roughly ``n/m``), so sustained deletion churn pushes pooled reuse
   toward flush-and-redraw cost — unbiased, but the reuse win is gone.
2. **Reweight storms (write-heavy expander)** — mid-storm the graph is
   weighted, so the forest path is unavailable by contract and the world
   serves exact-only until the storm passes; restoring every perturbed
   edge to weight 1 cancels the density ratios exactly, which the
   annotation verifies by re-running the storm world's seed with no churn
   and printing the forest-value drift (zero).

Usage::

    PYTHONPATH=src python examples/worlds_envelope.py
    PYTHONPATH=src python examples/worlds_envelope.py --events 12 --quick
"""

from __future__ import annotations

import argparse

from repro.experiments.report import format_table
from repro.worlds import (
    ChurnSpec,
    EstimatorSpec,
    TrafficSpec,
    WorldSpec,
    gate_rows,
    run_world,
    sweep,
)


def envelope_specs(events: int, quick: bool) -> list:
    """The fixed 12-world cross (sizes shrink under ``--quick``)."""
    n_small = 48 if quick else 72
    n_large = 64 if quick else 96
    estimator = EstimatorSpec(pool_size=16, max_samples=32,
                              forest_tolerance=0.6)
    hostile = EstimatorSpec(pool_size=16, max_samples=32,
                            forest_tolerance=0.8)

    def world(topology, regime, backend, *, n=n_small, intensity=1.0,
              mix="mixed", mode="engine", seed=0, est=estimator):
        return WorldSpec(
            topology=topology, n=n,
            churn=ChurnSpec(regime=regime, events=events,
                            intensity=intensity),
            traffic=TrafficSpec(mix=mix), backend=backend,
            estimator=est, mode=mode, seed=seed,
        )

    return [
        world("power_law", "none", "dense", seed=21, mix="read_heavy"),
        world("power_law", "bursty_joins", "dense", seed=22),
        # Degradation regime 1: deletions (mass destruction) vs the
        # bursty_joins world above (forests_dropped stays 0).
        world("power_law", "adversarial_deletions", "dense", seed=23,
              intensity=2.0, est=hostile),
        world("lattice", "adversarial_deletions", "dense", n=n_large,
              seed=24, intensity=2.0),
        world("small_world", "bursty_joins", "sparse", seed=25),
        world("small_world", "mixed", "sparse", seed=26),
        # Degradation regime 2: reweight storms — exact-only mid-storm,
        # exact ratio cancellation after restore.
        world("expander", "reweight_storm", "dense", seed=27,
              intensity=1.5, mix="write_heavy", est=hostile),
        world("lattice", "reweight_storm", "dense", n=n_large, seed=28,
              intensity=1.5, mix="write_heavy"),
        world("planted_community", "adversarial_deletions", "sparse",
              n=n_large, seed=29),
        world("k_regular", "mixed", "dense", seed=30),
        world("ring", "mixed", "auto", n=max(24, n_small // 2), seed=31),
        world("power_law", "mixed", "sparse", seed=32, mode="service"),
    ]


def annotate_degradation(rows: list) -> None:
    """Print the two documented breakpoints with this run's numbers."""

    def find(topology, regime):
        for row in rows:
            if row["topology"] == topology and row["churn"] == regime:
                return row
        return None

    print("Degradation regime 1: adversarial deletions at high churn")
    hostile = find("power_law", "adversarial_deletions")
    friendly = find("power_law", "bursty_joins")
    flat = find("lattice", "adversarial_deletions")
    if hostile and friendly and flat:
        print(f"  power_law deletions: forests_dropped={hostile['forests_dropped']} "
              f"(pool capacity {hostile['pool_capacity']:.0f}) "
              f"forest_err={hostile['forest_rel_error']:.3f}")
        print(f"  power_law joins:     forests_dropped={friendly['forests_dropped']} "
              f"— joins leaf-extend, never destroy pooled mass")
        print(f"  lattice deletions:   forests_dropped={flat['forests_dropped']} "
              f"— drop rate tracks an edge's forest-mass share (~n/m), "
              f"worst on sparse graphs")
        print("  deletions are the only churn kind that irrecoverably kills "
              "stored forests; under sustained deletion churn pooled reuse "
              "degrades toward flush-and-redraw cost (unbiased, but the "
              "reuse benefit is gone).")
    print()
    print("Degradation regime 2: reweight storms (write-heavy expander)")
    storm = find("expander", "reweight_storm")
    if storm:
        print(f"  expander storm: forests_reweighted={storm['forests_reweighted']} "
              f"events={storm['events_applied']} "
              f"p95_exact={storm['p95_exact_ms']:.2f}ms "
              f"forest_err={storm['forest_rel_error']:.3f}")
        # The documented invariant: restoring every perturbed edge to
        # weight 1 cancels the density ratios exactly, so the post-storm
        # pooled estimate matches a never-stormed run of the same seed.
        calm = run_world(storm_control_spec(storm))
        drift = abs(storm["forest_value"] - calm["forest_value"])
        print(f"  same seed, no storm: forest_value drift = {drift:.2e} "
              f"(exact density-ratio cancellation)")
        print("  the breakpoint is availability mid-storm: with non-unit "
              "weights the forest path is unavailable by contract, so a "
              "write-heavy storm serves exact-only (a backend solve per "
              "read) until the storm passes; the cost is latency and "
              "churned pool mass, never residual bias.")


def storm_control_spec(row: dict) -> WorldSpec:
    """The never-stormed control world matching a storm row's seed/shape.

    Reweight storms never add or remove nodes, so the row's settled ``n``
    is the spec's ``n``; the estimator knobs mirror :func:`envelope_specs`.
    """
    return WorldSpec(
        topology=row["topology"], n=row["n"],
        churn=ChurnSpec(regime="none", events=0),
        traffic=TrafficSpec(mix=row["traffic"]), backend=row["backend"],
        estimator=EstimatorSpec(pool_size=int(row["pool_capacity"]),
                                max_samples=32,
                                forest_tolerance=row["forest_tolerance"]),
        seed=row["seed"],
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving-envelope study over a fixed 12-world cross")
    parser.add_argument("--events", type=int, default=24,
                        help="churn events per world (default: 24)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink world sizes for a fast run")
    args = parser.parse_args(argv)

    specs = envelope_specs(events=args.events, quick=args.quick)
    print(f"Worlds envelope: {len(specs)} worlds, {args.events} churn "
          "events each")
    print()
    rows = sweep(specs, verbose=False)

    columns = ("world", "forest_rel_error", "p95_exact_ms", "p95_forest_ms",
               "min_pool_ess", "ess_topups", "forests_dropped",
               "forests_reweighted", "accuracy_ok", "ess_ok")
    print(format_table(
        columns,
        [[row.get(column) for column in columns] for row in rows],
        float_format="{:.4g}",
    ))
    print()
    annotate_degradation(rows)
    print()
    failures = gate_rows(rows)
    if failures:
        print(f"{len(failures)} worlds outside the documented envelope:")
        for failure in failures:
            print(f"  {failure}")
    else:
        print("all worlds inside the documented envelope")
    return 0


if __name__ == "__main__":
    main()
