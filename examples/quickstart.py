#!/usr/bin/env python
"""Quickstart: maximise current-flow group closeness on a synthetic network.

Builds a scale-free graph, selects a group of k nodes with each algorithm
and compares the resulting group CFCC and running time.

Run with::

    python examples/quickstart.py [--nodes 400] [--k 5]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.graph import generators


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=400, help="graph size")
    parser.add_argument("--k", type=int, default=5, help="group size")
    parser.add_argument("--eps", type=float, default=0.25, help="error parameter")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    graph = generators.barabasi_albert(args.nodes, 3, seed=args.seed)
    print(f"Graph: {graph.n} nodes, {graph.m} edges")
    print(f"Selecting k = {args.k} nodes to maximise group CFCC\n")

    config = repro.SamplingConfig(eps=args.eps, max_samples=128)
    methods = ["exact", "approx", "forest", "schur", "degree", "top-cfcc"]
    print(f"{'method':<10} {'CFCC':>10} {'seconds':>9}  group")
    for method in methods:
        start = time.perf_counter()
        result = repro.maximize_cfcc(
            graph, args.k, method=method, eps=args.eps, seed=args.seed,
            config=config if method in ("forest", "schur") else None,
        )
        elapsed = time.perf_counter() - start
        value = repro.group_cfcc(graph, result.group)
        print(f"{method:<10} {value:>10.4f} {elapsed:>9.3f}  {result.group}")

    print("\nThe greedy methods (exact / approx / forest / schur) should agree")
    print("closely on CFCC, with the heuristics (degree / top-cfcc) trailing.")


if __name__ == "__main__":
    main()
