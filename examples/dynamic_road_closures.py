#!/usr/bin/env python
"""Dynamic road closures: keep emergency-station placement fresh as roads close.

A city road network is modelled as a grid with a few diagonal shortcuts.
Emergency response stations are placed by maximising group current-flow
closeness (good placements are electrically close to everywhere).  Roads then
close and reopen over time; the :class:`repro.dynamic.DynamicCFCM` engine
maintains the placement and its quality incrementally instead of re-solving
from scratch after every event.

Run with::

    python examples/dynamic_road_closures.py [--rows 12] [--cols 12] [--stations 4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.dynamic import DynamicCFCM, DynamicGraph
from repro.exceptions import DisconnectedGraphError
from repro.graph import generators


def build_road_network(rows: int, cols: int, shortcuts: int, seed: int) -> DynamicGraph:
    """Grid road network plus a few random diagonal shortcut streets."""
    grid = generators.grid_graph(rows, cols)
    graph = DynamicGraph(grid)
    rng = np.random.default_rng(seed)
    added = 0
    while added < shortcuts:
        r, c = int(rng.integers(0, rows - 1)), int(rng.integers(0, cols - 1))
        u, v = r * cols + c, (r + 1) * cols + (c + 1)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=12, help="grid rows")
    parser.add_argument("--cols", type=int, default=12, help="grid columns")
    parser.add_argument("--stations", type=int, default=4, help="stations to place")
    parser.add_argument("--closures", type=int, default=6, help="closure events")
    parser.add_argument("--eps", type=float, default=0.35, help="error parameter")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    graph = build_road_network(args.rows, args.cols, shortcuts=args.rows // 2,
                               seed=args.seed)
    print(f"Road network: {graph.n} intersections, {graph.m} street segments")

    engine = DynamicCFCM(graph, seed=args.seed)
    result = engine.query(args.stations, method="exact", eps=args.eps)
    stations = result.group
    print(f"Initial stations (group CFCC "
          f"{engine.evaluate_exact(stations):.4f}): {stations}\n")

    rng = np.random.default_rng(args.seed + 1)
    closed: list = []
    print(f"{'event':<28} {'CFCC':>8}  {'stations':<24} cache")
    for step in range(args.closures):
        reopen = closed and rng.random() < 0.3
        if reopen:
            u, v = closed.pop(int(rng.integers(0, len(closed))))
            graph.add_edge(u, v)
            label = f"reopen  ({u:>3}, {v:>3})"
        else:
            edges = list(graph.edges())
            label = "closure skipped (bridges)"
            for _ in range(32):
                u, v = edges[int(rng.integers(0, len(edges)))]
                try:
                    graph.remove_edge(u, v)
                except DisconnectedGraphError:
                    continue
                closed.append((u, v))
                label = f"close   ({u:>3}, {v:>3})"
                break

        result = engine.query(args.stations, method="exact", eps=args.eps)
        stations = result.group
        value = engine.evaluate_exact(stations)
        stats = engine.stats
        print(f"{label:<28} {value:>8.4f}  {str(stations):<24} "
              f"{stats.query_hits}h/{stats.query_misses}m")

    print(f"\nEngine statistics after {args.closures} events:")
    for key, value in engine.stats.as_dict().items():
        print(f"  {key:<20} {value}")
    print("\nQuality monitoring (evaluate_exact) rode the incremental O(n^2)")
    print("Sherman-Morrison updates instead of O(n^3) re-factorisations; the")
    print("placement queries re-ran after each closure (the graph changed) and")
    print("are answered from cache whenever the network is unchanged.")


if __name__ == "__main__":
    main()
