#!/usr/bin/env python
"""Resource placement on peers of a P2P overlay network.

Second motivating application from the paper's introduction: replicate a
resource on k peers of a peer-to-peer overlay so that random-walk style
searches started anywhere reach a replica quickly.  Because the expected
absorption time of a random walk into a grounded node group is
``sum_u d_u * (inv(L_{-S}))_{uu}``-like, groups with high current-flow
closeness make excellent replica sets.

The script builds a scale-free overlay, selects replica sets with several
strategies and measures (a) the group CFCC and (b) the empirical mean number
of hops a random walk needs to hit the replica set.

Run with::

    python examples/p2p_resource_placement.py [--peers 400] [--replicas 5]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.graph import generators


def mean_hitting_time(graph, targets, walks: int = 300, seed: int = 0) -> float:
    """Empirical mean number of hops for a random walk to reach ``targets``."""
    rng = np.random.default_rng(seed)
    target_set = set(int(t) for t in targets)
    indptr, adjacency, degrees = graph.adjacency_lists()
    totals = 0.0
    for _ in range(walks):
        node = int(rng.integers(0, graph.n))
        hops = 0
        while node not in target_set and hops < 20 * graph.n:
            node = adjacency[indptr[node] + int(rng.integers(0, degrees[node]))]
            hops += 1
        totals += hops
    return totals / walks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=400, help="number of peers")
    parser.add_argument("--replicas", type=int, default=5, help="number of replicas k")
    parser.add_argument("--seed", type=int, default=11, help="random seed")
    args = parser.parse_args()

    graph = generators.powerlaw_cluster(args.peers, 3, 0.3, seed=args.seed)
    print(f"P2P overlay: {graph.n} peers, {graph.m} connections")
    print(f"Replicating the resource on k = {args.replicas} peers\n")

    strategies = {
        "SchurCFCM": repro.maximize_cfcc(graph, args.replicas, method="schur",
                                         eps=0.25, seed=args.seed).group,
        "ForestCFCM": repro.maximize_cfcc(graph, args.replicas, method="forest",
                                          eps=0.25, seed=args.seed).group,
        "Degree": repro.degree_group(graph, args.replicas).group,
        "Random": sorted(
            int(v) for v in np.random.default_rng(args.seed).choice(
                graph.n, size=args.replicas, replace=False)
        ),
    }

    print(f"{'strategy':<12} {'group CFCC':>11} {'mean hops to replica':>22}")
    for label, replicas in strategies.items():
        value = repro.group_cfcc(graph, replicas)
        hops = mean_hitting_time(graph, replicas, seed=args.seed)
        print(f"{label:<12} {value:>11.4f} {hops:>22.2f}")
    print("\nHigher CFCC should coincide with fewer hops for search walks —")
    print("the connection between CFCC and random-walk accessibility that")
    print("motivates using CFCM for replica placement.")


if __name__ == "__main__":
    main()
