"""Tests for the repro.worlds scenario-sweep harness."""

import json

import numpy as np
import pytest

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.worlds import (
    ChurnSpec,
    EstimatorSpec,
    LATENCY_SOURCE,
    TrafficSpec,
    WorldSampler,
    WorldSpec,
    gate_rows,
    run_world,
    smoke_specs,
    sweep,
)


def make_spec(**overrides):
    base = dict(
        topology="k_regular", n=48,
        churn=ChurnSpec(regime="mixed", events=8),
        traffic=TrafficSpec(mix="mixed"),
        backend="dense",
        estimator=EstimatorSpec(pool_size=12, max_samples=24,
                                forest_tolerance=0.6),
        seed=5,
    )
    base.update(overrides)
    return WorldSpec(**base)


class TestWorldSpec:
    def test_json_round_trip(self):
        spec = make_spec()
        clone = WorldSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.name == spec.name

    def test_dict_round_trip_preserves_nested_specs(self):
        spec = make_spec(
            churn=ChurnSpec(regime="reweight_storm", events=6, intensity=1.5),
            params={"m": 3}, topology="power_law",
        )
        payload = json.loads(spec.to_json())
        clone = WorldSpec.from_dict(payload)
        assert clone.churn.intensity == 1.5
        assert clone.params == {"m": 3}
        assert clone == spec

    def test_name_encodes_axes(self):
        name = make_spec().name
        for token in ("k_regular", "n48", "mixed", "dense", "s5"):
            assert token in name

    def test_validate_rejects_unknown_axes(self):
        with pytest.raises(InvalidParameterError):
            make_spec(topology="hypercube").validate()
        with pytest.raises(InvalidParameterError):
            make_spec(churn=ChurnSpec(regime="meteor", events=4)).validate()
        with pytest.raises(InvalidParameterError):
            make_spec(backend="gpu").validate()

    def test_build_graph_deterministic(self):
        first = make_spec().build_graph()
        second = make_spec().build_graph()
        assert first.n == second.n
        assert list(first.edges()) == list(second.edges())

    def test_sharded_axis_round_trips_and_names(self):
        spec = make_spec(mode="sharded", shards=3)
        clone = WorldSpec.from_json(spec.to_json())
        assert clone == spec
        assert "sharded3" in spec.name
        # Non-sharded names keep their historical shape.
        assert "shard" not in make_spec().name

    def test_sharded_validation(self):
        from repro.worlds.spec import FaultSpec

        with pytest.raises(InvalidParameterError):
            make_spec(mode="sharded", shards=0).validate()
        with pytest.raises(InvalidParameterError):
            make_spec(mode="sharded",
                      faults=FaultSpec(regime="chaos")).validate()


class TestWorldSampler:
    def test_fixed_seed_replays_identically(self):
        batch_a = WorldSampler(events=8, seed=3).sample(6)
        batch_b = WorldSampler(events=8, seed=3).sample(6)
        assert batch_a == batch_b

    def test_child_seeds_differ_across_worlds(self):
        batch = WorldSampler(events=8, seed=3).sample(6)
        assert len({spec.seed for spec in batch}) > 1

    def test_sampled_specs_validate(self):
        for spec in WorldSampler(events=8, seed=1).sample(8):
            spec.validate()

    def test_unknown_axis_rejected(self):
        with pytest.raises(InvalidParameterError):
            WorldSampler(topologies=("moebius",))


class TestRunWorld:
    @pytest.mark.slow
    def test_k_regular_world_within_tolerance(self):
        row = run_world(make_spec())
        assert row["accuracy_ok"] and row["ess_ok"]
        assert row["exact_rel_error"] <= 1e-6
        assert row["forest_rel_error"] <= 0.6
        assert row["events_applied"] > 0
        assert row["latency_source"] == LATENCY_SOURCE
        assert gate_rows([row]) == []

    @pytest.mark.slow
    def test_ring_world_exercises_scalar_finish(self):
        # The cycle graph is popping-hostile: the lockstep sampler falls
        # back to its scalar-finish path, which this world keeps covered.
        row = run_world(make_spec(
            topology="ring", n=32,
            churn=ChurnSpec(regime="none", events=0),
            traffic=TrafficSpec(mix="read_heavy"), backend="auto", seed=9,
        ))
        assert row["accuracy_ok"] and row["ess_ok"]
        assert row["events_applied"] == 0

    @pytest.mark.slow
    def test_same_spec_reproduces_row(self):
        first = run_world(make_spec())
        second = run_world(make_spec())
        assert first["forest_value"] == second["forest_value"]
        assert first["exact_value"] == second["exact_value"]
        assert first["events_applied"] == second["events_applied"]

    @pytest.mark.slow
    def test_registry_state_restored(self):
        assert not obs.REGISTRY.enabled
        run_world(make_spec(churn=ChurnSpec(regime="none", events=0)))
        assert not obs.REGISTRY.enabled

    @pytest.mark.slow
    def test_percentiles_come_from_registry(self, monkeypatch):
        # The sweep must read latency from the obs registry, not local
        # timers: a sentinel planted in Histogram.percentile has to surface
        # verbatim (seconds -> ms) in every latency field of the row.
        from repro.obs.metrics import Histogram

        monkeypatch.setattr(Histogram, "percentile",
                            lambda self, q, **labels: 0.123)
        row = run_world(make_spec(churn=ChurnSpec(regime="none", events=0)))
        for field in ("p50_exact_ms", "p95_exact_ms", "p99_exact_ms",
                      "p50_forest_ms", "p95_forest_ms", "p99_forest_ms"):
            assert row[field] == pytest.approx(123.0)

    @pytest.mark.slow
    def test_sharded_world_matches_reference(self):
        row = run_world(make_spec(
            topology="lattice", n=36, mode="sharded", shards=3,
            churn=ChurnSpec(regime="reweight_storm", events=6,
                            intensity=1.5), seed=21,
        ))
        assert row["accuracy_ok"] and row["ess_ok"]
        assert row["shards"] == 3
        assert row["events_applied"] > 0

    @pytest.mark.slow
    def test_reweight_storm_restores_unit_weights(self):
        row = run_world(make_spec(
            topology="expander",
            churn=ChurnSpec(regime="reweight_storm", events=6, intensity=1.5),
            traffic=TrafficSpec(mix="write_heavy"), seed=14,
        ))
        # Post-storm the graph must be unit-weighted again, so the final
        # pooled-forest read happened and carries a real error figure.
        assert row["forest_value"] is not None
        assert row["forests_reweighted"] > 0
        assert row["accuracy_ok"]


class TestSweepGates:
    @pytest.mark.slow
    def test_sweep_runs_multiple_worlds(self):
        specs = [make_spec(), make_spec(topology="ring", n=32, seed=9,
                                        churn=ChurnSpec(regime="none",
                                                        events=0))]
        rows = sweep(specs)
        assert [row["world"] for row in rows] == [s.name for s in specs]

    def test_gate_rows_reports_failures(self):
        row = {
            "world": "w", "accuracy_ok": False, "ess_ok": False,
            "exact_rel_error": 0.5, "exact_tolerance": 1e-6,
            "forest_rel_error": 2.0, "forest_tolerance": 0.5,
            "min_pool_ess": 1.0, "ess_gate": 6.0,
        }
        failures = gate_rows([row])
        assert len(failures) == 2
        assert "accuracy gate" in failures[0]
        assert "ESS gate" in failures[1]

    def test_smoke_specs_cover_the_cross(self):
        specs = smoke_specs()
        assert len(specs) >= 6
        assert len({spec.topology for spec in specs}) >= 4
        assert len({spec.churn.regime for spec in specs}) >= 4
        assert len({spec.backend for spec in specs}) >= 2
        assert any(spec.mode == "service" for spec in specs)
        assert any(spec.mode == "sharded" for spec in specs)
        for spec in specs:
            spec.validate()


class TestArtifacts:
    def test_write_worlds_artifacts(self, tmp_path, capsys):
        from repro.worlds import write_worlds_artifacts

        rows = [{"world": "w1", "topology": "ring", "n": 8, "m": 8,
                 "exact_rel_error": 0.0, "forest_rel_error": 0.1,
                 "accuracy_ok": True, "ess_ok": True,
                 "min_pool_ess": np.float64(12.0)}]
        json_path = tmp_path / "WORLDS_test.json"
        csv_path = tmp_path / "WORLDS_test.csv"
        write_worlds_artifacts(rows, str(json_path), str(csv_path),
                               label="worlds_test")
        payload = json.loads(json_path.read_text())
        assert payload["benchmark"] == "worlds_test"
        assert payload["rows"][0]["world"] == "w1"
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("world,topology,n,m")
