"""Tests for the asynchronous CFCM query service (`repro.service`).

The concurrency-correctness surface is exercised end to end: update
coalescing into rank-t batches, version barriers, cancellation mid-query,
graceful shutdown with a non-empty update queue, backpressure, and the
randomized concurrent-traffic equivalence against a fresh synchronous
engine replayed to the same journal version.
"""

import asyncio
import time

import pytest

from repro.dynamic import (
    DynamicCFCM,
    DynamicGraph,
    poisson_traffic,
    replay_events,
)
from repro.exceptions import (
    GraphError,
    InvalidParameterError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graph import generators
from repro.service import AsyncCFCMService, WorkerPool

GROUP = (0, 1, 2)


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture
def base_graph():
    return generators.barabasi_albert(40, 2, seed=5)


def missing_edges(graph, count):
    """Deterministic list of absent edges of the seed topology."""
    dynamic = DynamicGraph(graph)
    pairs = []
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if not dynamic.has_edge(u, v):
                pairs.append((u, v))
            if len(pairs) == count:
                return pairs
    return pairs


def sleep_mutation(seconds):
    """A mutation that only occupies the writer (no journal events)."""

    def mutation(graph):
        time.sleep(seconds)

    return mutation


async def until_writer_busy(service, timeout=5.0):
    """Yield until the writer has picked up the queued backlog."""
    deadline = time.perf_counter() + timeout
    while service.pending_updates > 0:
        if time.perf_counter() > deadline:  # pragma: no cover - CI safety net
            raise TimeoutError("writer never picked the backlog up")
        await asyncio.sleep(0.005)


class TestLifecycle:
    def test_context_manager_serves_and_stops(self, base_graph):
        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                assert service.running
                response = await service.evaluate(GROUP, mode="exact")
                assert response.version == 0
                assert response.result > 0.0
                # Responses surface engine pool health atomically.
                assert response.stats is not None
                assert "pool_ess" in response.stats
                forest = await service.evaluate(GROUP, mode="forest")
                key = ",".join(str(v) for v in sorted(GROUP))
                assert forest.stats["pool_ess"][key] > 0.0
                assert forest.stats["forests_resampled"] > 0
                return service

        service = run(scenario())
        assert not service.running
        assert service.stats.evaluations == 2

    def test_requests_require_start(self, base_graph):
        service = AsyncCFCMService(base_graph, seed=0)

        async def scenario():
            with pytest.raises(ServiceError):
                await service.query(2)
            with pytest.raises(ServiceError):
                await service.submit(lambda graph: None)

        run(scenario())

    def test_double_start_rejected_and_stop_idempotent(self, base_graph):
        async def scenario():
            service = AsyncCFCMService(base_graph, seed=0)
            await service.start()
            with pytest.raises(ServiceError):
                await service.start()
            await service.stop()
            await service.stop()
            with pytest.raises(ServiceClosedError):
                await service.start()
            with pytest.raises(ServiceClosedError):
                await service.evaluate(GROUP)

        run(scenario())


class TestUpdates:
    def test_updates_coalesce_into_one_batch(self, base_graph):
        pairs = missing_edges(base_graph, 6)

        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                tickets = [await service.add_edge(u, v) for u, v in pairs]
                version = await service.barrier()
                events = []
                for ticket in tickets:
                    events.extend(await ticket.result())
                return service, version, events

        service, version, events = run(scenario())
        assert version == len(pairs)
        assert [event.kind for event in events] == ["add"] * len(pairs)
        assert service.stats.updates_applied == len(pairs)
        # The writer drained the backlog in far fewer wakeups than updates.
        assert service.stats.update_batches < len(pairs)
        assert service.stats.coalesced_updates == len(pairs)

    def test_failed_update_propagates_through_ticket(self, base_graph):
        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                ticket = await service.remove_edge(0, 39)  # absent edge
                with pytest.raises(GraphError):
                    await ticket.result()
                assert isinstance(ticket.exception(), GraphError)
                # The service keeps serving afterwards.
                response = await service.evaluate(GROUP)
                return service, response

        service, response = run(scenario())
        assert service.stats.updates_failed == 1
        assert response.version == 0

    def test_fresh_consistency_sees_submitted_updates(self, base_graph):
        (pair,) = missing_edges(base_graph, 1)

        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                before = await service.evaluate(GROUP, mode="exact")
                await service.add_edge(*pair)
                after = await service.evaluate(GROUP, mode="exact")
                return before, after

        before, after = run(scenario())
        assert before.version == 0
        assert after.version == 1
        assert after.result != pytest.approx(before.result)

    def test_wait_for_version(self, base_graph):
        pairs = missing_edges(base_graph, 2)

        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                waiter = asyncio.ensure_future(service.wait_for_version(2))
                for u, v in pairs:
                    await service.add_edge(u, v)
                version = await asyncio.wait_for(waiter, timeout=5.0)
                assert version >= 2
                assert service.version >= 2

        run(scenario())

    def test_queue_overload_raises(self, base_graph):
        async def scenario():
            service = AsyncCFCMService(base_graph, seed=0, queue_limit=2)
            await service.start()
            await service.submit(sleep_mutation(0.2))
            await until_writer_busy(service)  # sleeper in flight, queue empty
            await service.submit(lambda graph: None)
            await service.submit(lambda graph: None)
            with pytest.raises(ServiceOverloadedError):
                await service.submit(lambda graph: None)
            await service.stop()
            return service

        service = run(scenario())
        assert service.stats.updates_rejected == 1
        assert service.stats.updates_applied == 3


class TestCancellation:
    def test_cancel_mid_query_during_barrier(self, base_graph):
        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                await service.submit(sleep_mutation(0.4))
                await until_writer_busy(service)
                task = asyncio.ensure_future(service.evaluate(GROUP, mode="exact"))
                await asyncio.sleep(0.05)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert service.stats.cancelled == 1
                # State stayed consistent; later queries answer normally.
                response = await service.evaluate(GROUP, mode="exact")
                return service, response

        service, response = run(scenario())
        assert response.result > 0.0
        assert service.stats.evaluations == 1

    def test_cancel_mid_query_during_compute(self, base_graph):
        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0, workers=2) as service:
                await service.submit(sleep_mutation(0.4))
                await until_writer_busy(service)  # writer holds the state lock
                task = asyncio.ensure_future(
                    service.evaluate(GROUP, mode="exact", consistency="relaxed")
                )
                await asyncio.sleep(0.05)  # worker blocked on the state lock
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert service.stats.cancelled == 1
                response = await service.evaluate(GROUP, mode="exact")
                return response

        response = run(scenario())
        assert response.version == 0

    def test_unknown_consistency_mode(self, base_graph):
        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                with pytest.raises(InvalidParameterError):
                    await service.evaluate(GROUP, consistency="psychic")

        run(scenario())


class TestShutdown:
    def test_drain_applies_pending_queue(self, base_graph):
        pairs = missing_edges(base_graph, 4)

        async def scenario():
            service = AsyncCFCMService(base_graph, seed=0)
            await service.start()
            await service.submit(sleep_mutation(0.2))
            await until_writer_busy(service)  # sleeper in flight, queue empty
            tickets = [await service.add_edge(u, v) for u, v in pairs]
            assert service.pending_updates == len(pairs)
            await service.stop(drain=True)
            for ticket in tickets:
                events = await ticket.result()
                assert len(events) == 1
            return service

        service = run(scenario())
        assert service.graph.version == len(pairs)
        assert service.stats.updates_applied == len(pairs) + 1

    def test_no_drain_rejects_pending_queue(self, base_graph):
        pairs = missing_edges(base_graph, 3)

        async def scenario():
            service = AsyncCFCMService(base_graph, seed=0)
            await service.start()
            slow = await service.submit(sleep_mutation(0.2))
            await until_writer_busy(service)
            tickets = [await service.add_edge(u, v) for u, v in pairs]
            assert service.pending_updates == len(pairs)
            await service.stop(drain=False)
            await slow.settled()
            assert slow.exception() is None
            for ticket in tickets:
                with pytest.raises(ServiceClosedError):
                    await ticket.result()
            with pytest.raises(ServiceClosedError):
                await service.add_edge(*pairs[0])
            return service

        service = run(scenario())
        assert service.graph.version == 0
        assert service.stats.updates_rejected == len(pairs)


class TestWorkerLayer:
    def test_forest_mode_and_prefetch(self, base_graph):
        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0, pool_size=6) as service:
                sampled = await service.prefetch_forests(GROUP)
                again = await service.prefetch_forests(GROUP)
                response = await service.evaluate(GROUP, mode="forest")
                return sampled, again, response

        sampled, again, response = run(scenario())
        assert sampled == 6
        assert again == 0  # pool already full
        assert response.result > 0.0

    def test_refresh_pumps_maintenance_and_compaction(self, base_graph):
        pairs = missing_edges(base_graph, 3)

        async def scenario():
            async with AsyncCFCMService(base_graph, seed=0) as service:
                for u, v in pairs:
                    await service.add_edge(u, v)
                await service.barrier()
                version = await service.refresh()
                return service, version

        service, version = run(scenario())
        assert version == len(pairs)
        assert service.engine.pending_events == 0
        assert service.graph.journal_floor == len(pairs)

    def test_worker_pool_validation_and_close(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(process_workers=-1)

        async def scenario():
            pool = WorkerPool(workers=1)
            assert await pool.run(lambda: 41 + 1) == 42
            await pool.close()
            assert pool.closed
            with pytest.raises(ServiceClosedError):
                await pool.run(lambda: None)
            await pool.close()  # idempotent

        run(scenario())


class TestEngineHooks:
    def test_sync_hook_and_version_tokens(self, base_graph):
        graph = DynamicGraph(base_graph)
        engine = DynamicCFCM(graph, seed=0)
        assert engine.synced_version == 0
        assert engine.pending_events == 0
        for u, v in missing_edges(base_graph, 2):
            graph.add_edge(u, v)
        assert engine.pending_events == 2
        assert engine.sync() == graph.version
        assert engine.synced_version == graph.version
        assert engine.pending_events == 0

    def test_refill_pool_counts_and_sampler_contract(self, base_graph):
        engine = DynamicCFCM(DynamicGraph(base_graph), seed=0, pool_size=4)
        assert engine.refill_pool(GROUP) == 4
        assert engine.refill_pool(GROUP) == 0
        assert engine.stats.forests_resampled == 4

        engine = DynamicCFCM(DynamicGraph(base_graph), seed=0, pool_size=4)
        with pytest.raises(InvalidParameterError):
            engine.refill_pool(GROUP, sampler=lambda *args: [])


class TestRandomizedEquivalence:
    """Acceptance criterion: async answers == fresh sync engine at the version."""

    @pytest.mark.parametrize("node_probability,count,seed", [
        (0.0, 70, 11),
        (0.25, 80, 29),
    ])
    def test_concurrent_traffic_matches_synchronous_engine(
        self, node_probability, count, seed
    ):
        base = generators.barabasi_albert(60, 2, seed=3)

        async def scenario():
            async with AsyncCFCMService(base, seed=7, workers=2) as service:
                report = await poisson_traffic(
                    service,
                    count,
                    rng=seed,
                    query_fraction=0.45,
                    node_probability=node_probability,
                    monitor_group=GROUP,
                    k=3,
                    method="exact",
                )
                final = await service.evaluate(GROUP, mode="exact")
                return report, final

        report, final = run(scenario())
        assert report.updates_applied > 0
        assert report.evaluations + report.queries > 0

        observations = list(report.eval_observations)
        observations.append((final.version, float(final.result)))
        for version, value in observations:
            replayed = replay_events(base, report.events, upto_version=version)
            assert replayed.version == version
            expected = DynamicCFCM(replayed, seed=0).evaluate_exact(GROUP)
            assert value == pytest.approx(expected, abs=1e-8, rel=1e-8)
        for version, group in report.query_observations:
            replayed = replay_events(base, report.events, upto_version=version)
            expected = DynamicCFCM(replayed, seed=0).query(
                3, method="exact", eps=0.3
            )
            assert list(group) == list(expected.group)

    def test_replay_rejects_incomplete_journal(self):
        base = generators.barabasi_albert(20, 2, seed=0)
        dynamic = DynamicGraph(base)
        (pair,) = [
            (u, v)
            for u in range(3)
            for v in range(u + 1, 20)
            if not dynamic.has_edge(u, v)
        ][:1]
        dynamic.add_edge(*pair)
        second = dynamic.remove_edge(*pair)
        with pytest.raises(GraphError):
            replay_events(base, [second])
