"""Tests for graph construction helpers."""

import numpy as np
import networkx as nx
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.builders import (
    from_adjacency_matrix,
    from_edge_list,
    from_networkx,
    from_parent_array,
    to_networkx,
)
from repro.graph import generators


class TestFromEdgeList:
    def test_infers_node_count(self):
        graph = from_edge_list([(0, 1), (1, 4)])
        assert graph.n == 5
        assert graph.m == 2

    def test_explicit_node_count(self):
        graph = from_edge_list([(0, 1)], n=10)
        assert graph.n == 10

    def test_removes_duplicates_and_loops(self):
        graph = from_edge_list([(0, 1), (1, 0), (2, 2), (1, 2)])
        assert graph.m == 2

    def test_empty_raises(self):
        with pytest.raises(GraphError):
            from_edge_list([])


class TestNetworkxRoundTrip:
    def test_from_networkx_counts(self):
        nx_graph = nx.karate_club_graph()
        graph, labels = from_networkx(nx_graph)
        assert graph.n == nx_graph.number_of_nodes()
        assert graph.m == nx_graph.number_of_edges()
        assert set(labels.values()) == set(nx_graph.nodes())

    def test_from_networkx_string_labels(self):
        nx_graph = nx.Graph([("a", "b"), ("b", "c")])
        graph, labels = from_networkx(nx_graph)
        assert graph.n == 3
        assert graph.m == 2
        assert sorted(labels.values()) == ["a", "b", "c"]

    def test_to_networkx_roundtrip(self):
        original = generators.barabasi_albert(30, 2, seed=0)
        nx_graph = to_networkx(original)
        back, _ = from_networkx(nx_graph)
        assert back == original

    def test_degrees_preserved(self):
        nx_graph = nx.karate_club_graph()
        graph, labels = from_networkx(nx_graph)
        for node_id, label in labels.items():
            assert graph.degree(node_id) == nx_graph.degree(label)


class TestFromAdjacencyMatrix:
    def test_dense(self):
        matrix = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        graph = from_adjacency_matrix(matrix)
        assert graph.m == 2
        assert graph.has_edge(0, 1)

    def test_sparse(self):
        matrix = sp.csr_matrix(np.array([[0, 1], [1, 0]]))
        graph = from_adjacency_matrix(matrix)
        assert graph.m == 1

    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            from_adjacency_matrix(np.ones((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(GraphError):
            from_adjacency_matrix(np.array([[0, 1], [0, 0]]))


class TestFromParentArray:
    def test_simple_tree(self):
        graph = from_parent_array([-1, 0, 0, 1])
        assert graph.n == 4
        assert graph.m == 3
        assert graph.has_edge(1, 3)

    def test_forest_with_two_roots(self):
        graph = from_parent_array([-1, 0, -1, 2])
        assert graph.m == 2
