"""Tests for concentration bounds and the adaptive sampling controller."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParameterError
from repro.sampling.bernstein import (
    AdaptiveSampler,
    StreamingMoments,
    empirical_bernstein_bound,
    hoeffding_bound,
    hoeffding_sample_size,
)


class TestHoeffding:
    def test_bound_formula(self):
        bound = hoeffding_bound(count=100, value_range=1.0, delta=0.05)
        assert bound == pytest.approx(math.sqrt(math.log(2 / 0.05) / 200))

    def test_bound_decreases_with_samples(self):
        assert hoeffding_bound(400, 1.0, 0.1) < hoeffding_bound(100, 1.0, 0.1)

    def test_bound_infinite_without_samples(self):
        assert hoeffding_bound(0, 1.0, 0.1) == math.inf

    def test_sample_size_inverse(self):
        size = hoeffding_sample_size(value_range=2.0, epsilon=0.1, delta=0.05)
        assert hoeffding_bound(size, 2.0, 0.05) <= 0.1 + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            hoeffding_bound(10, -1.0, 0.1)
        with pytest.raises(InvalidParameterError):
            hoeffding_bound(10, 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            hoeffding_sample_size(1.0, 0.0, 0.1)


class TestEmpiricalBernstein:
    def test_formula(self):
        bound = empirical_bernstein_bound(count=50, variance=0.2, value_bound=3.0,
                                          delta=0.1)
        log_term = math.log(3 / 0.1)
        expected = math.sqrt(2 * 0.2 * log_term / 50) + 3 * 3.0 * log_term / 50
        assert bound == pytest.approx(expected)

    def test_zero_variance_still_positive(self):
        assert empirical_bernstein_bound(100, 0.0, 1.0, 0.1) > 0

    def test_tighter_than_hoeffding_for_low_variance(self):
        """The Bernstein bound wins when the empirical variance is small."""
        count, value_bound, delta = 2000, 10.0, 0.05
        bernstein = empirical_bernstein_bound(count, 0.01, value_bound, delta)
        hoeffding = hoeffding_bound(count, value_bound, delta)
        assert bernstein < hoeffding

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            empirical_bernstein_bound(10, 0.1, -1.0, 0.1)
        with pytest.raises(InvalidParameterError):
            empirical_bernstein_bound(10, 0.1, 1.0, 1.5)

    def test_infinite_without_samples(self):
        assert empirical_bernstein_bound(0, 0.1, 1.0, 0.1) == math.inf


class TestStreamingMoments:
    def test_mean_and_variance_match_numpy(self, rng):
        samples = rng.normal(size=(200, 4))
        moments = StreamingMoments()
        moments.update_batch(samples)
        assert moments.count == 200
        assert np.allclose(moments.mean, samples.mean(axis=0))
        assert np.allclose(moments.variance(), samples.var(axis=0), atol=1e-10)

    def test_incremental_equals_batch(self, rng):
        samples = rng.normal(size=(50, 3))
        one = StreamingMoments()
        two = StreamingMoments()
        one.update_batch(samples)
        for row in samples:
            two.update(row)
        assert np.allclose(one.mean, two.mean)
        assert np.allclose(one.variance(), two.variance())

    def test_variance_requires_samples(self):
        with pytest.raises(InvalidParameterError):
            StreamingMoments().variance()


class TestAdaptiveSampler:
    def make_sampler(self, **kwargs):
        defaults = dict(epsilon=0.2, delta=0.05, value_bound=1.0,
                        max_samples=1024, min_samples=8, initial_batch=8)
        defaults.update(kwargs)
        return AdaptiveSampler(**defaults)

    def test_batches_double_and_respect_cap(self):
        sampler = self.make_sampler(max_samples=100, initial_batch=16)
        sizes = list(sampler.batch_sizes())
        assert sizes[0] == 16 and sizes[1] == 32
        assert sum(sizes) == 100

    def test_stops_on_low_variance_stream(self, rng):
        sampler = self.make_sampler()
        stopped = False
        for batch in sampler.batch_sizes():
            samples = 0.5 + 0.001 * rng.normal(size=(batch, 3))
            sampler.record(np.clip(samples, 0.0, 1.0))
            if sampler.should_stop():
                stopped = True
                break
        assert stopped
        assert sampler.samples_used < sampler.max_samples

    def test_does_not_stop_before_min_samples(self, rng):
        sampler = self.make_sampler(min_samples=64)
        sampler.record(np.full((8, 2), 0.5))
        assert not sampler.should_stop()

    def test_high_variance_keeps_sampling(self, rng):
        sampler = self.make_sampler(epsilon=0.01, max_samples=64)
        for batch in sampler.batch_sizes():
            sampler.record(rng.random((batch, 2)))
            if sampler.should_stop():
                break
        assert sampler.samples_used == 64

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            self.make_sampler(epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            self.make_sampler(delta=2.0)
        with pytest.raises(InvalidParameterError):
            self.make_sampler(max_samples=0)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10_000),
       st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=0.01, max_value=100.0),
       st.floats(min_value=0.001, max_value=0.999))
def test_bernstein_bound_monotone_in_count(count, variance, value_bound, delta):
    larger = empirical_bernstein_bound(count, variance, value_bound, delta)
    smaller = empirical_bernstein_bound(count * 2, variance, value_bound, delta)
    assert smaller <= larger + 1e-12
