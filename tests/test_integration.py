"""End-to-end integration tests spanning several subsystems.

These tests exercise the full pipeline the paper's experiments rely on —
generate a graph, run every algorithm, evaluate the objective exactly — and
assert the *qualitative shapes* of the evaluation section at miniature scale:

* every greedy method lands close to the exact greedy (Fig. 2);
* the sampling methods' per-iteration work responds to eps (Fig. 4);
* SchurCFCM samples cheaper forests than ForestCFCM (Lemma 3.7 rationale);
* the reciprocal objective is monotone and supermodular, the property that
  underpins the approximation guarantee.
"""

import numpy as np
import pytest

import repro
from repro.centrality.estimators import SamplingConfig
from repro.graph import generators
from repro.sampling.wilson import expected_sampling_cost


@pytest.fixture(scope="module")
def workload():
    """A 150-node scale-free workload shared by the integration tests."""
    return generators.powerlaw_cluster(150, 3, 0.3, seed=99)


@pytest.fixture(scope="module")
def exact_reference(workload):
    return repro.ExactGreedy(workload).run(6)


class TestEndToEndPipeline:
    def test_all_methods_close_to_exact(self, workload, exact_reference):
        exact_value = repro.group_cfcc(workload, exact_reference.group)
        config = SamplingConfig(eps=0.25, max_samples=256)
        for method in ("approx", "forest", "schur"):
            result = repro.maximize_cfcc(workload, 6, method=method, eps=0.25,
                                         seed=11, config=config if method != "approx" else None)
            value = repro.group_cfcc(workload, result.group)
            assert value >= 0.85 * exact_value, method

    def test_greedy_beats_heuristics(self, workload, exact_reference):
        exact_value = repro.group_cfcc(workload, exact_reference.group)
        degree_value = repro.group_cfcc(workload, repro.degree_group(workload, 6).group)
        top_value = repro.group_cfcc(workload, repro.top_cfcc_group(workload, 6).group)
        assert exact_value >= degree_value - 1e-9
        assert exact_value >= top_value - 1e-9

    def test_schur_samples_cheaper_forests(self, workload):
        """Adding the auxiliary hub roots lowers the expected walk length."""
        hub = int(np.argmax(workload.degrees))
        base = expected_sampling_cost(workload, [hub])
        extras = repro.SchurCFCM(workload, seed=0).extra_roots
        enlarged = expected_sampling_cost(workload, sorted(set([hub] + extras)))
        assert enlarged <= base

    def test_smaller_eps_means_more_work(self, workload):
        loose = SamplingConfig(eps=0.4, max_samples=4096, min_samples=8,
                               initial_batch=8, max_jl_dimension=128)
        tight = SamplingConfig(eps=0.15, max_samples=4096, min_samples=8,
                               initial_batch=8, max_jl_dimension=128)
        assert tight.jl_rows(workload.n) > loose.jl_rows(workload.n)
        loose_run = repro.ForestCFCM(workload, seed=5, config=loose).run(2)
        tight_run = repro.ForestCFCM(workload, seed=5, config=tight).run(2)
        assert tight_run.samples_used() >= loose_run.samples_used()

    def test_objective_monotone_supermodular_along_greedy_path(self, workload,
                                                               exact_reference):
        """Tr(inv(L_{-S})) decreases along the greedy path with shrinking drops."""
        traces = [repro.grounded_trace(workload, exact_reference.prefix(k))
                  for k in range(1, 7)]
        drops = [a - b for a, b in zip(traces, traces[1:])]
        assert all(d > 0 for d in drops)
        # Supermodularity implies the greedy drops are non-increasing.
        assert all(d1 >= d2 - 1e-6 for d1, d2 in zip(drops, drops[1:]))

    def test_result_round_trip_through_evaluation(self, workload, exact_reference):
        summary = repro.compare_methods(
            workload,
            {"exact": exact_reference, "degree": repro.degree_group(workload, 6)},
            reference="exact",
        )
        assert summary["exact"]["relative_difference"] == 0.0
        assert summary["degree"]["cfcc"] <= summary["exact"]["cfcc"] + 1e-9


class TestCrossValidationWithNetworkx:
    def test_group_cfcc_against_networkx_substrate(self, workload):
        """Independent evaluation of C(S) through networkx's dense pinv."""
        import networkx as nx
        from repro.graph.builders import to_networkx

        group = [0, 1, 2]
        nx_graph = to_networkx(workload)
        laplacian = nx.laplacian_matrix(nx_graph).toarray().astype(float)
        keep = [v for v in range(workload.n) if v not in group]
        reference = workload.n / np.trace(np.linalg.inv(laplacian[np.ix_(keep, keep)]))
        assert repro.group_cfcc(workload, group) == pytest.approx(reference, rel=1e-9)
