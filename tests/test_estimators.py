"""Tests for the forest-sampling estimators (the statistical core of the paper)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.centrality.estimators import (
    ForestAccumulator,
    SamplingConfig,
    estimate_first_pick,
    estimate_forest_delta,
    estimate_schur_delta,
    rademacher_weights,
    run_adaptive_sampling,
)
from repro.centrality.marginal import marginal_gains_all
from repro.linalg.pseudoinverse import pseudoinverse_diagonal
from repro.linalg.schur import absorption_probabilities
from repro.linalg.updates import grounded_inverse


class TestSamplingConfig:
    def test_defaults(self):
        config = SamplingConfig()
        assert 0 < config.eps < 1
        assert config.max_samples >= config.min_samples

    def test_invalid_eps(self):
        with pytest.raises(InvalidParameterError):
            SamplingConfig(eps=0.0)
        with pytest.raises(InvalidParameterError):
            SamplingConfig(eps=1.5)

    def test_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            SamplingConfig(delta=0.0)

    def test_invalid_max_samples(self):
        with pytest.raises(InvalidParameterError):
            SamplingConfig(max_samples=0)

    def test_failure_probability_default(self):
        assert SamplingConfig().failure_probability(100) == pytest.approx(0.01)
        assert SamplingConfig(delta=0.2).failure_probability(100) == pytest.approx(0.2)

    def test_jl_rows_scaling(self):
        config = SamplingConfig(eps=0.2, max_jl_dimension=1000, jl_constant=1.0)
        tighter = SamplingConfig(eps=0.1, max_jl_dimension=1000, jl_constant=1.0)
        assert tighter.jl_rows(500) > config.jl_rows(500)

    def test_jl_rows_capped(self):
        config = SamplingConfig(eps=0.15, max_jl_dimension=32)
        assert config.jl_rows(10_000) == 32

    def test_theoretical_constants_mode(self):
        config = SamplingConfig(eps=0.5, theoretical_constants=True)
        assert config.jl_rows(100) >= 24 * (0.5 / 7) ** -2 * np.log(100) - 1

    def test_sample_cap_bounded(self):
        config = SamplingConfig(eps=0.3, max_samples=100)
        assert config.sample_cap(1000) <= 100


class TestRademacherWeights:
    def test_shape_and_masking(self, rng):
        weights = rademacher_weights(8, 20, [3, 7], rng)
        assert weights.shape == (8, 20)
        assert np.all(weights[:, 3] == 0) and np.all(weights[:, 7] == 0)
        nonzero = weights[:, [c for c in range(20) if c not in (3, 7)]]
        assert np.allclose(np.abs(nonzero), 1.0 / np.sqrt(8))


class TestForestAccumulator:
    def test_diag_estimates_unbiased(self, karate):
        """Phi_{u,S}(u) converges to (inv(L_{-S}))_uu (Lemma 3.3)."""
        group = [0, 33]
        inverse, kept = grounded_inverse(karate, group)
        accumulator = ForestAccumulator(karate, group, seed=11)
        accumulator.add_samples(1500)
        estimates = accumulator.diag_estimates()
        relative = np.abs(estimates[kept] - np.diag(inverse)) / np.diag(inverse)
        assert relative.mean() < 0.08
        assert relative.max() < 0.35

    def test_projected_estimates_unbiased(self, karate):
        """Phi_{w,S}(u) converges to w^T inv(L_{-S}) e_u for fixed weights."""
        group = [0]
        inverse, kept = grounded_inverse(karate, group)
        weights = np.zeros((2, karate.n))
        weights[0, :] = 1.0
        weights[1, kept[5]] = 1.0
        accumulator = ForestAccumulator(karate, group, weights=weights, seed=13)
        accumulator.add_samples(1500)
        projected = accumulator.projected_estimates()

        exact_ones = np.ones(kept.size) @ inverse
        rel_ones = np.abs(projected[0][kept] - exact_ones) / np.abs(exact_ones)
        assert rel_ones.mean() < 0.08

        exact_row = inverse[5]
        rel_row = np.abs(projected[1][kept] - exact_row) / np.maximum(np.abs(exact_row), 1e-9)
        assert np.median(rel_row) < 0.25

    def test_diag_zero_on_roots(self, karate):
        accumulator = ForestAccumulator(karate, [0, 1], seed=0)
        accumulator.add_samples(20)
        estimates = accumulator.diag_estimates()
        assert estimates[0] == 0.0 and estimates[1] == 0.0

    def test_root_fractions_match_absorption(self, karate):
        grounded = [0]
        extras = [32, 33]
        exact, interior = absorption_probabilities(karate, grounded, extras)
        accumulator = ForestAccumulator(karate, grounded + extras,
                                        tracked_roots=extras, seed=5)
        accumulator.add_samples(1200)
        fractions = accumulator.root_fractions()
        observed = fractions[interior]
        assert np.max(np.abs(observed - exact)) < 0.1

    def test_requires_samples_before_results(self, karate):
        accumulator = ForestAccumulator(karate, [0], seed=0)
        with pytest.raises(InvalidParameterError):
            accumulator.diag_estimates()

    def test_tracked_roots_must_be_roots(self, karate):
        with pytest.raises(InvalidParameterError):
            ForestAccumulator(karate, [0], tracked_roots=[5], seed=0)

    def test_weights_shape_validated(self, karate):
        with pytest.raises(InvalidParameterError):
            ForestAccumulator(karate, [0], weights=np.ones((2, 7)), seed=0)

    def test_half_widths_shrink(self, karate):
        accumulator = ForestAccumulator(karate, [0], seed=3)
        accumulator.add_samples(50)
        wide = accumulator.diag_half_widths(0.05).mean()
        accumulator.add_samples(450)
        narrow = accumulator.diag_half_widths(0.05).mean()
        assert narrow < wide


class TestAdaptiveSamplingLoop:
    def test_respects_cap(self, karate):
        config = SamplingConfig(eps=0.3, max_samples=40, min_samples=8, initial_batch=8)
        accumulator = ForestAccumulator(karate, [0], seed=1)
        diagnostics = run_adaptive_sampling(accumulator, config)
        assert diagnostics["samples"] <= 40
        assert accumulator.count == int(diagnostics["samples"])

    def test_early_stop_possible_on_easy_instance(self):
        star = generators.star_graph(30)
        config = SamplingConfig(eps=0.5, max_samples=4096, min_samples=8,
                                initial_batch=32)
        accumulator = ForestAccumulator(star, [0], seed=2)
        diagnostics = run_adaptive_sampling(accumulator, config)
        # Star rooted at the hub: every estimate is deterministic (variance 0),
        # so the Bernstein rule must fire long before the cap.
        assert diagnostics["stopped_early"] == 1.0
        assert diagnostics["samples"] < 4096


class TestDeltaEstimators:
    def test_forest_delta_close_to_exact(self, small_ba):
        group = [int(np.argmax(small_ba.degrees))]
        exact = marginal_gains_all(small_ba, group)
        config = SamplingConfig(eps=0.2, max_samples=600, max_jl_dimension=128)
        estimates, diagnostics = estimate_forest_delta(small_ba, group, config, seed=3)
        assert set(estimates) == set(exact)
        relative = [abs(estimates[u] - exact[u]) / exact[u] for u in exact]
        assert np.mean(relative) < 0.35
        # The very top candidates must be ranked highly by the estimates.
        best_exact = max(exact, key=exact.get)
        ranked = sorted(estimates, key=estimates.get, reverse=True)
        assert best_exact in ranked[:10]

    def test_schur_delta_close_to_exact(self, small_ba):
        group = [int(np.argmax(small_ba.degrees))]
        extras = [int(v) for v in np.argsort(-small_ba.degrees)[1:5]]
        exact = marginal_gains_all(small_ba, group)
        config = SamplingConfig(eps=0.2, max_samples=600, max_jl_dimension=128)
        estimates, _ = estimate_schur_delta(small_ba, group, extras, config, seed=4)
        assert set(estimates) == set(exact)
        relative = [abs(estimates[u] - exact[u]) / exact[u] for u in exact]
        assert np.mean(relative) < 0.35
        best_exact = max(exact, key=exact.get)
        ranked = sorted(estimates, key=estimates.get, reverse=True)
        assert best_exact in ranked[:10]

    def test_schur_delta_without_extras_falls_back(self, small_ba):
        group = [0]
        config = SamplingConfig(eps=0.3, max_samples=64)
        gains, _ = estimate_schur_delta(small_ba, group, [0], config, seed=5)
        assert set(gains) == set(range(small_ba.n)) - {0}

    def test_estimates_are_positive(self, small_ba):
        config = SamplingConfig(eps=0.3, max_samples=128)
        gains, _ = estimate_forest_delta(small_ba, [0], config, seed=6)
        assert all(value > 0 for value in gains.values())


class TestFirstPick:
    def test_first_pick_has_small_pseudoinverse_diagonal(self, karate):
        config = SamplingConfig(eps=0.2, max_samples=800)
        node, scores, _ = estimate_first_pick(karate, config, seed=7)
        diag = pseudoinverse_diagonal(karate)
        # The selected node must be among the best few nodes by exact L+_uu.
        order = np.argsort(diag)
        assert node in set(int(v) for v in order[:5])
        assert scores.shape == (karate.n,)

    def test_first_pick_anchor_override(self, karate):
        config = SamplingConfig(eps=0.3, max_samples=64)
        node, _, diagnostics = estimate_first_pick(karate, config, seed=8, anchor=5)
        assert 0 <= node < karate.n
        assert diagnostics["samples"] > 0
