"""Tests for Laplacian construction and grounded Laplacians."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.linalg.laplacian import (
    complement_indices,
    grounded_laplacian,
    grounded_laplacian_dense,
    grounded_transition_matrix,
    is_symmetric_diagonally_dominant,
    laplacian_dense,
    laplacian_matrix,
    transition_matrix,
)


class TestLaplacian:
    def test_row_sums_zero(self, karate):
        laplacian = laplacian_dense(karate)
        assert np.allclose(laplacian.sum(axis=1), 0.0)

    def test_diagonal_is_degree(self, karate):
        laplacian = laplacian_dense(karate)
        assert np.allclose(np.diag(laplacian), karate.degrees)

    def test_symmetric(self, karate):
        laplacian = laplacian_dense(karate)
        assert np.allclose(laplacian, laplacian.T)

    def test_positive_semidefinite(self, karate):
        eigenvalues = np.linalg.eigvalsh(laplacian_dense(karate))
        assert eigenvalues.min() >= -1e-9

    def test_connected_graph_has_one_zero_eigenvalue(self, karate):
        eigenvalues = np.linalg.eigvalsh(laplacian_dense(karate))
        assert np.sum(np.abs(eigenvalues) < 1e-8) == 1

    def test_sparse_dense_agree(self, small_ba):
        assert np.allclose(laplacian_matrix(small_ba).toarray(),
                           laplacian_dense(small_ba))

    def test_is_sdd(self, karate):
        assert is_symmetric_diagonally_dominant(laplacian_dense(karate))

    def test_is_sdd_rejects_asymmetric(self):
        assert not is_symmetric_diagonally_dominant(np.array([[2.0, 1.0], [0.0, 2.0]]))

    def test_is_sdd_rejects_non_dominant(self):
        assert not is_symmetric_diagonally_dominant(np.array([[1.0, 2.0], [2.0, 1.0]]))


class TestGroundedLaplacian:
    def test_shape(self, karate):
        matrix, kept = grounded_laplacian(karate, [0, 33])
        assert matrix.shape == (32, 32)
        assert kept.size == 32
        assert 0 not in kept and 33 not in kept

    def test_entries_match_full_laplacian(self, karate):
        full = laplacian_dense(karate)
        reduced, kept = grounded_laplacian_dense(karate, [3, 5])
        assert np.allclose(reduced, full[np.ix_(kept, kept)])

    def test_positive_definite(self, karate):
        reduced, _ = grounded_laplacian_dense(karate, [0])
        eigenvalues = np.linalg.eigvalsh(reduced)
        assert eigenvalues.min() > 0

    def test_still_sdd(self, karate):
        reduced, _ = grounded_laplacian_dense(karate, [2, 7])
        assert is_symmetric_diagonally_dominant(reduced)

    def test_rejects_empty_group(self, karate):
        with pytest.raises(InvalidParameterError):
            grounded_laplacian(karate, [])

    def test_rejects_duplicates(self, karate):
        with pytest.raises(InvalidParameterError):
            grounded_laplacian(karate, [1, 1])

    def test_rejects_full_group(self, path4):
        with pytest.raises(InvalidParameterError):
            grounded_laplacian(path4, [0, 1, 2, 3])

    def test_complement_indices(self):
        assert complement_indices(5, [1, 3]).tolist() == [0, 2, 4]


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, karate):
        transition = transition_matrix(karate).toarray()
        assert np.allclose(transition.sum(axis=1), 1.0)

    def test_entries(self, star6):
        transition = transition_matrix(star6).toarray()
        assert transition[1, 0] == pytest.approx(1.0)
        assert transition[0, 1] == pytest.approx(1.0 / 5.0)

    def test_grounded_transition_substochastic(self, karate):
        reduced, kept = grounded_transition_matrix(karate, [0])
        sums = np.asarray(reduced.sum(axis=1)).ravel()
        assert np.all(sums <= 1.0 + 1e-12)
        assert np.any(sums < 1.0)
        assert kept.size == karate.n - 1

    def test_grounded_spectral_radius_below_one(self, small_ba):
        reduced, _ = grounded_transition_matrix(small_ba, [0, 1])
        radius = np.max(np.abs(np.linalg.eigvals(reduced.toarray())))
        assert radius < 1.0
