"""Smoke tests executing the example scripts on miniature inputs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, argv: list, capsys) -> str:
    """Execute an example script with patched ``sys.argv`` and return stdout."""
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart_example(capsys):
    output = run_example("quickstart.py",
                         ["--nodes", "120", "--k", "3", "--eps", "0.35"], capsys)
    assert "Graph: " in output
    assert "schur" in output
    assert "exact" in output


@pytest.mark.slow
def test_sensor_placement_example(capsys):
    output = run_example("sensor_placement.py",
                         ["--nodes", "120", "--sensors", "3", "--radius", "0.2"],
                         capsys)
    assert "SchurCFCM" in output
    assert "group CFCC" in output


@pytest.mark.slow
def test_p2p_resource_placement_example(capsys):
    output = run_example("p2p_resource_placement.py",
                         ["--peers", "120", "--replicas", "3"], capsys)
    assert "ForestCFCM" in output
    assert "mean hops" in output


@pytest.mark.slow
def test_power_grid_example(capsys):
    output = run_example("power_grid_vulnerability.py",
                         ["--buses", "100", "--group", "3"], capsys)
    assert "SchurCFCM group" in output
    assert "Kirchhoff" in output or "post-removal" in output


@pytest.mark.slow
def test_dynamic_road_closures_example(capsys):
    output = run_example("dynamic_road_closures.py",
                         ["--rows", "7", "--cols", "7", "--stations", "3",
                          "--closures", "3"], capsys)
    assert "Road network" in output
    assert "Initial stations" in output
    assert "Engine statistics" in output


@pytest.mark.slow
def test_p2p_peer_churn_example(capsys):
    output = run_example("p2p_peer_churn.py",
                         ["--peers", "80", "--replicas", "3", "--bursts", "3",
                          "--burst-size", "8"], capsys)
    assert "Overlay" in output
    assert "Initial replicas" in output
    assert "batch_updates" in output
    assert "journal retained" in output


@pytest.mark.slow
def test_async_traffic_replay_example(capsys):
    output = run_example("async_traffic_replay.py",
                         ["--nodes", "90", "--ops", "60", "--probes", "3"],
                         capsys)
    assert "Async CFCM service" in output
    assert "Query latency" in output
    assert "Journal replay" in output
    assert "MATCH" in output


@pytest.mark.slow
def test_point_cloud_example(capsys):
    output = run_example("point_cloud_sampling.py",
                         ["--points", "150", "--samples", "4", "--neighbours", "5"],
                         capsys)
    assert "Point cloud" in output
    assert "coverage error" in output


@pytest.mark.slow
def test_worlds_envelope_example(capsys):
    output = run_example("worlds_envelope.py",
                         ["--quick", "--events", "8"], capsys)
    assert "Worlds envelope: 12 worlds" in output
    assert "Degradation regime 1" in output
    assert "Degradation regime 2" in output
    assert "exact density-ratio cancellation" in output
    assert "inside the documented envelope" in output
