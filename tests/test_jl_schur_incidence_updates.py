"""Tests for JL projections, Schur complements, incidence factors and inverse updates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParameterError
from repro.linalg.incidence import grounded_incidence_factor, incidence_factor
from repro.linalg.jl import JLProjection, approx_column_norms, jl_dimension
from repro.linalg.laplacian import grounded_laplacian_dense, laplacian_dense
from repro.linalg.schur import (
    absorption_probabilities,
    grounded_inverse_block,
    schur_complement,
    schur_onto,
)
from repro.linalg.updates import (
    GroundedInverseTracker,
    grounded_inverse,
    grounded_inverse_downdate,
)


class TestJL:
    def test_dimension_formula(self):
        assert jl_dimension(1000, 0.5, constant=24.0) >= 24 * 4 * np.log(1000) - 1

    def test_dimension_clamped(self):
        assert jl_dimension(1000, 0.1, maximum=64) == 64
        assert jl_dimension(2, 0.9, minimum=5) >= 5

    def test_dimension_invalid_eps(self):
        with pytest.raises(InvalidParameterError):
            jl_dimension(10, 1.5)

    def test_projection_shape_and_entries(self):
        projection = JLProjection(10, 50, seed=0)
        assert projection.matrix.shape == (10, 50)
        assert projection.dimension == 10
        assert projection.original_dimension == 50
        assert np.allclose(np.abs(projection.matrix), 1.0 / np.sqrt(10))

    def test_projection_preserves_norms_statistically(self, rng):
        vectors = rng.normal(size=(40, 30))
        estimates = approx_column_norms(vectors, eps=0.3, seed=3, constant=24.0)
        exact = np.sum(vectors * vectors, axis=0)
        relative = np.abs(estimates - exact) / exact
        assert np.median(relative) < 0.3

    def test_projection_invalid_dims(self):
        with pytest.raises(InvalidParameterError):
            JLProjection(0, 5)
        with pytest.raises(InvalidParameterError):
            JLProjection(5, 0)

    def test_squared_norm_helper(self):
        projection = JLProjection(64, 8, seed=1)
        vector = np.arange(8.0)
        assert projection.squared_norm(vector) == pytest.approx(
            float(vector @ vector), rel=0.5
        )


class TestSchur:
    def test_schur_complement_identity_block(self):
        matrix = np.array([[4.0, 1.0], [1.0, 3.0]])
        assert np.allclose(schur_complement(matrix, [0, 1]), matrix)

    def test_schur_complement_2x2(self):
        matrix = np.array([[2.0, -1.0], [-1.0, 2.0]])
        schur = schur_complement(matrix, [0])
        assert schur.shape == (1, 1)
        assert schur[0, 0] == pytest.approx(2.0 - 1.0 / 2.0)

    def test_schur_onto_is_laplacian(self, karate):
        keep = [0, 1, 2, 3, 33]
        schur = schur_onto(karate, keep)
        assert np.allclose(schur.sum(axis=1), 0.0, atol=1e-9)
        off_diag = schur - np.diag(np.diag(schur))
        assert np.all(off_diag <= 1e-12)

    def test_schur_inverse_is_submatrix_of_inverse(self, karate):
        """inv(S_T(L_{-S})) equals the T-block of inv(L_{-S}) (block-inverse identity)."""
        grounded = [0]
        boundary = [32, 33]
        dense, kept = grounded_laplacian_dense(karate, grounded)
        inverse = np.linalg.inv(dense)
        positions = [int(np.flatnonzero(kept == t)[0]) for t in boundary]
        block = grounded_inverse_block(karate, grounded, boundary)
        assert np.allclose(np.linalg.inv(block.schur),
                           inverse[np.ix_(positions, positions)], atol=1e-8)

    def test_lemma_4_3_consistency(self, karate):
        """S_T(L_{-S}) equals the Schur of L onto S ∪ T with S rows/cols removed."""
        grounded = [0, 1]
        boundary = [32, 33]
        block = grounded_inverse_block(karate, grounded, boundary)
        full_schur = schur_onto(karate, sorted(grounded + boundary))
        labels = sorted(grounded + boundary)
        keep_positions = [labels.index(t) for t in boundary]
        reduced = full_schur[np.ix_(keep_positions, keep_positions)]
        assert np.allclose(block.schur, reduced, atol=1e-9)

    def test_block_assembly_matches_direct_inverse(self, karate):
        grounded = [0]
        boundary = [33, 2]
        block = grounded_inverse_block(karate, grounded, boundary)
        assembled, labels = block.assemble()
        dense, kept = grounded_laplacian_dense(karate, grounded)
        inverse = np.linalg.inv(dense)
        positions = [int(np.flatnonzero(kept == v)[0]) for v in labels]
        assert np.allclose(assembled, inverse[np.ix_(positions, positions)], atol=1e-8)

    def test_absorption_probabilities_are_distributions(self, karate):
        absorption, interior = absorption_probabilities(karate, [0], [32, 33])
        assert absorption.shape == (interior.size, 2)
        assert np.all(absorption >= -1e-12)
        assert np.all(absorption.sum(axis=1) <= 1.0 + 1e-9)

    def test_overlapping_sets_rejected(self, karate):
        with pytest.raises(InvalidParameterError):
            grounded_inverse_block(karate, [0, 1], [1, 2])

    def test_empty_boundary_rejected(self, karate):
        with pytest.raises(InvalidParameterError):
            grounded_inverse_block(karate, [0], [])

    def test_schur_invalid_indices(self):
        with pytest.raises(InvalidParameterError):
            schur_complement(np.eye(3), [5])
        with pytest.raises(InvalidParameterError):
            schur_complement(np.eye(3), [])


class TestIncidence:
    def test_full_factorisation(self, karate):
        factor = incidence_factor(karate)
        assert np.allclose((factor.T @ factor).toarray(), laplacian_dense(karate))

    def test_grounded_factorisation(self, karate):
        for group in ([0], [0, 33], [5, 10, 20]):
            factor, kept = grounded_incidence_factor(karate, group)
            dense, kept2 = grounded_laplacian_dense(karate, group)
            assert np.array_equal(kept, kept2)
            assert np.allclose((factor.T @ factor).toarray(), dense)

    def test_grounded_factor_star(self, star6):
        factor, kept = grounded_incidence_factor(star6, [0])
        dense, _ = grounded_laplacian_dense(star6, [0])
        assert np.allclose((factor.T @ factor).toarray(), dense)


class TestInverseUpdates:
    def test_downdate_matches_direct(self, karate):
        inverse, kept = grounded_inverse(karate, [0])
        local = 4
        downdated = grounded_inverse_downdate(inverse, local)
        removed_node = int(kept[local])
        direct, _ = grounded_inverse(karate, [0, removed_node])
        assert np.allclose(downdated, direct, atol=1e-8)

    def test_downdate_invalid_index(self):
        with pytest.raises(InvalidParameterError):
            grounded_inverse_downdate(np.eye(3), 5)

    def test_downdate_requires_square(self):
        with pytest.raises(InvalidParameterError):
            grounded_inverse_downdate(np.ones((2, 3)), 0)

    def test_tracker_matches_direct_inverse(self, small_ba):
        tracker = GroundedInverseTracker(small_ba, [0])
        for node in (3, 11, 25):
            tracker.add_node(node)
            direct, kept = grounded_inverse(small_ba, tracker.group)
            assert np.array_equal(tracker.kept, kept)
            assert np.allclose(tracker.inverse, direct, atol=1e-7)

    def test_tracker_trace_decreases(self, small_ba):
        tracker = GroundedInverseTracker(small_ba, [0])
        previous = tracker.trace()
        for node in (5, 9):
            tracker.add_node(node)
            assert tracker.trace() < previous
            previous = tracker.trace()

    def test_tracker_rejects_grounded_node(self, small_ba):
        tracker = GroundedInverseTracker(small_ba, [0])
        with pytest.raises(InvalidParameterError):
            tracker.local_index(0)

    def test_tracker_squared_diagonal(self, small_ba):
        tracker = GroundedInverseTracker(small_ba, [2])
        expected = np.sum(tracker.inverse ** 2, axis=0)
        assert np.allclose(tracker.squared_diagonal(), expected)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=5, max_value=30), st.integers(min_value=0, max_value=100))
def test_downdate_property(n, seed):
    """Downdating a random SPD matrix matches removing the row/column first."""
    rng = np.random.default_rng(seed)
    factor = rng.normal(size=(n, n))
    spd = factor @ factor.T + n * np.eye(n)
    inverse = np.linalg.inv(spd)
    index = int(rng.integers(0, n))
    keep = [i for i in range(n) if i != index]
    expected = np.linalg.inv(spd[np.ix_(keep, keep)])
    assert np.allclose(grounded_inverse_downdate(inverse, index), expected, atol=1e-6)
