"""Tests for the pluggable resistance backends (repro.linalg.backends).

The contract under test: the dense and sparse backends must be
interchangeable — identical churn journals replayed to the same version
agree to tight tolerances — while the sparse engine never materialises the
inverse and the dense engine stays bit-compatible with the historical
update kernels.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.centrality import marginal_gains_all
from repro.centrality.cfcc import grounded_trace
from repro.centrality.estimators import SamplingConfig
from repro.dynamic import (
    DynamicCFCM,
    DynamicGraph,
    IncrementalResistance,
    random_churn_journal,
    random_update_journal,
)
from repro.exceptions import (
    BackendUnavailableError,
    ConvergenceError,
    GraphError,
    InvalidParameterError,
)
from repro.linalg import (
    DenseResistanceBackend,
    PreconditionerCache,
    SparseResistanceBackend,
    build_preconditioner,
    choose_backend,
    make_resistance_backend,
    solve_grounded,
)
from repro.linalg.backends import AUTO_SPARSE_NODES

GROUP = [0, 1]


def _pair(graph, **sparse_options):
    """Dense and sparse trackers over the same DynamicGraph journal."""
    dense = IncrementalResistance(graph, GROUP, refresh_interval=10**9,
                                  backend="dense")
    sparse = IncrementalResistance(graph, GROUP, refresh_interval=10**9,
                                   backend="sparse",
                                   backend_options=sparse_options or None)
    return dense, sparse


def _assert_close(dense, sparse, rtol=1e-6):
    assert sparse.synced_version == dense.synced_version
    np.testing.assert_allclose(sparse.diagonal(mode="exact"),
                               dense.diagonal(), rtol=rtol, atol=1e-12)
    assert sparse.trace() == pytest.approx(dense.trace(), rel=rtol)


class TestDenseSparseParity:
    def test_edge_churn_journal_agrees(self, small_ba):
        graph = DynamicGraph(small_ba)
        dense, sparse = _pair(graph)
        rng = np.random.default_rng(7)
        for _ in range(6):
            random_update_journal(graph, 8, rng)
            _assert_close(dense.sync(), sparse.sync())
        # Sparse never refactorised: the whole journal was absorbed as
        # low-rank corrections against the original factor.
        assert sparse.stats.refreshes == 0
        assert sparse.backend.correction_rank > 0

    def test_node_churn_journal_agrees(self, small_ba):
        graph = DynamicGraph(small_ba)
        dense, sparse = _pair(graph)
        rng = np.random.default_rng(11)
        for _ in range(5):
            random_churn_journal(graph, 6, rng, node_probability=0.4,
                                 protected=GROUP)
            _assert_close(dense.sync(), sparse.sync())
        # Node events refactorise the sparse backend (no incremental
        # grow/downdate there) while the dense one grows/downdates in place.
        assert sparse.stats.refreshes > 0

    def test_compaction_replay_agrees(self, small_ba):
        graph = DynamicGraph(small_ba)
        dense, sparse = _pair(graph)
        rng = np.random.default_rng(13)
        random_churn_journal(graph, 10, rng, node_probability=0.3,
                             protected=GROUP)
        graph.compact(graph.version)
        random_update_journal(graph, 4, rng)
        _assert_close(dense.sync(), sparse.sync())

    def test_long_journal_hits_rank_cap(self, small_ba):
        graph = DynamicGraph(small_ba)
        sparse = IncrementalResistance(graph, GROUP, refresh_interval=10**9,
                                       backend="sparse",
                                       backend_options={"max_rank": 8})
        rng = np.random.default_rng(17)
        for _ in range(4):
            random_update_journal(graph, 6, rng)
            sparse.sync()
        # 6-event bursts against an 8-update budget: every other burst
        # overflows into a (cheap) refactorisation rather than raising.
        assert sparse.stats.refreshes > 0
        assert sparse.backend.correction_rank <= 8
        expected = grounded_trace(graph.snapshot(), graph.compact_nodes(GROUP))
        assert sparse.trace() == pytest.approx(expected, rel=1e-8)

    def test_weighted_edges_agree(self, small_ba):
        graph = DynamicGraph(small_ba)
        dense, sparse = _pair(graph)
        rng = np.random.default_rng(19)
        edges = [tuple(int(x) for x in e) for e in small_ba.edge_array()[:6]]
        for u, v in edges:
            graph.update_weight(u, v, float(rng.uniform(0.5, 3.0)))
        _assert_close(dense.sync(), sparse.sync())


class TestSketchedDiagonal:
    def test_sketch_tracks_exact_within_tolerance(self, medium_ba):
        graph = DynamicGraph(medium_ba)
        sparse = IncrementalResistance(
            graph, GROUP, refresh_interval=10**9, backend="sparse",
            backend_options={"diag_mode": "sketch", "probes": 256, "seed": 5})
        exact = grounded_trace(graph.snapshot(), graph.compact_nodes(GROUP))
        assert sparse.trace() == pytest.approx(exact, rel=0.1)
        # The escape hatch stays exact regardless of the default policy.
        dense = IncrementalResistance(graph, GROUP, backend="dense")
        np.testing.assert_allclose(sparse.diagonal(mode="exact"),
                                   dense.diagonal(), rtol=1e-8)

    def test_sketch_is_deterministic_and_cached(self, small_ba):
        graph = DynamicGraph(small_ba)
        backend = SparseResistanceBackend(diag_mode="sketch", probes=32, seed=9)
        tracker = IncrementalResistance(graph, GROUP, backend=backend)
        first = tracker.diagonal()
        np.testing.assert_array_equal(first, tracker.diagonal())
        graph.add_edge(5, 25)
        second = tracker.diagonal()
        assert not np.array_equal(first, second)


class TestCGFallback:
    def test_explicit_cg_solver_matches_dense(self, small_ba):
        graph = DynamicGraph(small_ba)
        dense = IncrementalResistance(graph, GROUP, backend="dense")
        cg = IncrementalResistance(
            graph, GROUP, refresh_interval=10**9, backend="sparse",
            backend_options={"solver": "cg", "rtol": 1e-12})
        assert cg.backend.solver_used == "cg"
        rng = np.random.default_rng(23)
        random_update_journal(graph, 5, rng)
        dense.sync()
        cg.sync()
        np.testing.assert_allclose(cg.diagonal(mode="exact"),
                                   dense.diagonal(), rtol=1e-6)

    def test_auto_falls_back_when_splu_unavailable(self, small_ba, monkeypatch):
        import repro.linalg.backends as backends_module

        def broken_splu(*args, **kwargs):
            raise RuntimeError("factorisation unavailable")

        monkeypatch.setattr(backends_module.spla, "splu", broken_splu)
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, GROUP, backend="sparse")
        assert tracker.backend.solver_used == "cg"
        expected = grounded_trace(graph.snapshot(), graph.compact_nodes(GROUP))
        assert tracker.trace() == pytest.approx(expected, rel=1e-6)

    def test_splu_only_solver_fails_over_to_dense(self, small_ba, monkeypatch):
        import repro.linalg.backends as backends_module

        def broken_splu(*args, **kwargs):
            raise RuntimeError("factorisation unavailable")

        monkeypatch.setattr(backends_module.spla, "splu", broken_splu)
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, GROUP, backend="sparse",
                                        backend_options={"solver": "splu"})
        # The degradation ladder swaps in the dense fallback instead of
        # surfacing the factorisation failure; answers stay correct.
        assert tracker.backend.name == "dense"
        assert tracker.stats.failovers == 1
        expected = grounded_trace(graph.snapshot(), graph.compact_nodes(GROUP))
        assert tracker.trace() == pytest.approx(expected, rel=1e-9)

    def test_failed_dense_fallback_is_terminal(self, small_ba, monkeypatch):
        import repro.linalg.backends as backends_module

        def broken(*args, **kwargs):
            raise RuntimeError("factorisation unavailable")

        monkeypatch.setattr(backends_module.spla, "splu", broken)
        monkeypatch.setattr(backends_module.DenseResistanceBackend,
                            "factorize", broken)
        graph = DynamicGraph(small_ba)
        with pytest.raises(BackendUnavailableError):
            IncrementalResistance(graph, GROUP, backend="sparse",
                                  backend_options={"solver": "splu"})


class TestSingularUpdates:
    def test_singular_triple_raises_without_committing(self, star6):
        # Star grounded at the hub: the kept block is the identity, so
        # zeroing one leaf's degree makes it exactly singular.
        graph = DynamicGraph(star6)
        backend = SparseResistanceBackend()
        lap = sp.csc_matrix(graph.laplacian_dense()[1:, 1:])
        backend.factorize(lap)
        before_trace = backend.trace(mode="exact")
        before_epoch = backend.epoch
        with pytest.raises(InvalidParameterError, match="singular"):
            backend.apply_triples([(2, None, -1.0)])
        assert backend.epoch == before_epoch
        assert backend.correction_rank == 0
        assert backend.trace(mode="exact") == pytest.approx(before_trace)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_near_singular_reweight_falls_back_to_refresh(self, star6, backend):
        graph = DynamicGraph(star6)
        tracker = IncrementalResistance(graph, [0], refresh_interval=10**9,
                                        backend=backend)
        tracker.sync()
        graph.update_weight(0, 3, 1e-13)
        tracker.sync()
        assert tracker.stats.singular_refreshes >= 1
        # laplacian_dense (not the snapshot) keeps the 1e-13 weight.
        reference = np.linalg.inv(graph.laplacian_dense()[1:, 1:])
        np.testing.assert_allclose(tracker.diagonal(mode="exact"),
                                   np.diag(reference), rtol=1e-6)

    def test_removing_grounded_node_raises_graph_error(self, small_ba):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, [7], backend="sparse")
        tracker.sync()
        graph.remove_node(7)
        with pytest.raises(GraphError, match="grounded"):
            tracker.sync()


class TestLazyColumns:
    def test_columns_cached_per_epoch(self, small_ba):
        graph = DynamicGraph(small_ba)
        dense = IncrementalResistance(graph, GROUP, backend="dense")
        sparse = IncrementalResistance(graph, GROUP, backend="sparse")
        node = 17
        column = sparse.resistance_column(node)
        np.testing.assert_allclose(column, dense.resistance_column(node),
                                   rtol=1e-8)
        assert sparse.backend.column_solves == 1
        sparse.resistance_column(node)
        assert sparse.backend.column_solves == 1  # cache hit
        graph.add_edge(3, 40)
        sparse.resistance_column(node)
        assert sparse.backend.column_solves == 2  # epoch bump invalidated
        # The dense backend serves columns as array reads, never solves.
        dense.resistance_column(node)
        assert dense.backend.column_solves == 0

    def test_grounded_column_is_zero(self, small_ba):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, GROUP, backend="sparse")
        assert not tracker.resistance_column(GROUP[0]).any()

    def test_sparse_backend_refuses_dense_inverse(self, small_ba):
        graph = DynamicGraph(small_ba)
        tracker = IncrementalResistance(graph, GROUP, backend="sparse")
        with pytest.raises(InvalidParameterError, match="materialise"):
            tracker.inverse


class TestBackendSelection:
    def test_choose_backend_policy(self):
        assert choose_backend(100, 300) == "dense"
        assert choose_backend(AUTO_SPARSE_NODES, 3 * AUTO_SPARSE_NODES) == "sparse"
        # Dense graphs stay on the dense backend even at scale (LU fill-in).
        assert choose_backend(5000, 5000 * 40) == "dense"

    def test_make_resistance_backend_specs(self):
        assert make_resistance_backend("dense").name == "dense"
        assert make_resistance_backend("auto", n=100, m=300).name == "dense"
        auto = make_resistance_backend("auto", n=4000, m=12000)
        assert auto.name == "sparse"
        sparse = make_resistance_backend("sparse", options={"probes": 8})
        assert sparse.probes == 8
        instance = DenseResistanceBackend()
        assert make_resistance_backend(instance) is instance

    def test_make_resistance_backend_rejections(self):
        with pytest.raises(InvalidParameterError):
            make_resistance_backend("banana")
        with pytest.raises(InvalidParameterError):
            make_resistance_backend("dense", options={"probes": 8})
        with pytest.raises(InvalidParameterError):
            make_resistance_backend(DenseResistanceBackend(),
                                    options={"probes": 8})

    def test_query_before_factorize_raises(self):
        with pytest.raises(InvalidParameterError, match="factorize"):
            SparseResistanceBackend().trace()
        with pytest.raises(InvalidParameterError, match="factorize"):
            DenseResistanceBackend().solve_many(np.ones((3, 1)))

    def test_sparse_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            SparseResistanceBackend(solver="qr")
        with pytest.raises(InvalidParameterError):
            SparseResistanceBackend(diag_mode="guess")
        with pytest.raises(InvalidParameterError):
            SparseResistanceBackend(probes=0)
        with pytest.raises(InvalidParameterError):
            SparseResistanceBackend(max_rank=0)


class TestPreconditionerPlumbing:
    def test_cache_reuses_builds_per_version(self, small_ba):
        graph = DynamicGraph(small_ba)
        lap = sp.csc_matrix(graph.laplacian_dense()[2:, 2:])
        cache = PreconditionerCache(kind="jacobi")
        first = cache.get(lap, version=1)
        assert cache.get(lap, version=1) is first
        assert (cache.builds, cache.hits) == (1, 1)
        second = cache.get(lap, version=2)
        assert second is not first
        assert cache.builds == 2
        cache.invalidate()
        cache.get(lap, version=2)
        assert cache.builds == 3

    def test_build_preconditioner_kinds(self, small_ba):
        lap = sp.csc_matrix(DynamicGraph(small_ba).laplacian_dense()[2:, 2:])
        for kind in ("jacobi", "ilu"):
            operator = build_preconditioner(lap, kind=kind)
            applied = operator.matvec(np.ones(lap.shape[0]))
            assert np.all(np.isfinite(applied))
        with pytest.raises(InvalidParameterError):
            build_preconditioner(lap, kind="amg")

    def test_solve_grounded_tolerances(self, small_ba):
        lap = DynamicGraph(small_ba).laplacian_dense()[2:, 2:]
        rhs = np.ones(lap.shape[0])
        direct = np.linalg.solve(lap, rhs)
        via_cg = solve_grounded(sp.csc_matrix(lap), rhs, method="cg",
                                rtol=1e-12)
        np.testing.assert_allclose(via_cg, direct, rtol=1e-6)
        with pytest.raises(ConvergenceError):
            solve_grounded(sp.csc_matrix(lap), rhs, method="cg", maxiter=1)


class TestEngineWiring:
    def test_engine_exact_parity_across_backends(self, small_ba):
        results = {}
        for backend in ("dense", "sparse"):
            graph = DynamicGraph(small_ba)
            engine = DynamicCFCM(graph, seed=0, backend=backend)
            rng = np.random.default_rng(29)
            values = [engine.evaluate_exact(GROUP)]
            for _ in range(3):
                random_update_journal(graph, 6, rng)
                values.append(engine.evaluate_exact(GROUP))
            results[backend] = values
        np.testing.assert_allclose(results["sparse"], results["dense"],
                                   rtol=1e-6)

    def test_engine_rejects_backend_instances(self, small_ba):
        with pytest.raises(InvalidParameterError, match="spec string"):
            DynamicCFCM(DynamicGraph(small_ba),
                        backend=SparseResistanceBackend())

    def test_engine_rejects_unknown_backend(self, small_ba):
        with pytest.raises(InvalidParameterError):
            DynamicCFCM(DynamicGraph(small_ba), backend="banana")


class TestForestDeltaPool:
    def test_gains_track_exact_marginals(self, small_ba):
        config = SamplingConfig(eps=0.2, max_samples=600, max_jl_dimension=128)
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=3, config=config,
                             pool_size=600)
        group = [int(np.argmax(small_ba.degrees))]
        gains = engine.evaluate_forest_delta(group)
        exact = marginal_gains_all(small_ba, group)
        assert set(gains) == set(exact)
        relative = [abs(gains[u] - exact[u]) / exact[u] for u in exact]
        assert np.mean(relative) < 0.35
        best_exact = max(exact, key=exact.get)
        ranked = sorted(gains, key=gains.get, reverse=True)
        assert best_exact in ranked[:10]

    def test_repeat_call_folds_nothing_new(self, small_ba):
        config = SamplingConfig(eps=0.3, max_samples=64)
        engine = DynamicCFCM(DynamicGraph(small_ba), seed=5, config=config)
        first = engine.evaluate_forest_delta(GROUP)
        folded = engine.stats.forests_folded
        assert folded > 0
        second = engine.evaluate_forest_delta(GROUP)
        assert engine.stats.forests_folded == folded  # cache hit, no refold
        assert second == first

    def test_churn_folds_only_fresh_forests(self, small_ba):
        config = SamplingConfig(eps=0.3, max_samples=64)
        graph = DynamicGraph(small_ba)
        engine = DynamicCFCM(graph, seed=7, config=config)
        engine.evaluate_forest_delta(GROUP)
        folded = engine.stats.forests_folded
        pool_size = engine.stats.forests_kept
        graph.add_edge(10, 50)
        gains = engine.evaluate_forest_delta(GROUP)
        assert set(gains) == set(range(small_ba.n)) - set(GROUP)
        # Surviving forests keep their cached projected rows: the second
        # fold only covers the fresh draws, never the whole pool again.
        newly_folded = engine.stats.forests_folded - folded
        assert newly_folded < max(pool_size, engine.stats.forests_kept)

    def test_weighted_graph_rejected(self, small_ba):
        graph = DynamicGraph(small_ba)
        graph.update_weight(*[int(x) for x in small_ba.edge_array()[0]], 2.5)
        engine = DynamicCFCM(graph, seed=1)
        with pytest.raises(InvalidParameterError, match="unit"):
            engine.evaluate_forest_delta(GROUP)
