"""Tests for the synthetic graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.traversal import is_connected


class TestDeterministicFamilies:
    def test_path_graph(self):
        graph = generators.path_graph(5)
        assert graph.n == 5 and graph.m == 4
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_cycle_graph(self):
        graph = generators.cycle_graph(6)
        assert graph.m == 6
        assert all(graph.degree(v) == 2 for v in range(6))

    def test_cycle_too_small(self):
        with pytest.raises(InvalidParameterError):
            generators.cycle_graph(2)

    def test_complete_graph(self):
        graph = generators.complete_graph(5)
        assert graph.m == 10

    def test_star_graph(self):
        graph = generators.star_graph(7)
        assert graph.degree(0) == 6
        assert graph.m == 6

    def test_grid_graph(self):
        graph = generators.grid_graph(3, 4)
        assert graph.n == 12
        assert graph.m == 3 * 3 + 2 * 4
        assert is_connected(graph)

    def test_binary_tree(self):
        graph = generators.binary_tree(3)
        assert graph.n == 15
        assert graph.m == 14

    def test_lollipop(self):
        graph = generators.lollipop_graph(4, 3)
        assert graph.n == 7
        assert graph.m == 6 + 3
        assert is_connected(graph)

    def test_barbell(self):
        graph = generators.barbell_graph(3, 2)
        assert graph.n == 8
        assert is_connected(graph)


class TestRandomFamilies:
    def test_erdos_renyi_connected_component(self):
        graph = generators.erdos_renyi(80, 0.08, seed=0)
        assert is_connected(graph)
        assert graph.n <= 80

    def test_erdos_renyi_reproducible(self):
        a = generators.erdos_renyi(50, 0.1, seed=7)
        b = generators.erdos_renyi(50, 0.1, seed=7)
        assert a == b

    def test_barabasi_albert_counts(self):
        graph = generators.barabasi_albert(100, 3, seed=1)
        assert graph.n == 100
        assert is_connected(graph)
        # m initial star edges + (n - m - 1) * m attachments
        assert graph.m == 3 + (100 - 4) * 3

    def test_barabasi_albert_hub_exists(self):
        graph = generators.barabasi_albert(300, 2, seed=2)
        assert graph.max_degree() > 10

    def test_barabasi_albert_invalid_m(self):
        with pytest.raises(InvalidParameterError):
            generators.barabasi_albert(10, 10, seed=0)

    def test_watts_strogatz_connected(self):
        graph = generators.watts_strogatz(60, 4, 0.1, seed=3)
        assert is_connected(graph)
        assert graph.n == 60

    def test_watts_strogatz_zero_rewiring_is_lattice(self):
        graph = generators.watts_strogatz(20, 4, 0.0, seed=0)
        assert graph.m == 20 * 2
        assert all(graph.degree(v) == 4 for v in range(20))

    def test_watts_strogatz_odd_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            generators.watts_strogatz(20, 3, 0.1, seed=0)

    def test_powerlaw_cluster_connected(self):
        graph = generators.powerlaw_cluster(120, 3, 0.4, seed=4)
        assert is_connected(graph)
        assert graph.n == 120

    def test_powerlaw_cluster_denser_than_ba(self):
        sparse = generators.barabasi_albert(100, 2, seed=5)
        dense = generators.powerlaw_cluster(100, 6, 0.3, seed=5)
        assert dense.m > sparse.m

    def test_random_regular_degrees(self):
        graph = generators.random_regular(30, 4, seed=6)
        assert all(graph.degree(v) == 4 for v in range(30))
        assert is_connected(graph)

    def test_random_regular_parity_check(self):
        with pytest.raises(InvalidParameterError):
            generators.random_regular(9, 3, seed=0)

    def test_random_regular_high_degree(self):
        # d = 6 matchings almost never come out simple; the generator must
        # repair conflicts by degree-preserving double-edge swaps instead of
        # rejecting whole matchings.
        for seed in range(5):
            graph = generators.random_regular(60, 6, seed=seed)
            assert all(graph.degree(v) == 6 for v in range(60))
            assert is_connected(graph)

    def test_random_regular_reproducible(self):
        first = generators.random_regular(40, 6, seed=11)
        second = generators.random_regular(40, 6, seed=11)
        assert list(first.edges()) == list(second.edges())

    def test_planted_partition_connected(self):
        graph = generators.planted_partition(80, 4, 0.4, 0.02, seed=3)
        assert graph.n == 80
        assert is_connected(graph)

    def test_planted_partition_community_structure(self):
        # With p_in >> p_out, within-block edges dominate cross-block ones.
        graph = generators.planted_partition(80, 4, 0.5, 0.01, seed=4)
        block = 80 // 4
        within = sum(1 for u, v in graph.edges() if u // block == v // block)
        assert within > graph.m / 2

    def test_planted_partition_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            generators.planted_partition(10, 0, 0.5, 0.1, seed=0)
        with pytest.raises(InvalidParameterError):
            generators.planted_partition(10, 2, 1.5, 0.1, seed=0)

    def test_random_tree_edge_count(self):
        graph = generators.random_tree(40, seed=7)
        assert graph.m == 39
        assert is_connected(graph)

    def test_random_tree_tiny(self):
        assert generators.random_tree(1).m == 0
        assert generators.random_tree(2).m == 1

    def test_random_geometric_connected(self):
        graph = generators.random_geometric(120, 0.18, seed=8)
        assert is_connected(graph)

    def test_random_geometric_invalid_radius(self):
        with pytest.raises(InvalidParameterError):
            generators.random_geometric(10, 0.0, seed=0)

    def test_generator_accepts_generator_instance(self):
        rng = np.random.default_rng(9)
        graph = generators.barabasi_albert(50, 2, seed=rng)
        assert graph.n == 50


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=3, max_value=60), st.integers(min_value=0, max_value=1000))
def test_random_tree_is_spanning_tree(n, seed):
    """A random tree always has n - 1 edges and is connected (hence acyclic)."""
    graph = generators.random_tree(n, seed=seed)
    assert graph.n == n
    assert graph.m == n - 1
    assert is_connected(graph)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=5, max_value=40), st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=100))
def test_barabasi_albert_connected_property(n, m, seed):
    m = min(m, n - 1)
    graph = generators.barabasi_albert(n, m, seed=seed)
    assert is_connected(graph)
    assert graph.n == n
