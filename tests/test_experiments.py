"""Tests for the experiment harness (run on miniature workloads)."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.experiments import networks
from repro.experiments.cli import build_parser, main
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.report import format_series, format_table, save_json
from repro.experiments.runner import (
    RunSpec,
    evaluate_cfcc,
    methods_for_effectiveness,
    run_method,
    sampling_config,
)
from repro.experiments.table2 import render_table2, run_table2


@pytest.fixture
def mini_graphs():
    """Very small workload so harness tests stay fast."""
    return {
        "mini-ba": generators.barabasi_albert(60, 2, seed=0),
        "mini-ws": generators.watts_strogatz(50, 4, 0.1, seed=1),
    }


class TestNetworks:
    def test_tiny_suite(self):
        suite = networks.tiny_suite()
        assert len(suite) == 4

    def test_small_suite_sizes(self):
        suite = networks.small_suite("small")
        assert len(suite) == 6
        assert all(graph.n <= 1000 for graph in suite.values())

    def test_medium_suite(self):
        suite = networks.medium_suite("small")
        assert len(suite) == 4

    def test_table2_suite_union(self):
        suite = networks.table2_suite("small")
        assert len(suite) >= 10

    def test_eps_suite(self):
        suite = networks.eps_sweep_suite("small")
        assert 3 <= len(suite) <= 6

    def test_experiment_suite_lookup(self):
        assert networks.experiment_suite("tiny")
        with pytest.raises(InvalidParameterError):
            networks.experiment_suite("huge")

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            networks.small_suite("galactic")

    def test_suite_summaries(self, mini_graphs):
        rows = networks.suite_summaries(mini_graphs)
        assert rows[0][0] == "mini-ba"
        assert rows[0][1] == 60


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text
        assert "-" in lines[3]

    def test_format_series(self):
        text = format_series("demo", {"m1": {1: 0.5, 2: 0.6}, "m2": {1: 0.4}})
        assert "demo" in text
        assert "m1" in text and "m2" in text

    def test_save_json(self, tmp_path):
        path = tmp_path / "out.json"
        save_json({"a": 1}, str(path))
        assert json.loads(path.read_text()) == {"a": 1}

    def test_save_json_none_is_noop(self):
        save_json({"a": 1}, None)


class TestRunner:
    def test_run_method_exact(self, mini_graphs):
        result = run_method(mini_graphs["mini-ba"], 2, RunSpec("exact"))
        assert result is not None and len(result.group) == 2

    def test_run_method_skips_exact_on_large_graph(self):
        graph = generators.barabasi_albert(60, 2, seed=3)
        # Simulate the infeasibility cut-off by monkey-level: use a spec on a
        # graph larger than the limit via the module constant.
        from repro.experiments import runner

        original = runner.EXACT_NODE_LIMIT
        runner.EXACT_NODE_LIMIT = 10
        try:
            assert run_method(graph, 2, RunSpec("exact")) is None
        finally:
            runner.EXACT_NODE_LIMIT = original

    def test_sampling_config_respects_caps(self):
        config = sampling_config(0.3, 24)
        assert config.max_samples == 24
        assert config.min_samples <= 24

    def test_methods_for_effectiveness(self):
        with_exact = methods_for_effectiveness(include_exact=True)
        without = methods_for_effectiveness(include_exact=False)
        assert "Exact" in with_exact and "Exact" not in without
        assert "Schur" in without

    def test_evaluate_cfcc_small_graph_exact(self, mini_graphs):
        graph = mini_graphs["mini-ba"]
        from repro.centrality.cfcc import group_cfcc

        assert evaluate_cfcc(graph, [0, 1]) == pytest.approx(group_cfcc(graph, [0, 1]))


class TestHarnessRuns:
    def test_table2_miniature(self, mini_graphs):
        rows = run_table2(graphs=mini_graphs, k=2, eps_values=(0.3,),
                          max_samples=24, verbose=False)
        assert len(rows) == 2
        for row in rows:
            assert row["exact_seconds"] is not None
            assert row["schur_0.3_seconds"] is not None
        text = render_table2(rows, eps_values=(0.3,))
        assert "mini-ba" in text

    def test_figure1_miniature(self):
        graphs = {"mini": generators.barabasi_albert(25, 2, seed=5)}
        results = run_figure1(graphs=graphs, k_values=(1, 2), eps=0.3,
                              max_samples=32, verbose=False)
        curves = results["mini"]
        assert set(curves) == {"Optimum", "Exact", "Approx", "Forest", "Schur"}
        for k in (1, 2):
            assert curves["Optimum"][k] >= curves["Exact"][k] - 1e-9

    def test_figure2_miniature(self, mini_graphs):
        results = run_figure2(graphs={"mini-ba": mini_graphs["mini-ba"]},
                              k_values=(2, 4), eps=0.3, max_samples=24,
                              verbose=False)
        curves = results["mini-ba"]
        assert curves["Exact"][4] > curves["Exact"][2]

    def test_figure4_miniature(self, mini_graphs):
        results = run_figure4(graphs={"mini-ws": mini_graphs["mini-ws"]},
                              eps_values=(0.4, 0.3), k=2, max_samples=24,
                              verbose=False)
        sweep = results["mini-ws"]
        assert set(sweep) == {"ForestCFCM", "SchurCFCM"}
        assert len(sweep["SchurCFCM"]) == 2

    def test_figure5_miniature(self, mini_graphs):
        results = run_figure5(graphs={"mini-ba": mini_graphs["mini-ba"]},
                              eps_values=(0.3,), k=2, max_samples=32,
                              verbose=False)
        values = results["mini-ba"]
        assert 0.0 <= values["SchurCFCM"][0.3] <= 1.0


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == "small"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure42"])

    def test_parser_options(self):
        args = build_parser().parse_args(
            ["fig4", "--k", "5", "--eps", "0.3", "--quick", "--max-samples", "16"]
        )
        assert args.k == 5 and args.quick and args.max_samples == 16

    def test_parser_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--smoke", "--ops", "40", "--rate", "250",
             "--query-fraction", "0.4", "--workers", "3"]
        )
        assert args.experiment == "serve"
        assert args.smoke and args.ops == 40 and args.workers == 3
        assert args.rate == 250.0 and args.query_fraction == 0.4


class TestServeStudy:
    def test_run_service_smoke_gate(self, tmp_path):
        from repro.experiments.service import run_service

        path = tmp_path / "serve.json"
        row = run_service(ops=30, rate=400.0, query_fraction=0.5, workers=2,
                          seed=1, n=60, smoke=True, verbose=False,
                          output_json=str(path))
        assert row["failures"] == []
        assert row["updates_applied"] + row["queries"] + row["evaluations"] > 0
        saved = json.loads(path.read_text())
        assert saved["final_version"] == row["final_version"]

    def test_serve_via_main_exits_zero(self, capsys):
        code = main(["serve", "--smoke", "--ops", "24", "--seed", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Async CFCM service" in output
        assert "smoke equivalence OK" in output
