"""Tests for Wilson's rooted spanning-forest sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DisconnectedGraphError, InvalidParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.linalg.schur import absorption_probabilities
from repro.sampling.wilson import (
    empirical_root_distribution,
    expected_sampling_cost,
    sample_many_forests,
    sample_rooted_forest,
)


class TestForestValidity:
    def test_single_root_spanning_tree(self, karate):
        forest = sample_rooted_forest(karate, [0], seed=0)
        forest.validate_against(karate)
        assert forest.tree_sizes() == {0: karate.n}

    def test_multi_root_forest(self, karate):
        roots = [0, 33, 16]
        forest = sample_rooted_forest(karate, roots, seed=1)
        forest.validate_against(karate)
        assert sorted(forest.tree_sizes()) == sorted(roots)
        assert sum(forest.tree_sizes().values()) == karate.n

    def test_every_node_reaches_a_root(self, medium_ba):
        roots = [0, 5, 9]
        forest = sample_rooted_forest(medium_ba, roots, seed=2)
        root_of = forest.root_of()
        assert set(np.unique(root_of)) <= set(roots)

    def test_tree_graph_is_recovered(self):
        tree = generators.random_tree(30, seed=3)
        forest = sample_rooted_forest(tree, [0], seed=4)
        # A tree has exactly one spanning tree: the forest must equal it.
        for node in range(1, 30):
            assert tree.has_edge(node, int(forest.parent[node]))

    def test_reproducible_with_seed(self, karate):
        a = sample_rooted_forest(karate, [0], seed=123)
        b = sample_rooted_forest(karate, [0], seed=123)
        assert np.array_equal(a.parent, b.parent)

    def test_different_seeds_differ(self, karate):
        a = sample_rooted_forest(karate, [0], seed=1)
        b = sample_rooted_forest(karate, [0], seed=2)
        assert not np.array_equal(a.parent, b.parent)

    def test_source_order_does_not_break_validity(self, karate):
        order = list(reversed(range(karate.n)))
        forest = sample_rooted_forest(karate, [0], seed=5, source_order=order)
        forest.validate_against(karate)

    def test_invalid_source_order(self, karate):
        with pytest.raises(InvalidParameterError):
            sample_rooted_forest(karate, [0], seed=0, source_order=[0, 1])

    def test_empty_roots_rejected(self, karate):
        with pytest.raises(InvalidParameterError):
            sample_rooted_forest(karate, [], seed=0)

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            sample_rooted_forest(graph, [0], seed=0)

    def test_sample_many(self, karate):
        forests = sample_many_forests(karate, [0], 5, seed=0)
        assert len(forests) == 5
        for forest in forests:
            forest.validate_against(karate)

    def test_sample_many_negative_count(self, karate):
        with pytest.raises(InvalidParameterError):
            sample_many_forests(karate, [0], -1)


class TestDistribution:
    def test_cycle_root_distribution_uniformish(self):
        """On a cycle with one root, each spanning tree removes one edge uniformly."""
        cycle = generators.cycle_graph(5)
        counts = {}
        rng = np.random.default_rng(0)
        samples = 600
        for _ in range(samples):
            forest = sample_rooted_forest(cycle, [0], seed=rng)
            missing = tuple(sorted(
                edge for edge in cycle.edges()
                if forest.parent[edge[0]] != edge[1] and forest.parent[edge[1]] != edge[0]
            ))
            counts[missing] = counts.get(missing, 0) + 1
        assert len(counts) == 5
        for value in counts.values():
            assert value > samples / 5 * 0.5

    def test_root_distribution_matches_absorption(self, karate):
        """Lemma 4.2: Pr(ρ_u = t) equals the absorption probability F_ut."""
        grounded = [0]
        boundary = [32, 33]
        roots = grounded + boundary
        exact, interior = absorption_probabilities(karate, grounded, boundary)
        empirical = empirical_root_distribution(karate, roots, samples=800, seed=7)
        boundary_columns = [roots.index(t) for t in boundary]
        observed = empirical[np.ix_(interior, boundary_columns)]
        assert np.max(np.abs(observed - exact)) < 0.1
        assert np.mean(np.abs(observed - exact)) < 0.03


class TestSamplingCost:
    def test_cost_positive(self, karate):
        assert expected_sampling_cost(karate, [0]) > 0

    def test_cost_decreases_with_more_roots(self, karate):
        """Adding high-degree roots reduces the expected work (SchurCFCM's rationale)."""
        single = expected_sampling_cost(karate, [0])
        hubs = list(np.argsort(-karate.degrees)[:4])
        enlarged = expected_sampling_cost(karate, sorted(set([0] + [int(v) for v in hubs])))
        assert enlarged < single

    def test_path_graph_cost_formula(self):
        """For a path rooted at one end the expected visits are sum of hitting times."""
        path = generators.path_graph(5)
        cost = expected_sampling_cost(path, [0])
        assert cost > 4  # strictly more work than just walking the path once


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=5, max_value=40), st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=4))
def test_sampled_forest_always_valid(n, seed, root_count):
    graph = generators.barabasi_albert(n, 2, seed=seed)
    rng = np.random.default_rng(seed)
    roots = sorted(set(int(v) for v in rng.choice(n, size=min(root_count, n - 1),
                                                  replace=False)))
    forest = sample_rooted_forest(graph, roots, seed=seed)
    forest.validate_against(graph)
    assert sum(forest.tree_sizes().values()) == n
