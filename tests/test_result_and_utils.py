"""Tests for the result container and the shared utilities."""

import time

import numpy as np
import pytest

from repro.exceptions import (
    InvalidNodeError,
    InvalidParameterError,
    NotComputedError,
    ReproError,
)
from repro.centrality.result import CFCMResult
from repro.utils.rng import as_rng, random_signs, sample_seed, spawn_rngs
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_group,
    check_integer,
    check_node,
    check_positive,
    check_probability,
)


class TestCFCMResult:
    def make(self):
        return CFCMResult(
            method="schur",
            group=[3, 7, 1],
            runtime_seconds=1.5,
            iteration_log=[{"samples": 10}, {"samples": 20}, {"samples": 30}],
        )

    def test_basic_fields(self):
        result = self.make()
        assert result.k == 3
        assert result.as_set() == {1, 3, 7}
        assert result.samples_used() == 60

    def test_prefix(self):
        result = self.make()
        assert result.prefix(2) == [3, 7]
        assert result.prefix(0) == []

    def test_prefix_out_of_range(self):
        with pytest.raises(NotComputedError):
            self.make().prefix(5)

    def test_summary_keys(self):
        summary = self.make().summary()
        assert summary["method"] == "schur"
        assert summary["k"] == 3
        assert summary["samples"] == 60


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(InvalidParameterError, ReproError)
        assert issubclass(InvalidNodeError, ReproError)
        assert issubclass(NotComputedError, ReproError)


class TestRng:
    def test_as_rng_from_int(self):
        a = as_rng(5).integers(0, 1000, size=10)
        b = as_rng(5).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_as_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        assert len(children) == 3
        values = [child.integers(0, 10**9) for child in children]
        assert len(set(values)) == 3

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_random_signs(self):
        signs = random_signs(as_rng(0), (100,), scale=2.0)
        assert set(np.unique(signs)) <= {-2.0, 2.0}

    def test_sample_seed_range(self):
        seed = sample_seed(as_rng(1))
        assert 0 <= seed < 2**63


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("phase"):
            time.sleep(0.01)
        with timer.measure("phase"):
            pass
        assert timer.count("phase") == 2
        assert timer.total("phase") >= 0.01
        assert "phase" in timer.summary()

    def test_unknown_label_zero(self):
        assert Timer().total("missing") == 0.0

    def test_timed_context(self):
        with timed() as elapsed:
            time.sleep(0.005)
        assert elapsed[0] >= 0.005


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.5) == 2.5
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(InvalidParameterError):
            check_positive("x", 0.0)
        with pytest.raises(InvalidParameterError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        assert check_probability("p", 0.0, inclusive=True) == 0.0
        with pytest.raises(InvalidParameterError):
            check_probability("p", 0.0)
        with pytest.raises(InvalidParameterError):
            check_probability("p", 1.2, inclusive=True)

    def test_check_integer(self):
        assert check_integer("k", 3, minimum=1, maximum=5) == 3
        with pytest.raises(InvalidParameterError):
            check_integer("k", 0, minimum=1)
        with pytest.raises(InvalidParameterError):
            check_integer("k", 9, maximum=5)
        with pytest.raises(InvalidParameterError):
            check_integer("k", 2.5)
        with pytest.raises(InvalidParameterError):
            check_integer("k", True)

    def test_check_node(self):
        assert check_node(3, 5) == 3
        assert check_node(np.int64(2), 5) == 2
        with pytest.raises(InvalidNodeError):
            check_node(5, 5)
        with pytest.raises(InvalidNodeError):
            check_node("a", 5)

    def test_check_group(self):
        assert check_group([3, 1], 5) == [1, 3]
        assert check_group([], 5, allow_empty=True) == []
        with pytest.raises(InvalidParameterError):
            check_group([], 5)
        with pytest.raises(InvalidParameterError):
            check_group([1, 1], 5)
        with pytest.raises(InvalidParameterError):
            check_group(list(range(5)), 5)
